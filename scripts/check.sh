#!/usr/bin/env bash
# Repo gate: the tier-1 test suite plus a benchmark smoke pass.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== smoke: API dispatch benchmark (overhead budget < 5%) =="
python -m pytest -q benchmarks/bench_api_dispatch.py

echo
echo "check.sh: all green"
