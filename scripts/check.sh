#!/usr/bin/env bash
# Repo gate: the tier-1 test suite plus a benchmark smoke pass.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

echo
echo "== scoring-session equivalence (session == naive re-ranking) =="
python -m pytest -q tests/ranking/test_session_equivalence.py

echo
echo "== search kernel: budgets, strategies, pre-refactor equivalence =="
python -m pytest -q tests/core/test_search_budget.py \
    tests/core/test_search_strategies.py tests/core/test_search_equivalence.py

echo
echo "== smoke: search-strategy benchmark (beam multi-edit, anytime deadline) =="
SEARCH_SMOKE=1 python -m pytest -q benchmarks/bench_search_strategies.py

echo
echo "== smoke: API dispatch benchmark (overhead budget < 5%) =="
python -m pytest -q benchmarks/bench_api_dispatch.py

echo
echo "== smoke: counterfactual scoring-session speedup =="
CF_SESSION_SMOKE=1 python -m pytest -q benchmarks/bench_cf_session.py

echo
echo "== service layer: jobs, pool, store, parallel equivalence =="
python -m pytest -q tests/service tests/api/test_jobs_endpoints.py

echo
echo "== smoke: service batch throughput (parallel + store) =="
SERVICE_SMOKE=1 python -m pytest -q benchmarks/bench_service_throughput.py

echo
echo "== serving hardening: admission, deadlines, chaos suite =="
python -m pytest -q tests/service/test_admission.py \
    tests/service/test_deadlines.py tests/service/test_chaos.py \
    tests/service/test_metrics_schema.py \
    tests/api/test_admission_endpoints.py tests/api/test_streaming.py

echo
echo "== smoke: admission under 10x saturation (typed sheds, bounded p95) =="
ADMISSION_SMOKE=1 python -m pytest -q benchmarks/bench_admission.py

echo
echo "== process tier: pool, fork safety, worker-death chaos =="
python -m pytest -q tests/service/test_process_pool.py \
    tests/service/test_process_chaos.py \
    tests/index/test_manifest_fork_safety.py

echo
echo "== smoke: process-tier benchmark (byte-identical across tiers) =="
PROC_SMOKE=1 python -m pytest -q benchmarks/bench_process_tier.py

echo
echo "== sharded corpus: routers, persistence, byte-identical equivalence =="
python -m pytest -q tests/index/test_sharding.py \
    tests/index/test_sharded_equivalence.py

echo
echo "== smoke: sharded parallel-ingest benchmark (>= 2x full target) =="
SHARDED_INGEST_SMOKE=1 python -m pytest -q benchmarks/bench_sharded_ingest.py

echo
echo "== v3 persistence: format, crash safety, replicas, equivalence =="
python -m pytest -q tests/index/test_persist_format.py \
    tests/index/test_persist_crash.py tests/index/test_replicas.py \
    tests/index/test_persist_equivalence.py

echo
echo "== smoke: v3 cold-load benchmark (>= 10x full attach target) =="
PERSIST_SMOKE=1 python -m pytest -q benchmarks/bench_persist.py

echo
echo "== observability: trace units, exposition pins, tracing-off equivalence =="
python -m pytest -q tests/obs tests/api/test_debug_traces.py \
    tests/api/test_request_id_lint.py tests/test_cli_metrics.py

echo
echo "== smoke: tracing overhead benchmark (no-op path + on/off sweeps) =="
OBS_SMOKE=1 python -m pytest -q benchmarks/bench_obs.py

echo
echo "== eval harness: fidelity invariants, scaled studies, streaming corpora =="
python -m pytest -q tests/eval tests/datasets/test_stream.py \
    tests/text/test_analyzer_properties.py \
    tests/index/test_varint_properties.py

echo
echo "== smoke: large-eval benchmark (quality floors + tier equivalence) =="
EVAL_SMOKE=1 python -m pytest -q benchmarks/bench_large_eval.py

echo
echo "== coverage floor: eval + datasets layers (ratcheted) =="
python scripts/coverage_floor.py

echo
echo "== docs: doc-sync guard + quickstart smoke on a tiny corpus =="
python -m pytest -q tests/test_doc_sync.py
QUICKSTART_RANKER=bm25 QUICKSTART_FILLER=12 \
    python examples/quickstart.py > /dev/null
echo "quickstart smoke: ok"

echo
echo "check.sh: all green"
