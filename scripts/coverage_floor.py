#!/usr/bin/env python
"""Line-coverage floor for the evaluation and datasets layers.

Runs the eval/datasets test suites and fails if line coverage of
``src/repro/eval`` or ``src/repro/datasets`` drops below the floor.

Uses the ``coverage`` package when it is importable; otherwise falls
back to a stdlib ``sys.settrace`` line collector so the gate works in
environments where ``pytest-cov``/``coverage`` are not installed (the
``[tool.coverage.*]`` section in ``pyproject.toml`` configures the real
tool identically where it exists). The fallback counts a line as
executable if the compiled module's code objects report it via
``co_lines()`` and it does not carry a ``pragma: no cover`` marker —
the same line-based model ``coverage`` uses, minus arc analysis.

Ratchet note: FLOOR is set from the measured baseline minus a small
margin. When coverage grows, raise the floor to trail it — never lower
it to admit a regression.

Usage: python scripts/coverage_floor.py  (from the repo root;
``scripts/check.sh`` runs it as its coverage tier).
"""

from __future__ import annotations

import sys
import threading
from collections import defaultdict
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

#: Packages the floor applies to, relative to ``src/``.
TARGETS = ("repro/eval", "repro/datasets")

#: Percent of executable lines the target suites must cover, overall.
#: Measured baseline ~97%; the margin absorbs platform-dependent
#: branches (hypothesis vs fallback property mode, psutil presence).
FLOOR = 90.0

TEST_ARGS = [
    "-q",
    "-p",
    "no:cacheprovider",
    str(ROOT / "tests" / "eval"),
    str(ROOT / "tests" / "datasets"),
]


def _target_files() -> list[Path]:
    files: list[Path] = []
    for target in TARGETS:
        files.extend(sorted((SRC / target).rglob("*.py")))
    return files


def _run_pytest() -> int:
    import pytest

    return pytest.main(TEST_ARGS)


# -- preferred path: the real coverage tool ----------------------------------


def _measure_with_coverage(coverage_module) -> dict[str, tuple[int, int]]:
    cov = coverage_module.Coverage(
        include=[str(SRC / target / "*") for target in TARGETS],
        config_file=str(ROOT / "pyproject.toml"),
    )
    cov.start()
    code = _run_pytest()
    cov.stop()
    if code != 0:
        sys.exit(code)
    totals: dict[str, tuple[int, int]] = {}
    for path in _target_files():
        _, executable, _, missing, _ = cov.analysis2(str(path))
        totals[str(path)] = (
            len(executable) - len(missing),
            len(executable),
        )
    return totals


# -- fallback path: stdlib settrace collector --------------------------------


class _LineCollector:
    """Records executed (filename, line) pairs for the target files."""

    def __init__(self, watched: set[str]):
        self.watched = watched
        self.lines: dict[str, set[int]] = defaultdict(set)

    def _local(self, frame, event, arg):
        if event == "line":
            self.lines[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def trace(self, frame, event, arg):
        # Returning None for foreign files keeps the per-line overhead
        # confined to the packages under measurement.
        if frame.f_code.co_filename not in self.watched:
            return None
        if event == "line":
            self.lines[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local


def _executable_lines(path: Path) -> set[int]:
    source = path.read_text(encoding="utf-8")
    skipped = {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if "pragma: no cover" in line
    }
    lines: set[int] = set()
    pending = [compile(source, str(path), "exec")]
    while pending:
        code = pending.pop()
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                pending.append(const)
        for _, _, lineno in code.co_lines():
            if lineno is not None and lineno not in skipped:
                lines.add(lineno)
    return lines


def _measure_with_settrace() -> dict[str, tuple[int, int]]:
    watched = {str(path) for path in _target_files()}
    collector = _LineCollector(watched)
    threading.settrace(collector.trace)
    sys.settrace(collector.trace)
    try:
        code = _run_pytest()
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if code != 0:
        sys.exit(code)
    totals: dict[str, tuple[int, int]] = {}
    for path in _target_files():
        executable = _executable_lines(path)
        executed = collector.lines.get(str(path), set()) & executable
        totals[str(path)] = (len(executed), len(executable))
    return totals


def main() -> int:
    sys.path.insert(0, str(SRC))
    try:
        import coverage
    except ImportError:
        coverage = None

    if coverage is not None:
        totals = _measure_with_coverage(coverage)
        engine = f"coverage {coverage.__version__}"
    else:
        totals = _measure_with_settrace()
        engine = "stdlib settrace fallback (coverage not installed)"

    print()
    print(f"coverage floor: eval + datasets layers [{engine}]")
    width = max(len(str(Path(name).relative_to(SRC))) for name in totals)
    covered_total = executable_total = 0
    for name, (covered, executable) in sorted(totals.items()):
        covered_total += covered
        executable_total += executable
        percent = 100.0 * covered / executable if executable else 100.0
        rel = str(Path(name).relative_to(SRC))
        print(f"  {rel:<{width}}  {covered:>4}/{executable:<4}  {percent:6.1f}%")
    percent = (
        100.0 * covered_total / executable_total if executable_total else 100.0
    )
    print(f"  {'TOTAL':<{width}}  {covered_total:>4}/{executable_total:<4}  {percent:6.1f}%")
    if percent < FLOOR:
        print(
            f"coverage {percent:.1f}% is below the {FLOOR:.1f}% floor for "
            f"{', '.join(TARGETS)}",
            file=sys.stderr,
        )
        return 1
    print(f"coverage floor ok: {percent:.1f}% >= {FLOOR:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
