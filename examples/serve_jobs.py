"""Async explanation jobs: submit, poll progress, cancel, and read metrics.

Walks the explanation-service surface end to end over real HTTP:

1. start the CREDENCE service with a 4-worker explanation pool;
2. submit a batch job (``POST /jobs``) and get a receipt immediately;
3. poll ``GET /jobs/{id}`` for per-item progress until it finishes
   (one deliberately bad item shows failure isolation);
4. repeat a synchronous request to show the version-keyed result store
   answering from cache;
5. cancel a second job (``DELETE /jobs/{id}``);
6. read ``GET /metrics`` — jobs, cache hit rate, latency percentiles.

Run with::

    python examples/serve_jobs.py
"""

import json
import time

from repro import DEMO_QUERY, FAKE_NEWS_DOC_ID, demo_engine
from repro.api import HttpClient, serve


def wait_for(client: HttpClient, job_id: str) -> dict:
    while True:
        payload = client.get(f"/jobs/{job_id}").payload
        print(
            f"  {payload['job_id']}: {payload['status']} "
            f"({payload['items_done']}/{payload['items_total']} items)"
        )
        if payload["status"] not in ("pending", "running"):
            return payload
        time.sleep(0.05)


def main() -> None:
    engine = demo_engine(ranker="bm25")
    server = serve(engine, port=0, workers=4)
    client = HttpClient(server.url)
    print(f"CREDENCE service on {server.url} (4 explanation workers)")

    # -- 1. submit an async batch job -------------------------------------
    print("\nPOST /jobs (3 items; one bad doc id)")
    receipt = client.post(
        "/jobs",
        {
            "requests": [
                {"query": DEMO_QUERY, "doc_id": FAKE_NEWS_DOC_ID},
                {
                    "query": DEMO_QUERY,
                    "doc_id": FAKE_NEWS_DOC_ID,
                    "strategy": "query/augmentation",
                    "n": 2,
                    "threshold": 2,
                },
                {"query": DEMO_QUERY, "doc_id": "not-a-document"},
            ]
        },
    ).payload
    print(f"  receipt: {receipt['job_id']} is {receipt['status']}")

    # -- 2. poll until done ------------------------------------------------
    final = wait_for(client, receipt["job_id"])
    print(f"  item states: {final['items']}")
    print(f"  bad item error: {final['responses'][2]['error']}")

    # -- 3. the result store: repeats are cache hits ----------------------
    print("\nPOST /explanations twice (second answer comes from the store)")
    body = {"query": DEMO_QUERY, "doc_id": FAKE_NEWS_DOC_ID}
    first = client.post("/explanations", body)
    second = client.post("/explanations", body)
    assert first.payload["explanations"] == second.payload["explanations"]

    # -- 4. cancellation ---------------------------------------------------
    print("\nDELETE /jobs/{id} (cancel)")
    ranking = client.post("/rank", {"query": DEMO_QUERY, "k": 10}).payload
    job_id = client.post(
        "/jobs",
        {
            "requests": [
                {"query": DEMO_QUERY, "doc_id": entry["doc_id"], "n": 2}
                for entry in ranking["ranking"]
            ]
        },
    ).payload["job_id"]
    cancelled = client.delete(f"/jobs/{job_id}").payload
    final = wait_for(client, job_id)
    if final["status"] == "cancelled":
        print(f"  {job_id} cancelled; skipped items: "
              f"{final['items'].count('skipped')}")
    else:
        print(f"  {job_id} finished before the cancel landed "
              f"(cancel of a terminal job is a no-op)")

    # -- 5. metrics --------------------------------------------------------
    print("\nGET /metrics")
    print(json.dumps(client.get("/metrics").payload, indent=2))

    server.stop()
    engine.service().shutdown(cancel_pending=True)


if __name__ == "__main__":
    main()
