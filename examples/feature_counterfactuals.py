"""Feature-space counterfactuals over a learning-to-rank model.

The paper's future work: "explain ranking models that support richer
sets of features (e.g., user preferences)". This example trains a
feature-based LTR ranker whose inputs include non-textual document
priors (popularity, freshness, authority), shows that the four CREDENCE
explainers run on it unchanged, and then asks the new question only a
feature-based model can answer: *which minimal change to the document's
priors would have kept it out of the top-k?*

Run with::

    python examples/feature_counterfactuals.py
"""

from repro import CredenceEngine, ExplainRequest
from repro.datasets import synthetic_corpus
from repro.index import InvertedIndex
from repro.ltr import (
    LinearLtrModel,
    LtrRanker,
    assign_priors,
    synthetic_letor_dataset,
)

QUERY = "virus hospital patients"
K = 10

TRAINING_QUERIES = [
    QUERY,
    "markets stocks investors",
    "storm rainfall forecast",
    "software platform users",
    "match season team",
]


def main() -> None:
    print("Generating a corpus with document priors (popularity/freshness/authority)...")
    corpus = assign_priors(synthetic_corpus(size=100, seed=3), seed=7)

    print("Synthesising LETOR-style graded judgments and fitting a linear LTR model...")
    examples = synthetic_letor_dataset(corpus, TRAINING_QUERIES, seed=11)
    model = LinearLtrModel.fit(examples)
    ranker = LtrRanker(InvertedIndex.from_documents(corpus), model)

    # Injecting the LTR ranker into the engine unlocks the feature-space
    # strategy on the unified surface alongside the textual ones.
    engine = CredenceEngine(corpus, ranker=ranker)
    print(f"Strategies available for this ranker: {engine.available_strategies()}")

    ranking = engine.rank(QUERY, k=K)
    print(f"\nTop-{K} for {QUERY!r} under {ranker.name}:")
    for entry in ranking:
        document = ranker.index.document(entry.doc_id)
        priors = ", ".join(
            f"{name}={document.metadata[name]:.2f}"
            for name in ("popularity", "freshness", "authority")
        )
        print(f"  {entry.rank:>2}. {entry.doc_id:<16} {entry.score:7.3f}  ({priors})")

    # The classic CREDENCE explainers work on the LTR model unchanged.
    target = ranking.doc_ids[-1]
    print(f"\nClassic sentence-removal counterfactual for {target} still works:")
    text_cf = engine.explain(
        ExplainRequest(QUERY, target, strategy="document/sentence-removal", k=K)
    )
    if len(text_cf):
        explanation = text_cf[0]
        print(
            f"  remove sentence(s) {list(explanation.removed_indices)}: rank "
            f"{explanation.original_rank} -> {explanation.new_rank}"
        )
    else:
        print("  (no sentence-removal counterfactual exists for this document)")

    # The new capability: counterfactuals in feature space, through the
    # same explain() entry point as every other strategy.
    print(f"\nFeature-space counterfactuals for {target}:")
    response = engine.explain(
        ExplainRequest(QUERY, target, strategy="features/ltr", n=3, k=K)
    )
    result = response.result
    for explanation in result:
        changes = "; ".join(change.describe() for change in explanation.changes)
        print(
            f"  {changes:<45} rank {explanation.original_rank} -> "
            f"{explanation.new_rank}"
        )
    print(
        f"\n({result.candidates_evaluated} candidate change-sets evaluated; "
        "size-major enumeration makes the first explanation minimal in the "
        "number of features touched.)"
    )
    print(
        "\nReading: had this document been less popular/fresh, the ranker "
        "would not have deemed it relevant — evidence of how strongly its "
        "rank rests on priors rather than textual match."
    )


if __name__ == "__main__":
    main()
