"""Run the CREDENCE REST service and exercise it over real HTTP.

Starts the Fig. 1 backend (the FastAPI/Uvicorn equivalent) on
localhost:8091 — the port from the paper's deployment — then issues the
demo's requests with the bundled HTTP client. Pass ``--serve-forever``
to keep the server in the foreground for manual exploration with curl.

Run with::

    python examples/serve_api.py
    python examples/serve_api.py --serve-forever
"""

import json
import sys

from repro import DEMO_QUERY, FAKE_NEWS_DOC_ID, demo_engine
from repro.api import HttpClient, serve


def main() -> None:
    engine = demo_engine(ranker="bm25")
    server = serve(engine, port=0)  # ephemeral port; 8091 may be taken
    print(f"CREDENCE service listening on {server.url}")

    if "--serve-forever" in sys.argv:
        print("Press Ctrl-C to stop.")
        try:
            while True:
                import time

                time.sleep(3600)
        except KeyboardInterrupt:
            server.stop()
            return

    client = HttpClient(server.url)

    print("\nGET /health")
    print(json.dumps(client.get("/health").payload, indent=2))

    print(f"\nPOST /rank  query={DEMO_QUERY!r} k=10")
    ranking = client.post("/rank", {"query": DEMO_QUERY, "k": 10}).payload["ranking"]
    for entry in ranking[:5]:
        print(f"  {entry['rank']}. {entry['doc_id']} ({entry['score']:.3f})")

    print("\nPOST /explanations/document")
    payload = client.post(
        "/explanations/document",
        {"query": DEMO_QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 1, "k": 10},
    ).payload
    explanation = payload["explanations"][0]
    print(
        f"  rank {explanation['original_rank']} -> {explanation['new_rank']}, "
        f"removed: {explanation['removed_indices']}"
    )

    print("\nPOST /builder/rerank (covid -> flu, outbreak removed)")
    payload = client.post(
        "/builder/rerank",
        {
            "query": DEMO_QUERY,
            "doc_id": FAKE_NEWS_DOC_ID,
            "k": 10,
            "perturbations": [
                {"type": "replace_term", "term": "covid-19", "replacement": "flu"},
                {"type": "replace_term", "term": "covid", "replacement": "flu"},
                {"type": "remove_term", "term": "outbreak"},
            ],
        },
    ).payload
    print(
        f"  rank {payload['rank_before']} -> {payload['rank_after']} "
        f"valid={payload['is_valid_counterfactual']}"
    )

    server.stop()
    print("\nServer stopped.")


if __name__ == "__main__":
    main()
