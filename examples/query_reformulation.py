"""Query-reformulation workflow on a custom corpus.

Shows CREDENCE on a corpus you bring yourself (here: a synthetic product
support knowledge base) with the BM25 ranker: a support engineer asks why
a known-good troubleshooting article ranks low for a user's query and
uses counterfactual *query* explanations to learn which words the user
should have typed — then verifies with the Builder.

Run with::

    python examples/query_reformulation.py
"""

from repro import CredenceEngine, Document, EngineConfig, ExplainRequest

ARTICLES = [
    Document(
        "kb-router-resets",
        "Router keeps restarting overnight. Firmware 2.1 introduced a watchdog "
        "bug that reboots the router when the upstream link flaps. Upgrade the "
        "firmware and disable aggressive watchdog mode.",
        title="Router restart loop",
    ),
    Document(
        "kb-wifi-slow",
        "Slow wifi speeds are usually channel congestion. Use the analyzer to "
        "pick a quiet channel and prefer the 5ghz band for streaming devices.",
        title="Slow wifi",
    ),
    Document(
        "kb-dropouts",
        "Intermittent connection dropouts on the 5ghz band happen when dfs "
        "radar events force a channel switch. Pin a non-dfs channel to stop "
        "the dropouts. Dropouts can also indicate overheating.",
        title="Intermittent dropouts",
    ),
    Document(
        "kb-parental",
        "Parental controls let you schedule internet access per device. Create "
        "a profile, attach devices, and set a bedtime schedule.",
        title="Parental controls",
    ),
    Document(
        "kb-port-forward",
        "Port forwarding exposes a service on your network. Map the external "
        "port to the device ip and internal port, then save and reboot.",
        title="Port forwarding",
    ),
    Document(
        "kb-vpn",
        "The built-in vpn server supports wireguard. Generate a peer "
        "configuration and scan the qr code from the mobile app.",
        title="VPN setup",
    ),
    Document(
        "kb-mesh",
        "Mesh satellites should be placed one room apart. A satellite with a "
        "red light has lost backhaul connection; move it closer to the router.",
        title="Mesh placement",
    ),
    Document(
        "kb-firmware",
        "Firmware updates install automatically at night by default. You can "
        "trigger an update manually from the maintenance page.",
        title="Firmware updates",
    ),
]

QUERY = "wifi connection problems"
TARGET = "kb-dropouts"
K = 5


def main() -> None:
    engine = CredenceEngine(ARTICLES, EngineConfig(ranker="bm25", seed=1))

    ranking = engine.rank(QUERY, k=K)
    print(f"Support search: {QUERY!r}")
    for entry in ranking:
        marker = "  <-- the right article" if entry.doc_id == TARGET else ""
        print(f"  {entry.rank}. {entry.doc_id:<18} {entry.score:7.3f}{marker}")

    rank = ranking.rank_of(TARGET)
    print(f"\n{TARGET} ranks only {rank}/{K}. Why — and what query finds it?")

    result = engine.explain(
        ExplainRequest(QUERY, TARGET, strategy="query/augmentation",
                       n=5, k=K, threshold=1)
    )
    print("\nMinimal query augmentations that put it at rank 1:")
    for explanation in result:
        print(
            f"  {explanation.augmented_query!r:55} "
            f"rank {explanation.original_rank} -> {explanation.new_rank}"
        )
    print(
        "\nThe counterfactual terms are the article's discriminative "
        "vocabulary (TF-IDF within the ranked list) — the words support "
        "should teach users, or add as synonyms in the search config."
    )

    best = result[0]
    reranked = engine.rank(best.augmented_query, k=K)
    print(f"\nVerification — ranking for {best.augmented_query!r}:")
    for entry in reranked:
        marker = "  <--" if entry.doc_id == TARGET else ""
        print(f"  {entry.rank}. {entry.doc_id:<18} {entry.score:7.3f}{marker}")


if __name__ == "__main__":
    main()
