"""The paper's full demonstration scenario (§III), end to end.

A user investigating a fake-news article ranked among the top-10 for
"covid outbreak" walks through all four explanation types to understand
*why* the ranker considers it relevant and how its relevance could be
broken. This script follows the narrative of Figures 2-5 and prints each
artefact.

Run with::

    python examples/fake_news_investigation.py
"""

from repro import DEMO_QUERY, FAKE_NEWS_DOC_ID, ExplainRequest, demo_engine
from repro.core.perturbations import RemoveTerm, ReplaceTerm
from repro.text.sentences import split_sentences

K = 10


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    engine = demo_engine()

    banner("The investigation begins: ranking 'covid outbreak' (k=10)")
    ranking = engine.rank(DEMO_QUERY, k=K)
    fake_rank = ranking.rank_of(FAKE_NEWS_DOC_ID)
    print(f"The fake-news article ranks {fake_rank}/{K}. Its body:")
    for sentence in split_sentences(engine.document(FAKE_NEWS_DOC_ID).body):
        print(f"  [{sentence.index}] {sentence.text}")

    banner("Fig. 2 — why is it relevant? (sentence-removal counterfactual)")
    result = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="document/sentence-removal", k=K)
    )
    explanation = result[0]
    print(
        "The ranker stops considering the article relevant once these "
        f"{explanation.size} sentences are struck out "
        f"(rank {explanation.original_rank} -> {explanation.new_rank} > k):"
    )
    for sentence in explanation.removed_sentences:
        print(f"  ~~{sentence.text}~~")
    print(
        f"Importance: each removed sentence mentions both query terms "
        f"(score 2), combined {explanation.importance:.0f}. The user now "
        "knows the covid/outbreak sentences alone carry its relevance."
    )

    banner("Fig. 3 — which queries would promote it? (query augmentation)")
    query_cf = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="query/augmentation", n=7, k=K, threshold=2)
    )
    for explanation in query_cf:
        print(f"  {explanation.augmented_query!r:48} -> rank {explanation.new_rank}")
    strongest = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="query/augmentation", n=1, k=K, threshold=1)
    )[0]
    print(
        f"  {strongest.augmented_query!r:48} -> rank {strongest.new_rank}  "
        "(threshold 1)"
    )
    print(
        "The distinguishing terms (5g, microchip) score highest TF-IDF — "
        "they appear in no other top-10 document. Reformulating the query "
        "with them would surface *more* fake news."
    )

    banner("Fig. 4 — are there similar articles hiding below the top-10?")
    instance = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="instance/doc2vec", k=K)
    )[0]
    print(
        f"Doc2Vec Nearest finds {instance.counterfactual_doc_id} at "
        f"{instance.similarity_percent}% similarity — a near copy of the "
        "fake article that never ranked because it lacks the terms "
        "covid/outbreak:"
    )
    print(f"  {engine.document(instance.counterfactual_doc_id).body[:160]}...")
    cosine = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="instance/cosine", n=3, k=K, samples=50)
    )
    print("Cosine Sampled (BM25-score vectors, s=50) agrees:")
    for explanation in cosine:
        print(
            f"  {explanation.counterfactual_doc_id:<28} "
            f"{explanation.similarity_percent:5.1f}%"
        )

    banner("Fig. 5 — build-your-own counterfactual (the Builder page)")
    result = engine.build_counterfactual(
        DEMO_QUERY,
        FAKE_NEWS_DOC_ID,
        perturbations=[
            ReplaceTerm("covid-19", "flu"),
            ReplaceTerm("covid", "flu"),
            RemoveTerm("outbreak"),
        ],
        k=K,
    )
    check = "[valid counterfactual]" if result.is_valid_counterfactual else "[not valid]"
    print(
        f"Replacing covid/covid-19 with flu and removing outbreak: rank "
        f"{result.rank_before} -> {result.rank_after} {check}"
    )
    glyph = {"raised": "^", "lowered": "v", "unchanged": "=", "revealed": "+"}
    for movement in result.movements:
        before = movement.before if movement.before is not None else "-"
        print(
            f"  {glyph[movement.direction]} {movement.doc_id:<28} "
            f"{before} -> {movement.after}"
        )
    print(
        "\nThe user has learned exactly which lexical signals the ranker "
        "rewards, and how to edit the document so it is no longer deemed "
        "relevant to their query."
    )


if __name__ == "__main__":
    main()
