"""Quickstart: rank a corpus and generate every explanation type.

Run with::

    python examples/quickstart.py

Smoke knobs (used by ``scripts/check.sh`` to exercise this script
against a tiny corpus without neural training)::

    QUICKSTART_RANKER=bm25 QUICKSTART_FILLER=12 python examples/quickstart.py
"""

import os

from repro import DEMO_QUERY, FAKE_NEWS_DOC_ID, ExplainRequest, demo_engine
from repro.core.perturbations import RemoveTerm, ReplaceTerm

K = 10


def main() -> None:
    ranker = os.environ.get("QUICKSTART_RANKER", "neural")
    filler_size = int(os.environ.get("QUICKSTART_FILLER", "48"))
    print(f"Building the CREDENCE engine (index + {ranker} ranker)...")
    engine = demo_engine(ranker=ranker, filler_size=filler_size)

    # 1. Rank, like the demo's Explanations page.
    ranking = engine.rank(DEMO_QUERY, k=K)
    print(f"\nTop-{K} for {DEMO_QUERY!r} under {engine.ranker.name}:")
    for entry in ranking:
        marker = "  <-- fake news" if entry.doc_id == FAKE_NEWS_DOC_ID else ""
        print(f"  {entry.rank:>2}. {entry.doc_id:<24} {entry.score:8.3f}{marker}")

    # 2. Counterfactual document: which sentences keep it relevant?
    # Every explanation family goes through the one explain() entry point,
    # selected by strategy name (engine.available_strategies() lists them).
    document_cf = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="document/sentence-removal", k=K)
    )
    explanation = document_cf[0]
    print(
        f"\nRemoving {explanation.size} sentence(s) demotes the fake article "
        f"from rank {explanation.original_rank} to {explanation.new_rank} (> k={K}):"
    )
    for sentence in explanation.removed_sentences:
        print(f"  - {sentence.text}")

    # 3. Counterfactual query: which queries would promote it?
    query_cf = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="query/augmentation", n=3, k=K, threshold=2)
    )
    print("\nQueries that raise the fake article to rank <= 2:")
    for explanation in query_cf:
        print(f"  {explanation.augmented_query!r:45} -> rank {explanation.new_rank}")

    # 4. Instance-based: a real, similar, non-relevant document.
    instance_cf = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="instance/doc2vec", k=K)
    )
    instance = instance_cf[0]
    print(
        f"\nNearest non-relevant instance: {instance.counterfactual_doc_id} "
        f"({instance.similarity_percent}% similar)"
    )

    # 5. Build-your-own: script the Fig. 5 edits and re-rank.
    result = engine.build_counterfactual(
        DEMO_QUERY,
        FAKE_NEWS_DOC_ID,
        perturbations=[
            ReplaceTerm("covid-19", "flu"),
            ReplaceTerm("covid", "flu"),
            RemoveTerm("outbreak"),
        ],
        k=K,
    )
    check = "VALID" if result.is_valid_counterfactual else "not valid"
    print(
        f"\nBuilder: covid->flu, outbreak removed: rank "
        f"{result.rank_before} -> {result.rank_after} ({check}); "
        f"revealed: {result.revealed_doc_id}"
    )


if __name__ == "__main__":
    main()
