"""Durable persistence and read-only replicas, end to end.

Walks the v3 persistence surface:

1. build a sharded corpus and commit it as a packed v3 index
   (``save_index(..., format="v3")``);
2. warm-restart an engine from disk (``CredenceEngine.load`` — O(1)
   attach, no posting rebuild) and show the ranking is byte-identical
   to the live engine's;
3. attach two independent ``ReplicaIndex`` views (stand-ins for two
   serving processes) over the same files;
4. have the writer commit a new generation while the replicas stay
   attached, then ``refresh()`` them onto it;
5. show the content-fingerprint ``index.version`` moving with the
   commit — which is what invalidates every version-keyed cache.

Run with::

    python examples/replicas.py
"""

import tempfile
from pathlib import Path

from repro import (
    CredenceEngine,
    Document,
    EngineConfig,
    ReplicaIndex,
    save_index,
)
from repro.datasets.covid import DEMO_QUERY, covid_corpus

K = 5


def show(label: str, engine: CredenceEngine) -> list[str]:
    ranking = engine.rank(DEMO_QUERY, K)
    print(f"\n{label}")
    for position, entry in enumerate(ranking.to_dicts(), start=1):
        print(f"  {position}. {entry['doc_id']:<28} {entry['score']:.3f}")
    return ranking.doc_ids


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="credence-replicas-"))
    path = workdir / "corpus.idx"

    # -- 1. commit a packed v3 index --------------------------------------
    live = CredenceEngine(
        covid_corpus(), EngineConfig(ranker="bm25", seed=5), shards=4
    )
    save_index(live.index, path, format="v3")
    files = sorted(p.name for p in workdir.iterdir())
    print(f"committed generation 1 to {path.name}: {files}")
    reference = show("live engine (in memory)", live)

    # -- 2. warm restart from disk ----------------------------------------
    restarted = CredenceEngine.load(path, config=EngineConfig(ranker="bm25", seed=5))
    info = restarted.index_info()["storage"]
    print(
        f"\nwarm restart: attached {info['format']} generation "
        f"{info['generation']} ({info['bytes_on_disk']} bytes on disk)"
    )
    assert show("restarted engine (packed attach)", restarted) == reference

    # -- 3. two replicas over the same files ------------------------------
    replicas = [ReplicaIndex(path) for _ in range(2)]
    engines = [
        CredenceEngine.from_index(r, config=EngineConfig(ranker="bm25", seed=5))
        for r in replicas
    ]
    assert replicas[0].version == replicas[1].version
    print(
        f"\ntwo replicas attached @ generation {replicas[0].generation}, "
        f"identical fingerprint {replicas[0].version}"
    )

    # -- 4. the writer commits; replicas follow ---------------------------
    old_version = replicas[0].version
    live.add_documents(
        [
            Document(
                "press-clarification",
                "Health officials issued a clarification: the 5G conspiracy "
                "claims about the virus outbreak are false.",
            )
        ]
    )
    save_index(live.index, path, format="v3")
    print("\nwriter committed generation 2 (replicas still on 1)")
    for number, replica in enumerate(replicas, start=1):
        swapped = replica.refresh()
        print(
            f"  replica {number}: refresh -> "
            f"{'attached generation ' + str(replica.generation) if swapped else 'no change'}"
        )

    # -- 5. fingerprints moved with the commit ----------------------------
    assert replicas[0].version == replicas[1].version != old_version
    print(
        f"\nfingerprint moved {old_version} -> {replicas[0].version}: "
        "version-keyed caches invalidate by construction"
    )
    ranks = [engine.rank(DEMO_QUERY, K).doc_ids for engine in engines]
    assert ranks[0] == ranks[1]
    show("replica 1 after refresh (serves the new document set)", engines[0])

    for replica in replicas:
        replica.close()


if __name__ == "__main__":
    main()
