"""Browse Topics + Builder: topic-guided counterfactual editing.

The Builder page's BROWSE TOPICS modal fits an LDA model over the top-k
documents so users can discover relevance-driving vocabulary before
editing. This example reproduces that loop programmatically: fit topics,
pick the topic terms that appear in the target document, remove them,
and test counterfactual validity.

Run with::

    python examples/topic_browsing.py
"""

from repro import DEMO_QUERY, FAKE_NEWS_DOC_ID, ExplainRequest, demo_engine
from repro.core.perturbations import RemoveTerm

K = 10


def main() -> None:
    engine = demo_engine(ranker="bm25")  # fast lexical ranker for this demo

    print(f"Fitting LDA over the top-{K} documents for {DEMO_QUERY!r}...")
    summary = engine.topics(DEMO_QUERY, k=K, num_topics=4, terms_per_topic=8)
    for topic in summary:
        terms = ", ".join(term for term, _ in topic.terms)
        print(f"  topic {topic.topic_id}: {terms}")

    # Which topic dominates the fake-news article?
    analyzer = engine.index.analyzer
    fake_terms = analyzer.analyze_unique(engine.document(FAKE_NEWS_DOC_ID).body)
    overlaps = [
        (sum(1 for term, _ in topic.terms if term in fake_terms), topic)
        for topic in summary
    ]
    overlap_count, dominant = max(overlaps, key=lambda pair: pair[0])
    print(
        f"\nThe fake article shares {overlap_count} terms with topic "
        f"{dominant.topic_id} ({dominant.label})."
    )

    # Edit guided by the topic browser: strip the topic's terms that the
    # article contains, then RE-RANK.
    guided_terms = [term for term, _ in dominant.terms if term in fake_terms]
    print(f"Removing topic terms from the article: {guided_terms}")
    result = engine.build_counterfactual(
        DEMO_QUERY,
        FAKE_NEWS_DOC_ID,
        perturbations=[RemoveTerm(term) for term in guided_terms],
        k=K,
    )
    check = "valid counterfactual" if result.is_valid_counterfactual else "not sufficient"
    print(
        f"Re-rank: {result.rank_before} -> {result.rank_after} ({check})"
    )

    if not result.is_valid_counterfactual:
        print(
            "\nTopic terms alone were not enough — fall back to the "
            "automatic sentence-removal explanation:"
        )
        explanation = engine.explain(
            ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                           strategy="document/sentence-removal", k=K)
        )[0]
        for sentence in explanation.removed_sentences:
            print(f"  ~~{sentence.text}~~")
        print(
            f"(rank {explanation.original_rank} -> {explanation.new_rank}, "
            f"importance {explanation.importance:.0f})"
        )


if __name__ == "__main__":
    main()
