"""Search strategies walkthrough: when beam beats exhaustive.

The demo's fake-news article needs *two* sentence removals to fall out
of the top-10 — no single removal suffices. A single-edit exhaustive
search therefore fails, while beam search walks multi-edit combinations
directly and anytime search returns its best answer under a wall-clock
deadline.

Run with::

    python examples/beam_search.py
"""

from repro import DEMO_QUERY, FAKE_NEWS_DOC_ID, ExplainRequest, demo_engine
from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.core.perturbations import RemoveTerm, ReplaceTerm

K = 10


def main() -> None:
    print("Building the CREDENCE engine (BM25, for a fast walkthrough)...")
    engine = demo_engine(ranker="bm25")

    # 1. Single-edit exhaustive search: provably no one-sentence fix.
    single_edit = CounterfactualDocumentExplainer(
        engine.ranker, max_removals=1
    ).explain(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=K)
    print(
        f"\nExhaustive, max one removal: {len(single_edit)} explanation(s) "
        f"after {single_edit.candidates_evaluated} candidates "
        f"(search_exhausted={single_edit.search_exhausted})"
    )

    # 2. Beam search reaches the two-edit counterfactual. Every family
    #    accepts the same search options through the unified API.
    beam = engine.explain(
        ExplainRequest(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, k=K, search="beam", beam_width=4
        )
    )
    explanation = beam[0]
    print(
        f"\nBeam (width 4) found a {explanation.size}-edit counterfactual in "
        f"{beam.result.candidates_evaluated} evaluations: rank "
        f"{explanation.original_rank} -> {explanation.new_rank}"
    )
    for sentence in explanation.removed_sentences:
        print(f"  - {sentence.text}")

    # 3. Anytime search: best-so-far under a strict deadline. The greedy
    #    incumbent lands fast; refinement runs until the clock expires.
    anytime = engine.explain(
        ExplainRequest(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, k=K, search="anytime", deadline_ms=150
        )
    )
    result = anytime.result
    print(
        f"\nAnytime (150 ms deadline): {len(result)} explanation(s), "
        f"deadline_exceeded={result.deadline_exceeded}, "
        f"evaluated {result.candidates_evaluated} candidates in "
        f"{anytime.elapsed_seconds * 1000:.0f} ms"
    )

    # 4. The Builder joins the kernel too: which of my edits mattered?
    edits = [
        ReplaceTerm("covid", "flu"),
        RemoveTerm("outbreak"),
        ReplaceTerm("staged", "reported"),
    ]
    searched = engine.builder.search_edits(
        DEMO_QUERY, FAKE_NEWS_DOC_ID, edits, k=K
    )
    if len(searched):
        found = searched[0]
        print(
            f"\nBuilder edit search: {found.size} of {len(edits)} scripted "
            f"edits suffice ({found.describe()}), rank "
            f"{found.original_rank} -> {found.new_rank}"
        )
    else:
        print("\nBuilder edit search: no subset of the edits flips the ranking")


if __name__ == "__main__":
    main()
