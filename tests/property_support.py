"""Property-testing support: hypothesis when installed, a seeded-random
fallback otherwise.

The property suites (analyzer/tokenizer round-trips, varint codecs) want
hypothesis's shrinking and edge-case generation, but the project must
not *require* the dependency. This module exposes a tiny uniform
surface:

* ``given(name=strategy, ...)`` — decorator running the test once per
  generated example;
* ``integers(min_value, max_value)`` / ``increasing_ints(...)`` /
  ``text(...)`` — the three strategy shapes the suites need.

With hypothesis installed these delegate to the real library (so CI gets
shrinking and its corpus of known-nasty unicode); without it, a
deterministic seeded ``random.Random`` drives the same invariants over a
fixed number of examples — weaker generation, identical assertions.
"""

from __future__ import annotations

import functools
import inspect
import random

MAX_EXAMPLES = 120

try:  # pragma: no cover - exercised implicitly by the property suites
    from hypothesis import HealthCheck, given as _hypothesis_given, settings
    from hypothesis import strategies as _st

    HAVE_HYPOTHESIS = True

    def given(**strategies):
        def decorate(test):
            return settings(
                max_examples=MAX_EXAMPLES,
                deadline=None,
                suppress_health_check=[HealthCheck.too_slow],
            )(_hypothesis_given(**strategies)(test))

        return decorate

    def integers(min_value: int = 0, max_value: int = 2**63 - 1):
        return _st.integers(min_value=min_value, max_value=max_value)

    def increasing_ints(
        min_size: int = 0,
        max_size: int = 64,
        max_start: int = 2**40,
        max_gap: int = 2**20,
    ):
        return _st.tuples(
            _st.integers(min_value=0, max_value=max_start),
            _st.lists(
                _st.integers(min_value=1, max_value=max_gap),
                min_size=max(0, min_size - 1),
                max_size=max(0, max_size - 1),
            ),
        ).map(lambda pair: _accumulate(pair[0], pair[1], min_size))

    def text(max_size: int = 200):
        return _st.text(max_size=max_size)

except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

    class _Strategy:
        def __init__(self, draw):
            self.draw = draw

    def given(**strategies):
        def decorate(test):
            @functools.wraps(test)
            def run(*args, **kwargs):
                rng = random.Random(0xC0FFEE)
                for _ in range(MAX_EXAMPLES):
                    drawn = {
                        name: strategy.draw(rng)
                        for name, strategy in strategies.items()
                    }
                    test(*args, **kwargs, **drawn)

            # Hide the drawn parameters from pytest's fixture resolution:
            # wraps() exposes the original signature via __wrapped__, and
            # pytest would otherwise demand a fixture per strategy name.
            del run.__wrapped__
            signature = inspect.signature(test)
            run.__signature__ = signature.replace(
                parameters=[
                    parameter
                    for name, parameter in signature.parameters.items()
                    if name not in strategies
                ]
            )
            return run

        return decorate

    def integers(min_value: int = 0, max_value: int = 2**63 - 1):
        return _Strategy(lambda rng: rng.randint(min_value, max_value))

    def increasing_ints(
        min_size: int = 0,
        max_size: int = 64,
        max_start: int = 2**40,
        max_gap: int = 2**20,
    ):
        def draw(rng):
            size = rng.randint(max(1, min_size), max_size)
            start = rng.randint(0, max_start)
            gaps = [rng.randint(1, max_gap) for _ in range(size - 1)]
            return _accumulate(start, gaps, min_size)

        return _Strategy(draw)

    _CODEPOINT_BANDS = (
        (0x20, 0x7E),  # printable ASCII
        (0xA0, 0x2FF),  # Latin supplements (café, naïve)
        (0x370, 0x3FF),  # Greek
        (0x4E00, 0x4FFF),  # a CJK slice
        (0x1F300, 0x1F5FF),  # emoji (astral plane: surrogate handling)
    )

    def text(max_size: int = 200):
        def draw(rng):
            size = rng.randint(0, max_size)
            chars = []
            for _ in range(size):
                low, high = rng.choice(_CODEPOINT_BANDS)
                chars.append(chr(rng.randint(low, high)))
            return "".join(chars)

        return _Strategy(draw)


def _accumulate(start: int, gaps: list[int], min_size: int) -> list[int]:
    values = [start]
    for gap in gaps:
        values.append(values[-1] + gap)
    while len(values) < min_size:  # pad to the floor, still increasing
        values.append(values[-1] + 1)
    return values
