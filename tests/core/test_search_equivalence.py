"""The search kernel must be indistinguishable from the pre-refactor loops.

Each reference function below reproduces one pre-kernel explainer loop
*verbatim* (the code that lived in ``document_cf.explain``,
``greedy.explain``, ``query_cf.explain``, ``instance_cf.explain``, and
``feature_cf.explain`` before the refactor). The kernel-backed
explainers must return byte-identical ``to_dict()`` payloads — same
explanations, same enumeration-order-dependent tie-breaks, same
``candidates_evaluated`` / ``ranker_calls`` / ``physical_scorings`` /
``budget_exhausted`` / ``search_exhausted`` accounting — across every
built-in ranker family.

(The kernel results additionally carry ``search_strategy``, which the
references predate; it is the one field excluded from comparison.)
"""

from __future__ import annotations

import pytest

from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.core.greedy import GreedyDocumentExplainer
from repro.core.importance import sentence_importance_scores
from repro.core.instance_cf import CosineSampledExplainer, Doc2VecNearestExplainer
from repro.core.query_cf import CounterfactualQueryExplainer
from repro.core.types import (
    ExplanationSet,
    InstanceExplanation,
    QueryAugmentationExplanation,
    SentenceRemovalExplanation,
)
from repro.core.validity import is_non_relevant, meets_threshold
from repro.embeddings.doc2vec import train_doc2vec
from repro.embeddings.similarity import cosine_similarity
from repro.embeddings.vectorizers import Bm25Vectorizer
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
from repro.ltr.feature_cf import FeatureCounterfactual, FeatureCounterfactualExplainer
from repro.ltr.models import LinearLtrModel
from repro.ltr.ranker import LtrRanker
from repro.ranking.bm25 import Bm25Ranker
from repro.ranking.cache import ScoreCache
from repro.ranking.lm import DirichletLmRanker
from repro.ranking.rerank import candidate_pool
from repro.ranking.session import IncrementalScoringSession
from repro.ranking.tfidf import TfIdfRanker
from repro.utils.iteration import ordered_subsets
from repro.utils.rng import default_rng

QUERY = "covid outbreak hospital"
K = 5

_TOPICS = [
    "covid outbreak strained the hospital wards",
    "the city council debated transit funding",
    "researchers tracked the covid variant spread",
    "the festival drew record crowds downtown",
    "hospital staff reported outbreak fatigue",
    "markets rallied after the earnings report",
]

_FILLER = [
    "Volunteers repainted the riverside benches.",
    "A bakery introduced a rye sourdough loaf.",
    "The library catalogued donated manuscripts.",
    "Engineers surveyed the old tram bridge.",
    "Gardeners planted drought-resistant shrubs.",
]


def _corpus() -> list[Document]:
    documents = []
    for i in range(24):
        lead = _TOPICS[i % len(_TOPICS)]
        body = ". ".join(
            [
                f"{lead.capitalize()} in district {i}",
                _FILLER[i % len(_FILLER)].rstrip("."),
                f"{_TOPICS[(i + 2) % len(_TOPICS)].capitalize()} again",
                _FILLER[(i + 3) % len(_FILLER)].rstrip("."),
                f"Observers noted item {i} in the evening report",
            ]
        ) + "."
        documents.append(Document(f"doc-{i:02d}", body))
    return documents


@pytest.fixture(scope="module")
def index():
    return InvertedIndex.from_documents(_corpus())


@pytest.fixture(scope="module")
def rankers(index):
    ltr_corpus = assign_priors(_corpus(), seed=7)
    ltr_index = InvertedIndex.from_documents(ltr_corpus)
    examples = synthetic_letor_dataset(
        ltr_corpus, [QUERY, "markets earnings report"], seed=11
    )
    return {
        "bm25": Bm25Ranker(index),
        "tfidf": TfIdfRanker(index),
        "lm": DirichletLmRanker(index),
        "ltr": LtrRanker(ltr_index, LinearLtrModel.fit(examples)),
        "cached": ScoreCache(Bm25Ranker(index)),
    }


RANKER_NAMES = ("bm25", "tfidf", "lm", "ltr", "cached")


def _fingerprint(result: ExplanationSet) -> dict:
    payload = result.to_dict()
    payload.pop("search_strategy")  # the kernel's one new field
    return payload


# -- pre-refactor reference implementations ---------------------------------


def reference_document_cf(
    ranker, query, doc_id, n, k, max_removals=None, max_evaluations=2000
) -> ExplanationSet:
    """The pre-kernel ``CounterfactualDocumentExplainer.explain`` loop."""
    candidates = candidate_pool(ranker, query, k)
    session = ranker.scoring_session(query, candidates)
    original_rank = session.baseline().rank_of(doc_id)
    sentences = session.sentences(doc_id)
    if len(sentences) <= 1:
        return ExplanationSet(
            search_exhausted=True, physical_scorings=session.physical_scorings
        )
    analyzer = ranker.index.analyzer
    importance = sentence_importance_scores(analyzer, query, sentences)
    max_size = min(
        max_removals if max_removals is not None else len(sentences) - 1,
        len(sentences) - 1,
    )
    result: ExplanationSet[SentenceRemovalExplanation] = ExplanationSet()
    try:
        for subset, subset_score in ordered_subsets(
            sentences, importance, max_size=max_size
        ):
            if result.candidates_evaluated >= max_evaluations:
                result.budget_exhausted = True
                return result
            removed_indices = {sentence.index for sentence in subset}
            new_rank = session.rank_without_sentences(doc_id, removed_indices)
            result.candidates_evaluated += 1
            result.ranker_calls += len(candidates)
            if new_rank is not None and is_non_relevant(new_rank, k):
                result.explanations.append(
                    SentenceRemovalExplanation(
                        doc_id=doc_id,
                        query=query,
                        k=k,
                        removed_sentences=tuple(
                            sorted(subset, key=lambda s: s.index)
                        ),
                        importance=subset_score,
                        original_rank=original_rank,
                        new_rank=new_rank,
                        perturbed_body=session.body_without_sentences(
                            doc_id, removed_indices
                        ),
                    )
                )
                if len(result.explanations) >= n:
                    return result
        result.search_exhausted = True
        return result
    finally:
        result.physical_scorings = session.physical_scorings


def reference_greedy(ranker, query, doc_id, k) -> ExplanationSet:
    """The pre-kernel ``GreedyDocumentExplainer.explain`` grow/prune loop."""
    pool = candidate_pool(ranker, query, k)
    session = ranker.scoring_session(query, pool)
    original_rank = session.baseline().rank_of(doc_id)
    sentences = session.sentences(doc_id)
    result: ExplanationSet[SentenceRemovalExplanation] = ExplanationSet()
    if len(sentences) <= 1:
        result.search_exhausted = True
        result.physical_scorings = session.physical_scorings
        return result
    importance = sentence_importance_scores(
        ranker.index.analyzer, query, sentences
    )
    order = sorted(range(len(sentences)), key=lambda i: (-importance[i], i))

    def rank_without(removed):
        if len(removed) >= len(sentences):
            return None
        result.candidates_evaluated += 1
        result.ranker_calls += len(pool)
        return session.rank_without_sentences(doc_id, removed)

    removed: set[int] = set()
    final_rank = None
    for position in order:
        if len(removed) >= len(sentences) - 1:
            break
        removed.add(position)
        rank = rank_without(removed)
        if rank is not None and is_non_relevant(rank, k):
            final_rank = rank
            break
    if final_rank is None:
        result.search_exhausted = True
        result.physical_scorings = session.physical_scorings
        return result

    for position in sorted(removed, key=lambda i: importance[i]):
        if len(removed) == 1:
            break
        candidate = removed - {position}
        rank = rank_without(candidate)
        if rank is not None and is_non_relevant(rank, k):
            removed = candidate
            final_rank = rank

    removed_sentences = tuple(
        sentence for sentence in sentences if sentence.index in removed
    )
    result.explanations.append(
        SentenceRemovalExplanation(
            doc_id=doc_id,
            query=query,
            k=k,
            removed_sentences=removed_sentences,
            importance=sum(importance[s.index] for s in removed_sentences),
            original_rank=original_rank,
            new_rank=final_rank,
            perturbed_body=session.body_without_sentences(doc_id, removed),
        )
    )
    result.physical_scorings = session.physical_scorings
    return result


def reference_query_cf(
    explainer: CounterfactualQueryExplainer, query, doc_id, n, k, threshold
) -> ExplanationSet:
    """The pre-kernel ``CounterfactualQueryExplainer.explain`` loop.

    Reuses the live explainer's ``candidate_terms``/retrieval helpers —
    both unchanged by the refactor — so only the search loop differs.
    """
    ranker = explainer.ranker
    ranking, ranked_documents = explainer._original_top_k(query, k)
    original_rank = ranking.rank_of(doc_id)
    instance = ranker.index.document(doc_id)
    candidates = explainer.candidate_terms(query, instance, ranked_documents)
    result: ExplanationSet[QueryAugmentationExplanation] = ExplanationSet()
    if not candidates:
        result.search_exhausted = True
        return result
    terms = [term for term, _ in candidates]
    scores = [score for _, score in candidates]
    for subset, subset_score in ordered_subsets(
        terms, scores, max_size=min(explainer.max_terms, len(terms))
    ):
        if result.candidates_evaluated >= explainer.max_evaluations:
            result.budget_exhausted = True
            return result
        augmented_query = " ".join([query, *subset])
        session = ranker.scoring_session(augmented_query, ranked_documents)
        reranked = session.baseline()
        result.candidates_evaluated += 1
        result.ranker_calls += len(ranked_documents)
        result.physical_scorings += session.physical_scorings
        new_rank = reranked.rank_of(doc_id)
        if new_rank is not None and meets_threshold(new_rank, threshold):
            result.explanations.append(
                QueryAugmentationExplanation(
                    doc_id=doc_id,
                    original_query=query,
                    added_terms=subset,
                    score=subset_score,
                    threshold=threshold,
                    original_rank=original_rank,
                    new_rank=new_rank,
                )
            )
            if len(result.explanations) >= n:
                return result
    result.search_exhausted = True
    return result


def reference_doc2vec(ranker, model, query, doc_id, n, k) -> ExplanationSet:
    """The pre-kernel ``Doc2VecNearestExplainer.explain``."""
    ranking = ranker.rank(query, min(k, len(ranker.index)))
    relevant = set(ranking.doc_ids)
    non_relevant = [d for d in ranker.index.doc_ids if d not in relevant]
    eligible = {cand for cand in non_relevant if cand in model}
    excluded = set(model.doc_ids) - eligible
    neighbours = model.most_similar(doc_id, n=n, exclude=excluded)
    result: ExplanationSet[InstanceExplanation] = ExplanationSet()
    result.explanations = [
        InstanceExplanation(
            doc_id=doc_id,
            counterfactual_doc_id=neighbour_id,
            similarity=similarity,
            method="doc2vec_nearest",
            query=query,
            k=k,
        )
        for neighbour_id, similarity in neighbours
    ]
    result.candidates_evaluated = len(eligible)
    result.search_exhausted = len(result.explanations) < n
    return result


def reference_cosine(
    ranker, vectorizer, seed, query, doc_id, n, k, samples
) -> ExplanationSet:
    """The pre-kernel ``CosineSampledExplainer.explain``."""
    ranking = ranker.rank(query, min(k, len(ranker.index)))
    relevant = set(ranking.doc_ids)
    non_relevant = [d for d in ranker.index.doc_ids if d not in relevant]
    rng = default_rng(seed)
    if len(non_relevant) > samples:
        chosen = rng.choice(len(non_relevant), size=samples, replace=False)
        sampled = [non_relevant[int(i)] for i in sorted(chosen)]
    else:
        sampled = non_relevant
    instance_vector = vectorizer.vector(doc_id)
    scored = [
        (candidate, cosine_similarity(instance_vector, vectorizer.vector(candidate)))
        for candidate in sampled
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    result: ExplanationSet[InstanceExplanation] = ExplanationSet()
    result.explanations = [
        InstanceExplanation(
            doc_id=doc_id,
            counterfactual_doc_id=candidate,
            similarity=similarity,
            method="cosine_sampled",
            query=query,
            k=k,
        )
        for candidate, similarity in scored[:n]
    ]
    result.candidates_evaluated = len(sampled)
    result.search_exhausted = len(result.explanations) < n
    return result


def reference_feature_cf(
    explainer: FeatureCounterfactualExplainer, query, doc_id, n, k
) -> ExplanationSet:
    """The pre-kernel ``FeatureCounterfactualExplainer.explain`` loop.

    Candidate scoring goes through the live ``FeatureChangeGenerator``
    (extracted unchanged from the old ``_candidate_changes``); only the
    enumeration loop is re-stated here.
    """
    from repro.ltr.feature_cf import FeatureChangeGenerator

    ranker = explainer.ranker
    pool = candidate_pool(ranker, query, k)
    by_id = {document.doc_id: document for document in pool}
    instance = by_id[doc_id]
    baseline_vector = ranker.features.extract(query, instance)
    maybe_session = ranker.scoring_session(query, pool)
    session = (
        maybe_session
        if isinstance(maybe_session, IncrementalScoringSession)
        else None
    )
    baseline = explainer._rank_with_vector(
        query, pool, doc_id, baseline_vector, session
    )
    original_rank = baseline.rank_of(doc_id)
    candidates = [
        (candidate.edit, candidate.score)
        for candidate in FeatureChangeGenerator(
            ranker, baseline_vector, explainer.mutable_features, explainer.grid
        ).generate()
    ]
    result: ExplanationSet[FeatureCounterfactual] = ExplanationSet()
    try:
        if not candidates:
            result.search_exhausted = True
            return result
        items = [change for change, _ in candidates]
        scores = [priority for _, priority in candidates]
        max_size = min(
            explainer.max_changes or len(explainer.mutable_features),
            len(explainer.mutable_features),
        )
        for subset, _ in ordered_subsets(items, scores, max_size=max_size):
            touched = [change.feature for change in subset]
            if len(set(touched)) != len(touched):
                continue
            if result.candidates_evaluated >= explainer.max_evaluations:
                result.budget_exhausted = True
                return result
            perturbed = baseline_vector.replace(
                {change.feature: change.new for change in subset}
            )
            ranking = explainer._rank_with_vector(
                query, pool, doc_id, perturbed, session
            )
            result.candidates_evaluated += 1
            result.ranker_calls += len(pool)
            new_rank = ranking.rank_of(doc_id)
            if new_rank is not None and is_non_relevant(new_rank, k):
                result.explanations.append(
                    FeatureCounterfactual(
                        doc_id=doc_id,
                        query=query,
                        k=k,
                        changes=tuple(sorted(subset, key=lambda c: c.feature)),
                        original_rank=original_rank,
                        new_rank=new_rank,
                    )
                )
                if len(result.explanations) >= n:
                    return result
        result.search_exhausted = True
        return result
    finally:
        vector_scorings = 1 + result.candidates_evaluated
        if session is not None:
            result.physical_scorings = session.physical_scorings + vector_scorings
        else:
            result.physical_scorings = vector_scorings * len(pool)


# -- byte-identical comparisons ---------------------------------------------


@pytest.mark.parametrize("name", RANKER_NAMES)
class TestExhaustiveEquivalence:
    def test_document_cf(self, rankers, name):
        ranker = rankers[name]
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        kernel = CounterfactualDocumentExplainer(
            ranker, max_evaluations=200
        ).explain(QUERY, target, n=2, k=K)
        reference = reference_document_cf(
            ranker, QUERY, target, n=2, k=K, max_evaluations=200
        )
        assert kernel.search_strategy == "exhaustive"
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_document_cf_budget_stop(self, rankers, name):
        ranker = rankers[name]
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        kernel = CounterfactualDocumentExplainer(
            ranker, max_evaluations=3
        ).explain(QUERY, target, n=5, k=K)
        reference = reference_document_cf(
            ranker, QUERY, target, n=5, k=K, max_evaluations=3
        )
        assert kernel.budget_exhausted and reference.budget_exhausted
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_document_cf_max_removals(self, rankers, name):
        ranker = rankers[name]
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        kernel = CounterfactualDocumentExplainer(
            ranker, max_removals=1
        ).explain(QUERY, target, n=1, k=K)
        reference = reference_document_cf(
            ranker, QUERY, target, n=1, k=K, max_removals=1
        )
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_greedy(self, rankers, name):
        ranker = rankers[name]
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        kernel = GreedyDocumentExplainer(ranker).explain(QUERY, target, k=K)
        reference = reference_greedy(ranker, QUERY, target, k=K)
        assert kernel.search_strategy == "greedy"
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_query_cf(self, rankers, name):
        ranker = rankers[name]
        target = ranker.rank(QUERY, K).doc_ids[-1]
        explainer = CounterfactualQueryExplainer(ranker, max_evaluations=300)
        kernel = explainer.explain(QUERY, target, n=1, k=K, threshold=1)
        reference = reference_query_cf(
            explainer, QUERY, target, n=1, k=K, threshold=1
        )
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_query_cf_multiple(self, rankers, name):
        ranker = rankers[name]
        target = ranker.rank(QUERY, K).doc_ids[-1]
        explainer = CounterfactualQueryExplainer(ranker, max_evaluations=300)
        kernel = explainer.explain(QUERY, target, n=3, k=K, threshold=2)
        reference = reference_query_cf(
            explainer, QUERY, target, n=3, k=K, threshold=2
        )
        assert _fingerprint(kernel) == _fingerprint(reference)


class TestInstanceEquivalence:
    @pytest.fixture(scope="class")
    def doc2vec(self, index):
        analyzed = {
            document.doc_id: index.analyzer.analyze(document.body)
            for document in index
        }
        return train_doc2vec(analyzed, dimension=16, epochs=10, seed=5)

    def test_doc2vec_nearest(self, rankers, index, doc2vec):
        ranker = rankers["bm25"]
        target = ranker.rank(QUERY, K).doc_ids[0]
        kernel = Doc2VecNearestExplainer(ranker, doc2vec).explain(
            QUERY, target, n=3, k=K
        )
        reference = reference_doc2vec(ranker, doc2vec, QUERY, target, n=3, k=K)
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_cosine_sampled(self, rankers, index):
        ranker = rankers["bm25"]
        vectorizer = Bm25Vectorizer(index)
        target = ranker.rank(QUERY, K).doc_ids[0]
        for samples in (7, 500):
            kernel = CosineSampledExplainer(
                ranker, vectorizer, seed=9
            ).explain(QUERY, target, n=3, k=K, samples=samples)
            reference = reference_cosine(
                ranker, vectorizer, 9, QUERY, target, n=3, k=K, samples=samples
            )
            assert _fingerprint(kernel) == _fingerprint(reference)


class TestFeatureEquivalence:
    def test_feature_cf(self, rankers):
        ranker = rankers["ltr"]
        explainer = FeatureCounterfactualExplainer(ranker)
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        kernel = explainer.explain(QUERY, target, n=2, k=K)
        reference = reference_feature_cf(explainer, QUERY, target, n=2, k=K)
        assert _fingerprint(kernel) == _fingerprint(reference)

    def test_feature_cf_budget_stop(self, rankers):
        ranker = rankers["ltr"]
        explainer = FeatureCounterfactualExplainer(ranker, max_evaluations=2)
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        kernel = explainer.explain(QUERY, target, n=5, k=K)
        reference = reference_feature_cf(explainer, QUERY, target, n=5, k=K)
        assert _fingerprint(kernel) == _fingerprint(reference)
