"""Tests for sentence and term importance scoring."""

import pytest

from repro.core.importance import TfIdfTermImportance, sentence_importance_scores
from repro.text.analyzer import default_analyzer
from repro.text.sentences import split_sentences

ANALYZER = default_analyzer()


class TestSentenceImportance:
    def test_counts_query_term_occurrences(self):
        sentences = split_sentences(
            "The covid outbreak spread. Markets closed early. Covid again."
        )
        scores = sentence_importance_scores(ANALYZER, "covid outbreak", sentences)
        assert scores == [2.0, 0.0, 1.0]

    def test_repeated_terms_count_by_default(self):
        sentences = split_sentences("Covid covid covid everywhere.")
        scores = sentence_importance_scores(ANALYZER, "covid", sentences)
        assert scores == [3.0]

    def test_distinct_mode_counts_each_term_once(self):
        sentences = split_sentences("Covid covid outbreak here.")
        scores = sentence_importance_scores(
            ANALYZER, "covid outbreak", sentences, distinct=True
        )
        assert scores == [2.0]

    def test_stemming_conflates_variants(self):
        sentences = split_sentences("The outbreaks were spreading.")
        scores = sentence_importance_scores(ANALYZER, "outbreak", sentences)
        assert scores == [1.0]

    def test_empty_query(self):
        sentences = split_sentences("Some text here.")
        assert sentence_importance_scores(ANALYZER, "", sentences) == [0.0]

    def test_paper_example_first_and_last_score_two(self):
        """Fig. 2: the first and last sentences each mention covid and
        outbreak, scoring 2 apiece; their pair scores 4."""
        from repro.datasets.covid import _FAKE_NEWS_BODY

        sentences = split_sentences(_FAKE_NEWS_BODY)
        scores = sentence_importance_scores(ANALYZER, "covid outbreak", sentences)
        assert scores[0] == 2.0
        assert scores[-1] == 2.0
        assert all(score == 0.0 for score in scores[1:-1])


class TestTfIdfTermImportance:
    @pytest.fixture()
    def importance(self):
        instance = (
            "covid outbreak 5g 5g microchip towers covid conspiracy secret"
        )
        ranked = [
            "covid outbreak hospital cases",
            "covid outbreak doctors spread",
            "covid vaccine trial outbreak",
            instance,
        ]
        return TfIdfTermImportance.build(ANALYZER, instance, ranked)

    def test_exclusive_terms_score_highest(self, importance):
        # '5g' and 'microchip' appear only in the instance document.
        assert importance.score("5g") > importance.score("covid")
        assert importance.score("microchip") > importance.score("outbreak")

    def test_frequency_raises_score(self, importance):
        # '5g' occurs twice, 'microchip' once; same exclusivity.
        assert importance.score("5g") > importance.score("microchip")

    def test_absent_term_scores_zero(self, importance):
        assert importance.score("zzz") == 0.0

    def test_document_frequency_over_ranked_list(self, importance):
        assert importance.document_frequency("covid") == 4
        assert importance.document_frequency("5g") == 1

    def test_score_surface_analyzes_first(self, importance):
        assert importance.score_surface("5G") == importance.score("5g")
        assert importance.score_surface("the") == 0.0
