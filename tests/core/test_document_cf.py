"""Tests for counterfactual document explanations (§II-C)."""

import itertools

import pytest

from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.datasets.covid import FAKE_NEWS_DOC_ID
from repro.errors import ExplanationBudgetExceeded, RankingError
from repro.ranking.bm25 import Bm25Ranker
from repro.text.sentences import split_sentences


@pytest.fixture(scope="module")
def explainer(covid_bm25_ranker):
    return CounterfactualDocumentExplainer(covid_bm25_ranker)


@pytest.fixture(scope="module")
def covid_bm25_ranker():
    from repro.datasets.covid import covid_corpus
    from repro.index.inverted import InvertedIndex

    index = InvertedIndex.from_documents(covid_corpus())
    return Bm25Ranker(index)


QUERY = "covid outbreak"


class TestValidityOfResults:
    def test_explanation_is_valid_counterfactual(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)
        assert len(result) == 1
        explanation = result[0]
        assert explanation.new_rank > explanation.k
        assert explainer.is_valid(
            QUERY, FAKE_NEWS_DOC_ID, set(explanation.removed_indices), k=10
        )

    def test_explanation_records_provenance(self, explainer):
        explanation = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)[0]
        assert explanation.doc_id == FAKE_NEWS_DOC_ID
        assert explanation.query == QUERY
        assert 1 <= explanation.original_rank <= 10
        assert explanation.size == len(explanation.removed_sentences)

    def test_perturbed_body_lacks_removed_sentences(self, explainer):
        explanation = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)[0]
        for sentence in explanation.removed_sentences:
            assert sentence.text not in explanation.perturbed_body

    def test_removed_sentences_sorted_by_index(self, explainer):
        explanation = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)[0]
        indices = list(explanation.removed_indices)
        assert indices == sorted(indices)


class TestMinimality:
    def test_first_explanation_is_minimal(self, explainer):
        """No strict subset of the first explanation may itself be valid —
        the guarantee the paper derives from size-major enumeration."""
        explanation = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)[0]
        removed = set(explanation.removed_indices)
        for size in range(1, len(removed)):
            for subset in itertools.combinations(removed, size):
                assert not explainer.is_valid(
                    QUERY, FAKE_NEWS_DOC_ID, set(subset), k=10
                ), f"strict subset {subset} is valid: not minimal"

    def test_paper_scenario_removes_first_and_last_sentences(self, explainer):
        explanation = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)[0]
        body = explainer.ranker.index.document(FAKE_NEWS_DOC_ID).body
        last_index = len(split_sentences(body)) - 1
        assert explanation.removed_indices == (0, last_index)
        assert explanation.importance == 4.0  # two sentences scoring 2 each


class TestSearchControls:
    def test_multiple_explanations_in_order(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=3, k=10)
        sizes = [e.size for e in result]
        assert sizes == sorted(sizes)  # size-major emission order

    def test_budget_returns_partial(self, covid_bm25_ranker):
        tight = CounterfactualDocumentExplainer(
            covid_bm25_ranker, max_evaluations=2
        )
        result = tight.explain(QUERY, FAKE_NEWS_DOC_ID, n=5, k=10)
        assert result.budget_exhausted
        assert result.candidates_evaluated == 2

    def test_budget_raise_mode(self, covid_bm25_ranker):
        tight = CounterfactualDocumentExplainer(
            covid_bm25_ranker, max_evaluations=1, raise_on_budget=True
        )
        with pytest.raises(ExplanationBudgetExceeded):
            tight.explain(QUERY, FAKE_NEWS_DOC_ID, n=5, k=10)

    def test_max_removals_bounds_size(self, covid_bm25_ranker):
        capped = CounterfactualDocumentExplainer(covid_bm25_ranker, max_removals=1)
        result = capped.explain(QUERY, FAKE_NEWS_DOC_ID, n=2, k=10)
        assert all(e.size <= 1 for e in result)

    def test_cost_accounting(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)
        assert result.candidates_evaluated >= 1
        assert result.ranker_calls == result.candidates_evaluated * 11  # k+1 pool


class TestErrorCases:
    def test_unranked_document_rejected(self, explainer):
        with pytest.raises(RankingError):
            explainer.explain(QUERY, "markets-0002", n=1, k=10)

    def test_unknown_document_rejected(self, explainer):
        with pytest.raises(RankingError):
            explainer.explain(QUERY, "ghost", n=1, k=10)

    def test_single_sentence_document_returns_empty(self, covid_bm25_ranker):
        # Build a tiny index where the target doc has one sentence.
        from repro.index.document import Document
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex.from_documents(
            [
                Document("short", "covid outbreak here."),
                Document("other", "covid outbreak elsewhere today."),
                Document("third", "unrelated filler text entirely."),
            ]
        )
        explainer = CounterfactualDocumentExplainer(Bm25Ranker(index))
        result = explainer.explain("covid outbreak", "short", n=1, k=2)
        assert len(result) == 0
        assert result.search_exhausted

    def test_invalid_parameters(self, explainer):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=0)
        with pytest.raises(ConfigurationError):
            explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=0)
