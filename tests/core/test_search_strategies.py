"""Strategy-level tests for the counterfactual search kernel.

A synthetic :class:`SearchProblem` (each candidate carries a known
"damage"; a combination is valid once the summed damage demotes a
fake rank beyond k) pins each strategy's exploration contract without
any ranker in the loop; the Builder composition tests then exercise the
kernel end-to-end over a real scoring session.
"""

from __future__ import annotations

import pytest

from repro.core.builder import CounterfactualBuilder
from repro.core.perturbations import RemoveTerm, ReplaceTerm
from repro.core.search import (
    AnytimeSearch,
    BeamSearch,
    Candidate,
    ExhaustiveSearch,
    GreedySearch,
    SearchBudget,
    SearchProblem,
    StaticCandidates,
    build_strategy,
    resolve_strategy,
    search_overrides,
)
from repro.core.explain import ExplainRequest
from repro.errors import ConfigurationError, ExplanationBudgetExceeded


class FakeDemotionProblem(SearchProblem):
    """Rank = base_rank + summed damage of the applied edits; valid > k."""

    logical_cost = 3

    def __init__(self, damages, k=10, base_rank=5, max_size=None, keys=None):
        keys = keys or [None] * len(damages)
        super().__init__(
            StaticCandidates(
                tuple(
                    Candidate(edit=position, score=float(damage), key=key)
                    for position, (damage, key) in enumerate(zip(damages, keys))
                )
            ),
            max_size=max_size,
        )
        self.damages = list(damages)
        self.k = k
        self.base_rank = base_rank
        self.evaluated: list[tuple[int, ...]] = []

    def evaluate(self, combo):
        self.evaluated.append(combo)
        return self.base_rank + sum(self.damages[i] for i in combo)

    def is_valid(self, rank):
        return rank is not None and rank > self.k

    def progress(self, rank):
        return float("-inf") if rank is None else float(rank)

    def explanation(self, combo, total_score, new_rank):
        return (tuple(sorted(combo)), new_rank)


class TestExhaustiveSearch:
    def test_size_major_score_minor_order(self):
        problem = FakeDemotionProblem([1, 3, 2])  # nothing valid alone
        ExhaustiveSearch().search(problem, n=1, budget=SearchBudget())
        # Singles by score desc, then pairs by summed score desc.
        assert problem.evaluated[:3] == [(1,), (2,), (0,)]
        assert problem.evaluated[3] == (1, 2)

    def test_first_found_is_minimal(self):
        problem = FakeDemotionProblem([4, 3, 2])  # pairs reach > 10
        found, trace = ExhaustiveSearch().search(problem, n=1)
        assert found == [((0, 1), 12)]
        assert not trace.search_exhausted

    def test_search_exhausted_when_space_empty(self):
        found, trace = ExhaustiveSearch().search(FakeDemotionProblem([]), n=1)
        assert found == [] and trace.search_exhausted

    def test_budget_stop_and_raise(self):
        problem = FakeDemotionProblem([1, 1, 1])
        found, trace = ExhaustiveSearch().search(
            problem, n=1, budget=SearchBudget(max_evaluations=2)
        )
        assert trace.budget_exhausted and trace.candidates_evaluated == 2
        with pytest.raises(ExplanationBudgetExceeded):
            ExhaustiveSearch().search(
                FakeDemotionProblem([1, 1, 1]),
                n=1,
                budget=SearchBudget(max_evaluations=2, raise_on_budget=True),
            )

    def test_key_conflicts_skipped_without_budget_charge(self):
        # Neither single is valid (damage ≤ 5) and the pair shares a
        # key, so it is skipped without an evaluation charge.
        problem = FakeDemotionProblem([2, 3], keys=["same", "same"])
        found, trace = ExhaustiveSearch().search(problem, n=1)
        assert (0, 1) not in problem.evaluated and (1, 0) not in problem.evaluated
        assert found == [] and trace.search_exhausted
        assert trace.candidates_evaluated == 2
        assert trace.ranker_calls == 2 * problem.logical_cost

    def test_max_size_caps_enumeration(self):
        problem = FakeDemotionProblem([1, 1, 1], max_size=1)
        found, trace = ExhaustiveSearch().search(problem, n=1)
        assert found == [] and trace.search_exhausted
        assert all(len(combo) == 1 for combo in problem.evaluated)


class TestGreedySearch:
    def test_grows_by_score_then_prunes(self):
        # No single damage exceeds 5, so grow takes 4 (rank 9) then 3
        # (rank 12, valid); pruning cannot drop either without losing
        # validity, so the pair stands.
        problem = FakeDemotionProblem([3, 4, 2])
        found, trace = GreedySearch().search(problem, n=1)
        assert found == [((0, 1), 12)]
        assert trace.candidates_evaluated <= 2 * 3

    def test_immediately_valid_top_scorer_stays_single(self):
        problem = FakeDemotionProblem([7, 6])
        found, trace = GreedySearch().search(problem, n=1)
        assert found == [((0,), 12)]
        assert trace.candidates_evaluated == 1

    def test_no_valid_combination_sets_search_exhausted(self):
        problem = FakeDemotionProblem([1, 1])
        found, trace = GreedySearch().search(problem, n=1)
        assert found == [] and trace.search_exhausted

    def test_budget_exhaustion_before_validity(self):
        problem = FakeDemotionProblem([1, 2, 3, 4, 5])
        found, trace = GreedySearch().search(
            problem, n=1, budget=SearchBudget(max_evaluations=1)
        )
        assert found == [] and trace.budget_exhausted


class TestBeamSearch:
    def test_finds_multi_edit_where_single_edit_fails(self):
        # No single candidate is valid; only triples reach > 10.
        problem = FakeDemotionProblem([2, 2, 2, 1])
        single = FakeDemotionProblem([2, 2, 2, 1], max_size=1)
        none_found, trace = ExhaustiveSearch().search(single, n=1)
        assert none_found == [] and trace.search_exhausted
        found, _ = BeamSearch(beam_width=2).search(problem, n=1)
        assert found and len(found[0][0]) == 3

    def test_width_bounds_the_frontier(self):
        problem = FakeDemotionProblem([1, 1, 1, 1, 1, 1])
        BeamSearch(beam_width=2).search(problem, n=1)
        depth2 = [combo for combo in problem.evaluated if len(combo) == 2]
        # Only the 2 kept states expand, each adding ≤ 5 unused
        # candidates, minus frozenset dedup overlaps.
        assert 0 < len(depth2) <= 2 * 5

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            BeamSearch(beam_width=0)

    def test_collects_n_results(self):
        problem = FakeDemotionProblem([11, 12, 13])
        found, _ = BeamSearch().search(problem, n=2)
        assert len(found) == 2

    def test_budget_stops_mid_depth(self):
        problem = FakeDemotionProblem([1, 1, 1, 1])
        found, trace = BeamSearch().search(
            problem, n=1, budget=SearchBudget(max_evaluations=3)
        )
        assert trace.budget_exhausted and trace.candidates_evaluated == 3


class TestAnytimeSearch:
    def test_refines_greedy_incumbent_to_minimum(self):
        # Candidate scores are the damages, so greedy takes 6 first and
        # is valid immediately (rank 11): the incumbent is already
        # minimal and refinement below size 1 is skipped.
        problem = FakeDemotionProblem([5, 4, 6])
        found, trace = AnytimeSearch().search(problem, n=1)
        assert found == [((2,), 11)]
        assert not trace.budget_exhausted

    def test_returns_incumbent_when_budget_dies_mid_refinement(self):
        # Nothing is valid alone; greedy needs 2 grows; budget leaves no
        # room for refinement, so the incumbent survives.
        problem = FakeDemotionProblem([3, 3, 3])
        found, trace = AnytimeSearch().search(
            problem, n=1, budget=SearchBudget(max_evaluations=3)
        )
        assert len(found) == 1 and len(found[0][0]) == 2
        assert trace.budget_exhausted

    def test_never_raises_on_budget(self):
        problem = FakeDemotionProblem([1, 1, 1])
        found, trace = AnytimeSearch().search(
            problem,
            n=1,
            budget=SearchBudget(max_evaluations=1, raise_on_budget=True),
        )
        assert found == [] and trace.budget_exhausted

    def test_exhausts_cleanly_when_nothing_valid(self):
        problem = FakeDemotionProblem([1, 1])
        found, trace = AnytimeSearch().search(problem, n=1)
        assert found == [] and trace.search_exhausted


class TestStrategyConstruction:
    def test_build_strategy_known_names(self):
        assert build_strategy("exhaustive").name == "exhaustive"
        assert build_strategy("greedy").name == "greedy"
        assert build_strategy("anytime").name == "anytime"
        beam = build_strategy("beam", beam_width=7)
        assert beam.name == "beam" and beam.beam_width == 7

    def test_build_strategy_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown search strategy"):
            build_strategy("simulated-annealing")

    def test_resolve_strategy_passthrough_and_default(self):
        strategy = BeamSearch(beam_width=2)
        assert resolve_strategy(strategy) is strategy
        assert resolve_strategy(None).name == "exhaustive"
        assert resolve_strategy(None, default=GreedySearch()).name == "greedy"
        assert resolve_strategy("anytime").name == "anytime"

    def test_search_overrides_from_request(self):
        request = ExplainRequest(
            "q", "d", search="beam", beam_width=6, budget=99, deadline_ms=250
        )
        search, budget = search_overrides(request)
        assert search.name == "beam" and search.beam_width == 6
        assert budget.max_evaluations == 99 and budget.deadline_ms == 250

    def test_search_overrides_default_request_is_noop(self):
        search, budget = search_overrides(ExplainRequest("q", "d"))
        assert search is None and budget is None

    def test_request_rejects_unknown_search(self):
        with pytest.raises(ConfigurationError):
            ExplainRequest("q", "d", search="magic")
        with pytest.raises(ConfigurationError):
            ExplainRequest("q", "d", beam_width=0)
        with pytest.raises(ConfigurationError):
            ExplainRequest("q", "d", budget=0)
        with pytest.raises(ConfigurationError):
            ExplainRequest("q", "d", deadline_ms=0)


class TestBuilderEditSearch:
    """The Builder composed with the kernel: minimal scripted-edit subsets."""

    QUERY = "covid outbreak"

    @pytest.fixture(scope="class")
    def builder(self):
        from repro.datasets.covid import covid_corpus
        from repro.index.inverted import InvertedIndex
        from repro.ranking.bm25 import Bm25Ranker

        return CounterfactualBuilder(
            Bm25Ranker(InvertedIndex.from_documents(covid_corpus()))
        )

    @pytest.fixture(scope="class")
    def target(self, builder):
        from repro.datasets.covid import FAKE_NEWS_DOC_ID

        return FAKE_NEWS_DOC_ID

    def test_finds_minimal_edit_subset(self, builder, target):
        edits = [
            ReplaceTerm("covid", "flu"),
            RemoveTerm("outbreak"),
            ReplaceTerm("staged", "reported"),  # cosmetic: no rank effect
        ]
        result = builder.search_edits(self.QUERY, target, edits, k=10)
        assert len(result) == 1
        explanation = result[0]
        assert explanation.new_rank > 10
        assert explanation.size < len(edits)
        # Minimality: no strict subset of the found edits suffices.
        assert explanation.size >= 1

    def test_edit_order_is_the_users(self, builder, target):
        edits = [ReplaceTerm("covid", "flu"), RemoveTerm("outbreak")]
        result = builder.search_edits(self.QUERY, target, edits, k=10)
        described = result[0].describe()
        assert described.index("replace") < described.index("remove") or (
            "replace" not in described or "remove" not in described
        )

    def test_no_subset_valid_reports_exhausted(self, builder, target):
        result = builder.search_edits(
            self.QUERY, target, [ReplaceTerm("staged", "reported")], k=10
        )
        assert len(result) == 0 and result.search_exhausted

    def test_requires_edits_and_ranked_document(self, builder, target):
        with pytest.raises(ConfigurationError):
            builder.search_edits(self.QUERY, target, [], k=10)

    def test_greedy_strategy_also_works(self, builder, target):
        edits = [ReplaceTerm("covid", "flu"), RemoveTerm("outbreak")]
        result = builder.search_edits(
            self.QUERY, target, edits, k=10, search="greedy"
        )
        assert result.search_strategy == "greedy"
        if len(result):
            assert result[0].new_rank > 10


class TestReviewRegressions:
    """Pinned behaviours from review: anytime n>1 coverage, prune-phase
    budget truncation, and flag semantics for delivered answers."""

    def test_anytime_collects_n_results_beyond_the_incumbent(self):
        # Every pair is valid (3+3 > 5+... rank 5+6=11 > 10); n=3 must
        # not be capped by the greedy incumbent's size.
        problem = FakeDemotionProblem([3, 3, 3, 3])
        found, trace = AnytimeSearch().search(problem, n=3)
        assert len(found) == 3
        assert not trace.search_exhausted

    def test_anytime_does_not_claim_exhaustion_after_partial_scan(self):
        # One valid single; anytime with n=1 refines below the incumbent
        # only — it must not report the whole space as explored.
        problem = FakeDemotionProblem([6, 1, 1])
        found, trace = AnytimeSearch().search(problem, n=1)
        assert len(found) == 1
        assert not trace.search_exhausted

    def test_greedy_prune_truncation_keeps_answer_unflagged(self):
        # Grow needs 2 evals to a valid pair; a 2-eval budget cuts the
        # prune short, but the returned answer is complete — no flag.
        problem = FakeDemotionProblem([3, 3])
        found, trace = GreedySearch().search(
            problem, n=1, budget=SearchBudget(max_evaluations=2)
        )
        assert len(found) == 1
        assert not trace.budget_exhausted and not trace.deadline_exceeded

    def test_anytime_refinement_skips_greedy_phase_combos(self):
        # Greedy's grow evaluates (0,) first; the size-major refinement
        # must not re-evaluate (and re-charge) it. (Prune re-trying a
        # grow prefix *within* phase 1 is legacy-faithful and allowed.)
        problem = FakeDemotionProblem([2, 2, 2, 1])
        AnytimeSearch().search(problem, n=1)
        singles = [combo for combo in problem.evaluated if len(combo) == 1]
        assert len(singles) == len(set(singles))
