"""Tests for scriptable document perturbations."""

import pytest

from repro.core.perturbations import (
    AppendText,
    CompositePerturbation,
    RemoveSentences,
    RemoveTerm,
    ReplaceTerm,
    apply_all,
)
from repro.errors import ConfigurationError


class TestReplaceTerm:
    def test_replaces_whole_tokens(self):
        assert ReplaceTerm("covid", "flu").apply("the covid wave") == "the flu wave"

    def test_case_insensitive(self):
        assert ReplaceTerm("covid", "flu").apply("COVID Covid covid") == "flu flu flu"

    def test_does_not_match_inside_hyphenated_token(self):
        """Replacing 'covid' must not mangle 'covid-19' (Fig. 5 treats them
        as distinct replacements)."""
        result = ReplaceTerm("covid", "flu").apply("covid and covid-19 differ")
        assert result == "flu and covid-19 differ"

    def test_hyphenated_term_replaced_whole(self):
        result = ReplaceTerm("covid-19", "flu").apply("the covid-19 cases")
        assert result == "the flu cases"

    def test_punctuation_preserved(self):
        assert ReplaceTerm("covid", "flu").apply("covid, covid.") == "flu, flu."

    def test_empty_term_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplaceTerm("", "x")

    def test_describe(self):
        assert "covid" in ReplaceTerm("covid", "flu").describe()


class TestRemoveTerm:
    def test_removes_and_tidies_spaces(self):
        assert RemoveTerm("outbreak").apply("the outbreak grew") == "the grew"

    def test_punctuation_tidied(self):
        assert RemoveTerm("outbreak").apply("an outbreak, they said") == "an, they said"

    def test_case_insensitive(self):
        assert "Outbreak" not in RemoveTerm("outbreak").apply("The Outbreak spread")

    def test_no_match_no_change(self):
        assert RemoveTerm("zzz").apply("plain text") == "plain text"


class TestRemoveSentences:
    def test_removes_by_index(self):
        perturbation = RemoveSentences((1,))
        assert perturbation.apply("Keep one. Drop two. Keep three.") == (
            "Keep one. Keep three."
        )

    def test_out_of_range_index_ignored(self):
        assert RemoveSentences((9,)).apply("Only one.") == "Only one."


class TestAppendText:
    def test_appends_with_separator(self):
        assert AppendText("More.").apply("Original.") == "Original. More."

    def test_appends_to_empty(self):
        assert AppendText("Only.").apply("") == "Only."


class TestComposition:
    def test_composite_applies_in_order(self):
        composite = CompositePerturbation.of(
            ReplaceTerm("covid", "flu"), RemoveTerm("outbreak")
        )
        result = composite.apply("the covid outbreak spread")
        assert "covid" not in result
        assert "outbreak" not in result
        assert "flu" in result

    def test_composite_describe_joins(self):
        composite = CompositePerturbation.of(
            ReplaceTerm("a", "b"), RemoveTerm("c")
        )
        assert ";" in composite.describe()

    def test_apply_all(self):
        result = apply_all(
            "covid covid-19 outbreak",
            [ReplaceTerm("covid-19", "flu"), ReplaceTerm("covid", "flu")],
        )
        assert result == "flu flu outbreak"

    def test_fig5_perturbation_eliminates_query_terms(self):
        """The Fig. 5 edit: covid/covid-19 → flu, outbreak removed."""
        body = (
            "Insiders reveal the covid outbreak was staged. "
            "The covid-19 papers prove it. Wake up: the covid outbreak is a lie."
        )
        edited = apply_all(
            body,
            [
                ReplaceTerm("covid-19", "flu"),
                ReplaceTerm("covid", "flu"),
                RemoveTerm("outbreak"),
            ],
        )
        lowered = edited.lower()
        assert "covid" not in lowered
        assert "outbreak" not in lowered
        assert "flu" in lowered
