"""Tests for scriptable document perturbations."""

import pytest

from repro.core.perturbations import (
    AppendText,
    CompositePerturbation,
    RemoveSentences,
    RemoveTerm,
    ReplaceTerm,
    apply_all,
)
from repro.errors import ConfigurationError


class TestReplaceTerm:
    def test_replaces_whole_tokens(self):
        assert ReplaceTerm("covid", "flu").apply("the covid wave") == "the flu wave"

    def test_case_insensitive(self):
        assert ReplaceTerm("covid", "flu").apply("COVID Covid covid") == "flu flu flu"

    def test_does_not_match_inside_hyphenated_token(self):
        """Replacing 'covid' must not mangle 'covid-19' (Fig. 5 treats them
        as distinct replacements)."""
        result = ReplaceTerm("covid", "flu").apply("covid and covid-19 differ")
        assert result == "flu and covid-19 differ"

    def test_hyphenated_term_replaced_whole(self):
        result = ReplaceTerm("covid-19", "flu").apply("the covid-19 cases")
        assert result == "the flu cases"

    def test_punctuation_preserved(self):
        assert ReplaceTerm("covid", "flu").apply("covid, covid.") == "flu, flu."

    def test_empty_term_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplaceTerm("", "x")

    def test_describe(self):
        assert "covid" in ReplaceTerm("covid", "flu").describe()


class TestRemoveTerm:
    def test_removes_and_tidies_spaces(self):
        assert RemoveTerm("outbreak").apply("the outbreak grew") == "the grew"

    def test_punctuation_tidied(self):
        assert RemoveTerm("outbreak").apply("an outbreak, they said") == "an, they said"

    def test_case_insensitive(self):
        assert "Outbreak" not in RemoveTerm("outbreak").apply("The Outbreak spread")

    def test_no_match_no_change(self):
        assert RemoveTerm("zzz").apply("plain text") == "plain text"


class TestRemoveSentences:
    def test_removes_by_index(self):
        perturbation = RemoveSentences((1,))
        assert perturbation.apply("Keep one. Drop two. Keep three.") == (
            "Keep one. Keep three."
        )

    def test_out_of_range_index_ignored(self):
        assert RemoveSentences((9,)).apply("Only one.") == "Only one."


class TestAppendText:
    def test_appends_with_separator(self):
        assert AppendText("More.").apply("Original.") == "Original. More."

    def test_appends_to_empty(self):
        assert AppendText("Only.").apply("") == "Only."


class TestComposition:
    def test_composite_applies_in_order(self):
        composite = CompositePerturbation.of(
            ReplaceTerm("covid", "flu"), RemoveTerm("outbreak")
        )
        result = composite.apply("the covid outbreak spread")
        assert "covid" not in result
        assert "outbreak" not in result
        assert "flu" in result

    def test_composite_describe_joins(self):
        composite = CompositePerturbation.of(
            ReplaceTerm("a", "b"), RemoveTerm("c")
        )
        assert ";" in composite.describe()

    def test_apply_all(self):
        result = apply_all(
            "covid covid-19 outbreak",
            [ReplaceTerm("covid-19", "flu"), ReplaceTerm("covid", "flu")],
        )
        assert result == "flu flu outbreak"

    def test_fig5_perturbation_eliminates_query_terms(self):
        """The Fig. 5 edit: covid/covid-19 → flu, outbreak removed."""
        body = (
            "Insiders reveal the covid outbreak was staged. "
            "The covid-19 papers prove it. Wake up: the covid outbreak is a lie."
        )
        edited = apply_all(
            body,
            [
                ReplaceTerm("covid-19", "flu"),
                ReplaceTerm("covid", "flu"),
                RemoveTerm("outbreak"),
            ],
        )
        lowered = edited.lower()
        assert "covid" not in lowered
        assert "outbreak" not in lowered
        assert "flu" in lowered


class TestOverlappingSurfaces:
    """Term surfaces that share prefixes/joiners must not cross-match."""

    def test_shorter_term_does_not_eat_longer_surface(self):
        body = "covid and covid-19 and covid19"
        assert ReplaceTerm("covid", "flu").apply(body) == "flu and covid-19 and covid19"

    def test_longer_surface_replaced_without_touching_shorter(self):
        body = "covid and covid-19 spread"
        assert (
            ReplaceTerm("covid-19", "flu").apply(body) == "covid and flu spread"
        )

    def test_dotted_and_apostrophe_joiners_block_partial_matches(self):
        assert ReplaceTerm("U.S", "EU").apply("U.S.A report") == "U.S.A report"
        assert RemoveTerm("don").apply("don't panic") == "don't panic"

    def test_adjacent_occurrences_all_replaced(self):
        assert (
            ReplaceTerm("covid", "flu").apply("covid covid covid")
            == "flu flu flu"
        )

    def test_replacement_containing_the_term_is_not_rescanned(self):
        # A single regex pass: "flu covid" substitutions must not recurse.
        assert (
            ReplaceTerm("covid", "covid covid").apply("a covid b")
            == "a covid covid b"
        )


class TestUnicodeAndCaseFolding:
    def test_uppercase_surface_matches_case_insensitively(self):
        assert (
            ReplaceTerm("COVID", "flu").apply("Covid spreads; COVID mutates")
            == "flu spreads; flu mutates"
        )

    def test_accented_term_round_trip(self):
        assert (
            ReplaceTerm("café", "bar").apply("the café opened") == "the bar opened"
        )

    def test_accented_text_unaffected_by_ascii_term(self):
        # "café" is one token; removing "caf" must not strip its prefix.
        assert RemoveTerm("caf").apply("the café opened") == "the café opened"

    def test_casefolded_removal_tidies_punctuation(self):
        assert (
            RemoveTerm("OUTBREAK").apply("The outbreak, they said, ended.")
            == "The, they said, ended."
        )


class TestCompositeOrdering:
    def test_order_changes_outcome(self):
        replace_then_remove = CompositePerturbation.of(
            ReplaceTerm("covid", "flu"), RemoveTerm("flu")
        )
        remove_then_replace = CompositePerturbation.of(
            RemoveTerm("flu"), ReplaceTerm("covid", "flu")
        )
        body = "covid and flu season"
        assert replace_then_remove.apply(body) == "and season"
        assert remove_then_replace.apply(body) == "flu and season"

    def test_composite_equals_apply_all(self):
        steps = (
            ReplaceTerm("covid", "flu"),
            RemoveTerm("outbreak"),
            AppendText("Stay safe."),
        )
        body = "The covid outbreak continues."
        assert CompositePerturbation(steps).apply(body) == apply_all(body, steps)

    def test_nested_composites_flatten_behaviourally(self):
        inner = CompositePerturbation.of(ReplaceTerm("a", "b"))
        outer = CompositePerturbation.of(inner, ReplaceTerm("b", "c"))
        assert outer.apply("a b") == "c c"


class TestApplyAllIdempotence:
    """Re-applying an already-applied edit script must be a no-op."""

    def test_replace_and_remove_idempotent(self):
        steps = (ReplaceTerm("covid", "flu"), RemoveTerm("outbreak"))
        body = "The covid outbreak, again a covid outbreak."
        once = apply_all(body, steps)
        assert apply_all(once, steps) == once

    def test_remove_sentences_idempotent_on_reapplication(self):
        steps = (RemoveSentences(indices=(1,)),)
        body = "First point. Second point. Third point."
        once = apply_all(body, steps)
        # Re-applying removes the *new* index-1 sentence — idempotence
        # holds per body only for index sets beyond the remaining range.
        beyond = (RemoveSentences(indices=(5,)),)
        assert apply_all(once, beyond) == once

    def test_empty_script_is_identity(self):
        assert apply_all("Anything at all.", ()) == "Anything at all."
