"""Tests for the explainer registry: registration, lookup, availability,
and per-engine memoization."""

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.core.registry import (
    DEFAULT_REGISTRY,
    ExplainerRegistry,
    available_strategies,
)
from repro.core.types import ExplanationSet
from repro.errors import (
    ConfigurationError,
    StrategyUnavailableError,
    UnknownStrategyError,
)

EXPECTED_BUILTINS = {
    "document/sentence-removal",
    "document/greedy",
    "query/augmentation",
    "instance/doc2vec",
    "instance/cosine",
    "features/ltr",
}


class _NullExplainer:
    strategy = "test/null"

    def explain(self, request: ExplainRequest) -> ExplanationSet:
        return ExplanationSet()


class TestDefaultRegistry:
    def test_builtin_names(self):
        assert EXPECTED_BUILTINS <= set(DEFAULT_REGISTRY.names())

    def test_names_sorted(self):
        names = DEFAULT_REGISTRY.names()
        assert list(names) == sorted(names)

    def test_resolve_alias(self):
        assert DEFAULT_REGISTRY.resolve("doc2vec_nearest") == "instance/doc2vec"
        assert DEFAULT_REGISTRY.resolve("cosine_sampled") == "instance/cosine"

    def test_resolve_unknown_raises_with_known_list(self):
        with pytest.raises(UnknownStrategyError) as excinfo:
            DEFAULT_REGISTRY.resolve("document/nope")
        assert excinfo.value.strategy == "document/nope"
        assert "document/sentence-removal" in excinfo.value.known

    def test_module_level_helper(self):
        assert set(available_strategies()) == set(DEFAULT_REGISTRY.names())

    def test_describe_without_engine(self):
        records = DEFAULT_REGISTRY.describe()
        assert {record["name"] for record in records} >= EXPECTED_BUILTINS
        assert all("available" not in record for record in records)

    def test_describe_with_engine_flags_unavailable(self, bm25_engine):
        records = {
            record["name"]: record
            for record in DEFAULT_REGISTRY.describe(bm25_engine)
        }
        assert records["document/sentence-removal"]["available"] is True
        assert records["features/ltr"]["available"] is False
        assert "unavailable_reason" in records["features/ltr"]


class TestCustomRegistry:
    def test_register_and_get(self, bm25_engine):
        registry = ExplainerRegistry()

        @registry.register("test/null", description="does nothing")
        def _build(engine):
            return _NullExplainer()

        assert registry.names() == ("test/null",)
        explainer = registry.get(bm25_engine, "test/null")
        assert explainer.strategy == "test/null"

    def test_duplicate_registration_rejected(self):
        registry = ExplainerRegistry()
        registry.register("test/null")(lambda engine: _NullExplainer())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("test/null")(lambda engine: _NullExplainer())

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplainerRegistry().register("  ")

    def test_factory_called_once_per_engine(self, bm25_engine):
        registry = ExplainerRegistry()
        calls = []

        @registry.register("test/null")
        def _build(engine):
            calls.append(engine)
            return _NullExplainer()

        first = registry.get(bm25_engine, "test/null")
        second = registry.get(bm25_engine, "test/null")
        assert first is second
        assert len(calls) == 1

    def test_distinct_engines_get_distinct_instances(self, covid_documents):
        registry = ExplainerRegistry()
        registry.register("test/null")(lambda engine: _NullExplainer())
        engine_a = CredenceEngine(
            covid_documents, EngineConfig(ranker="bm25", seed=5)
        )
        engine_b = CredenceEngine(
            covid_documents, EngineConfig(ranker="bm25", seed=5)
        )
        assert registry.get(engine_a, "test/null") is not registry.get(
            engine_b, "test/null"
        )

    def test_availability_predicate_gates_get(self, bm25_engine):
        registry = ExplainerRegistry()
        registry.register("test/never", available=lambda engine: "not today")(
            lambda engine: _NullExplainer()
        )
        assert registry.available_strategies(bm25_engine) == ()
        assert registry.available_strategies() == ("test/never",)
        with pytest.raises(StrategyUnavailableError, match="not today"):
            registry.get(bm25_engine, "test/never")

    def test_engine_uses_injected_registry(self, covid_documents):
        registry = ExplainerRegistry()
        registry.register("test/null")(lambda engine: _NullExplainer())
        engine = CredenceEngine(
            covid_documents,
            EngineConfig(ranker="bm25", seed=5),
            registry=registry,
        )
        assert engine.available_strategies() == ("test/null",)
        response = engine.explain(
            ExplainRequest("covid outbreak", "anything", strategy="test/null")
        )
        assert response.ok and len(response) == 0


class TestNoEngineRetention:
    def test_memoised_explainers_do_not_pin_the_engine(self, covid_documents):
        import gc
        import weakref

        engine = CredenceEngine(
            covid_documents, EngineConfig(ranker="bm25", seed=5)
        )
        # Strategies whose explainers live on the engine are the risky
        # ones: a factory closure capturing the engine would make the
        # registry's weak-keyed cache hold its own key alive.
        for strategy in (
            "document/sentence-removal",
            "document/greedy",
            "query/augmentation",
        ):
            DEFAULT_REGISTRY.get(engine, strategy)
        ref = weakref.ref(engine)
        del engine
        gc.collect()
        assert ref() is None


class TestLtrAvailability:
    @pytest.fixture(scope="class")
    def ltr_engine(self):
        from repro.datasets.synthetic import synthetic_corpus
        from repro.index.inverted import InvertedIndex
        from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
        from repro.ltr.models import LinearLtrModel
        from repro.ltr.ranker import LtrRanker

        corpus = assign_priors(synthetic_corpus(size=60, seed=3), seed=7)
        examples = synthetic_letor_dataset(
            corpus,
            ["virus hospital patients", "markets stocks investors"],
            seed=11,
        )
        ranker = LtrRanker(
            InvertedIndex.from_documents(corpus), LinearLtrModel.fit(examples)
        )
        return CredenceEngine(corpus, ranker=ranker)

    def test_ltr_strategy_available(self, ltr_engine):
        assert "features/ltr" in ltr_engine.available_strategies()

    def test_ltr_strategy_runs_through_unified_api(self, ltr_engine):
        query = "virus hospital patients"
        target = ltr_engine.rank(query, k=10).doc_ids[-1]
        response = ltr_engine.explain(
            ExplainRequest(query, target, strategy="features/ltr", k=10)
        )
        assert response.strategy == "features/ltr"
        assert response.ok
        if response.explanations:  # search can legitimately exhaust
            assert response[0].new_rank > 10
