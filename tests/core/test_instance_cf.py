"""Tests for instance-based counterfactual explanations (§II-E)."""

import pytest

from repro.core.instance_cf import CosineSampledExplainer, Doc2VecNearestExplainer
from repro.datasets.covid import FAKE_NEWS_DOC_ID, NEAR_COPY_DOC_ID
from repro.embeddings.vectorizers import TfIdfVectorizer
from repro.errors import ConfigurationError, RankingError

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def ranker(shared_engine):
    return shared_engine.ranker


@pytest.fixture(scope="module")
def shared_engine():
    from repro.core.engine import CredenceEngine, EngineConfig
    from repro.datasets.covid import covid_corpus

    return CredenceEngine(covid_corpus(), EngineConfig(ranker="bm25", seed=5))


@pytest.fixture(scope="module")
def doc2vec_model(shared_engine):
    return shared_engine.doc2vec


class TestDoc2VecNearest:
    def test_explanations_are_non_relevant(self, ranker, doc2vec_model):
        explainer = Doc2VecNearestExplainer(ranker, doc2vec_model)
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=3, k=10)
        top_k = set(ranker.rank(QUERY, 10).doc_ids)
        for explanation in result:
            assert explanation.counterfactual_doc_id not in top_k

    def test_near_copy_is_nearest(self, ranker, doc2vec_model):
        """Fig. 4: the near-copy lacking covid/outbreak is the top instance."""
        explainer = Doc2VecNearestExplainer(ranker, doc2vec_model)
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)
        assert result[0].counterfactual_doc_id == NEAR_COPY_DOC_ID
        assert result[0].similarity > 0.5

    def test_similarities_sorted(self, ranker, doc2vec_model):
        explainer = Doc2VecNearestExplainer(ranker, doc2vec_model)
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=5, k=10)
        similarities = [e.similarity for e in result]
        assert similarities == sorted(similarities, reverse=True)

    def test_method_tag_and_percent(self, ranker, doc2vec_model):
        explainer = Doc2VecNearestExplainer(ranker, doc2vec_model)
        explanation = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)[0]
        assert explanation.method == "doc2vec_nearest"
        assert explanation.similarity_percent == pytest.approx(
            100 * explanation.similarity, abs=0.05
        )

    def test_unranked_instance_rejected(self, ranker, doc2vec_model):
        explainer = Doc2VecNearestExplainer(ranker, doc2vec_model)
        with pytest.raises(RankingError):
            explainer.explain(QUERY, "markets-0002", n=1, k=10)


class TestCosineSampled:
    def test_explanations_are_non_relevant(self, ranker):
        explainer = CosineSampledExplainer(ranker, seed=5)
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=3, k=10, samples=40)
        top_k = set(ranker.rank(QUERY, 10).doc_ids)
        for explanation in result:
            assert explanation.counterfactual_doc_id not in top_k

    def test_near_copy_found_with_full_sampling(self, ranker):
        explainer = CosineSampledExplainer(ranker, seed=5)
        # samples ≥ all non-relevant docs → deterministic, includes the copy.
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, samples=500)
        assert result[0].counterfactual_doc_id == NEAR_COPY_DOC_ID

    def test_sample_count_bounds_evaluations(self, ranker):
        explainer = CosineSampledExplainer(ranker, seed=5)
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=2, k=10, samples=7)
        assert result.candidates_evaluated == 7

    def test_sampling_deterministic_under_seed(self, ranker):
        a = CosineSampledExplainer(ranker, seed=9).explain(
            QUERY, FAKE_NEWS_DOC_ID, n=3, k=10, samples=10
        )
        b = CosineSampledExplainer(ranker, seed=9).explain(
            QUERY, FAKE_NEWS_DOC_ID, n=3, k=10, samples=10
        )
        assert [e.counterfactual_doc_id for e in a] == [
            e.counterfactual_doc_id for e in b
        ]

    def test_n_greater_than_samples_rejected(self, ranker):
        explainer = CosineSampledExplainer(ranker, seed=5)
        with pytest.raises(ConfigurationError):
            explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=10, k=10, samples=5)

    def test_tfidf_vectorizer_variant(self, ranker):
        """The paper: 'any similar collection statistic would suffice'."""
        explainer = CosineSampledExplainer(
            ranker, vectorizer=TfIdfVectorizer(ranker.index), seed=5
        )
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, samples=500)
        assert result[0].counterfactual_doc_id == NEAR_COPY_DOC_ID

    def test_method_tag(self, ranker):
        explainer = CosineSampledExplainer(ranker, seed=5)
        explanation = explainer.explain(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, samples=30
        )[0]
        assert explanation.method == "cosine_sampled"
