"""Tests for counterfactual query explanations (§II-D)."""

import itertools

import pytest

from repro.core.query_cf import CounterfactualQueryExplainer
from repro.datasets.covid import FAKE_NEWS_DOC_ID
from repro.errors import ConfigurationError, RankingError
from repro.ranking.bm25 import Bm25Ranker

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def ranker():
    from repro.datasets.covid import covid_corpus
    from repro.index.inverted import InvertedIndex

    return Bm25Ranker(InvertedIndex.from_documents(covid_corpus()))


@pytest.fixture(scope="module")
def explainer(ranker):
    return CounterfactualQueryExplainer(ranker)


class TestCandidateTerms:
    def test_query_terms_excluded(self, explainer, ranker):
        ranking = ranker.rank(QUERY, 10)
        ranked_docs = [ranker.index.document(d) for d in ranking.doc_ids]
        instance = ranker.index.document(FAKE_NEWS_DOC_ID)
        candidates = explainer.candidate_terms(QUERY, instance, ranked_docs)
        surfaces = [term for term, _ in candidates]
        assert "covid" not in surfaces
        assert "outbreak" not in surfaces

    def test_conspiracy_terms_scored_highest(self, explainer, ranker):
        """The paper: '5G' and 'microchip' get top TF-IDF because they do
        not appear in the other nine relevant documents."""
        ranking = ranker.rank(QUERY, 10)
        ranked_docs = [ranker.index.document(d) for d in ranking.doc_ids]
        instance = ranker.index.document(FAKE_NEWS_DOC_ID)
        candidates = explainer.candidate_terms(QUERY, instance, ranked_docs)
        top_terms = [term for term, _ in candidates[:4]]
        assert "5g" in top_terms
        assert "microchip" in top_terms

    def test_scores_sorted_descending(self, explainer, ranker):
        ranking = ranker.rank(QUERY, 10)
        ranked_docs = [ranker.index.document(d) for d in ranking.doc_ids]
        instance = ranker.index.document(FAKE_NEWS_DOC_ID)
        scores = [s for _, s in explainer.candidate_terms(QUERY, instance, ranked_docs)]
        assert scores == sorted(scores, reverse=True)

    def test_candidate_cap_respected(self, ranker):
        capped = CounterfactualQueryExplainer(ranker, max_candidate_terms=5)
        ranking = ranker.rank(QUERY, 10)
        ranked_docs = [ranker.index.document(d) for d in ranking.doc_ids]
        instance = ranker.index.document(FAKE_NEWS_DOC_ID)
        assert len(capped.candidate_terms(QUERY, instance, ranked_docs)) == 5


class TestValidityOfResults:
    def test_explanations_reach_threshold(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=3, k=10, threshold=2)
        assert len(result) == 3
        for explanation in result:
            assert explanation.new_rank <= 2
            # Independent re-check through the ranker.
            verified = explainer.rank_under_augmentation(
                QUERY, FAKE_NEWS_DOC_ID, explanation.added_terms, k=10
            )
            assert verified == explanation.new_rank

    def test_augmented_query_appends_terms(self, explainer):
        explanation = explainer.explain(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=2
        )[0]
        assert explanation.augmented_query.startswith(QUERY)
        for term in explanation.added_terms:
            assert term in explanation.augmented_query

    def test_paper_scenario_5g_first(self, explainer):
        """Fig. 3: the '5g' augmentation is explored first and suffices."""
        explanation = explainer.explain(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=2
        )[0]
        assert explanation.added_terms == ("5g",)

    def test_threshold_one_needs_stronger_augmentation(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=1)
        explanation = result[0]
        assert explanation.new_rank == 1
        assert "5g" in explanation.added_terms


class TestMinimality:
    def test_first_explanation_is_minimal(self, explainer):
        explanation = explainer.explain(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=1
        )[0]
        added = explanation.added_terms
        for size in range(1, len(added)):
            for subset in itertools.combinations(added, size):
                rank = explainer.rank_under_augmentation(
                    QUERY, FAKE_NEWS_DOC_ID, subset, k=10
                )
                assert rank is None or rank > 1, (
                    f"strict subset {subset} reaches the threshold: not minimal"
                )


class TestSearchControls:
    def test_size_major_emission(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=5, k=10, threshold=2)
        sizes = [e.size for e in result]
        assert sizes == sorted(sizes)

    def test_budget_partial_results(self, ranker):
        tight = CounterfactualQueryExplainer(ranker, max_evaluations=1)
        result = tight.explain(QUERY, FAKE_NEWS_DOC_ID, n=10, k=10, threshold=1)
        assert result.budget_exhausted
        assert result.candidates_evaluated == 1

    def test_max_terms_bounds_subsets(self, ranker):
        capped = CounterfactualQueryExplainer(ranker, max_terms=1, max_evaluations=50)
        result = capped.explain(QUERY, FAKE_NEWS_DOC_ID, n=3, k=10, threshold=2)
        assert all(e.size == 1 for e in result)

    def test_cost_accounting(self, explainer):
        result = explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=2)
        assert result.ranker_calls == result.candidates_evaluated * 10  # k pool


class TestErrorCases:
    def test_unranked_document_rejected(self, explainer):
        with pytest.raises(RankingError):
            explainer.explain(QUERY, "markets-0002", n=1, k=10, threshold=2)

    def test_threshold_beyond_k_rejected(self, explainer):
        with pytest.raises(ConfigurationError):
            explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=11)

    def test_invalid_n(self, explainer):
        with pytest.raises(ConfigurationError):
            explainer.explain(QUERY, FAKE_NEWS_DOC_ID, n=0, k=10, threshold=1)
