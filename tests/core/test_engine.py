"""Tests for the CredenceEngine facade."""

import pytest

from repro.core.engine import CredenceEngine, EngineConfig, RANKER_CHOICES
from repro.core.perturbations import RemoveTerm
from repro.datasets.covid import FAKE_NEWS_DOC_ID
from repro.errors import ConfigurationError

QUERY = "covid outbreak"


class TestConfig:
    def test_unknown_ranker_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(ranker="bert")

    def test_neural_requires_training_queries(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(ranker="neural")

    def test_choices_exported(self):
        assert set(RANKER_CHOICES) == {"bm25", "tfidf", "lm", "neural"}


class TestConstruction:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            CredenceEngine([])

    @pytest.mark.parametrize("ranker_name", ["bm25", "tfidf", "lm"])
    def test_lexical_ranker_choices(self, covid_documents, ranker_name):
        engine = CredenceEngine(
            covid_documents, EngineConfig(ranker=ranker_name, seed=5)
        )
        ranking = engine.rank(QUERY, k=5)
        assert len(ranking) == 5

    def test_custom_ranker_injection(self, covid_documents, bm25_engine):
        from repro.ranking.tfidf import TfIdfRanker

        engine = CredenceEngine(
            covid_documents,
            EngineConfig(ranker="bm25", seed=5),
            ranker=TfIdfRanker(bm25_engine.index),
        )
        assert "TfIdf" in engine.ranker.name

    def test_explicit_ranker_with_config_warns_and_wins(
        self, covid_documents, bm25_engine, caplog
    ):
        import logging

        from repro.ranking.tfidf import TfIdfRanker

        with caplog.at_level(logging.WARNING, logger="repro.core.engine"):
            engine = CredenceEngine(
                covid_documents,
                EngineConfig(ranker="bm25", seed=5),
                ranker=TfIdfRanker(bm25_engine.index),
            )
        assert "TfIdf" in engine.ranker.name  # the explicit ranker wins
        assert "precedence" in caplog.text

    def test_explicit_ranker_without_config_does_not_warn(
        self, covid_documents, bm25_engine, caplog
    ):
        import logging

        from repro.ranking.tfidf import TfIdfRanker

        with caplog.at_level(logging.WARNING, logger="repro.core.engine"):
            CredenceEngine(
                covid_documents, ranker=TfIdfRanker(bm25_engine.index)
            )
        assert not caplog.records

    def test_cache_wrapping_controlled_by_config(self, covid_documents):
        cached = CredenceEngine(
            covid_documents, EngineConfig(ranker="bm25", cache_scores=True)
        )
        raw = CredenceEngine(
            covid_documents, EngineConfig(ranker="bm25", cache_scores=False)
        )
        assert "Cached" in cached.ranker.name
        assert "Cached" not in raw.ranker.name


class TestFacadeMethods:
    def test_rank_caps_k_at_corpus(self, bm25_engine):
        ranking = bm25_engine.rank(QUERY, k=10_000)
        assert len(ranking) <= len(bm25_engine.index)

    def test_explain_document_routes(self, bm25_engine):
        result = bm25_engine.explain_document(QUERY, FAKE_NEWS_DOC_ID, n=1, k=10)
        assert len(result) == 1

    def test_explain_query_routes(self, bm25_engine):
        result = bm25_engine.explain_query(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, threshold=2
        )
        assert len(result) == 1

    def test_instance_explainers_route(self, bm25_engine):
        doc2vec = bm25_engine.explain_instance_doc2vec(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10
        )
        cosine = bm25_engine.explain_instance_cosine(
            QUERY, FAKE_NEWS_DOC_ID, n=1, k=10, samples=20
        )
        assert doc2vec[0].method == "doc2vec_nearest"
        assert cosine[0].method == "cosine_sampled"

    def test_builder_requires_exactly_one_input(self, bm25_engine):
        with pytest.raises(ConfigurationError):
            bm25_engine.build_counterfactual(QUERY, FAKE_NEWS_DOC_ID, k=10)
        with pytest.raises(ConfigurationError):
            bm25_engine.build_counterfactual(
                QUERY,
                FAKE_NEWS_DOC_ID,
                perturbations=[RemoveTerm("covid")],
                edited_body="also text",
                k=10,
            )

    def test_builder_with_perturbations(self, bm25_engine):
        result = bm25_engine.build_counterfactual(
            QUERY, FAKE_NEWS_DOC_ID, perturbations=[RemoveTerm("covid")], k=10
        )
        assert result.doc_id == FAKE_NEWS_DOC_ID

    def test_topics_over_top_k(self, bm25_engine):
        summary = bm25_engine.topics(QUERY, k=10, num_topics=3, terms_per_topic=5)
        assert len(summary) == 3

    def test_doc2vec_trained_lazily_and_cached(self, bm25_engine):
        first = bm25_engine.doc2vec
        second = bm25_engine.doc2vec
        assert first is second
