"""Tests for the greedy-and-prune counterfactual search."""

import pytest

from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.core.greedy import GreedyDocumentExplainer
from repro.datasets.covid import FAKE_NEWS_DOC_ID
from repro.errors import RankingError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ranking.bm25 import Bm25Ranker

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def ranker():
    from repro.datasets.covid import covid_corpus

    return Bm25Ranker(InvertedIndex.from_documents(covid_corpus()))


@pytest.fixture(scope="module")
def greedy(ranker):
    return GreedyDocumentExplainer(ranker)


class TestGreedyValidity:
    def test_explanation_is_valid(self, greedy, ranker):
        result = greedy.explain(QUERY, FAKE_NEWS_DOC_ID, k=10)
        assert len(result) == 1
        explanation = result[0]
        assert explanation.new_rank > 10
        # Independently verified through the exhaustive explainer's checker.
        exhaustive = CounterfactualDocumentExplainer(ranker)
        assert exhaustive.is_valid(
            QUERY, FAKE_NEWS_DOC_ID, set(explanation.removed_indices), k=10
        )

    def test_prune_makes_result_subset_minimal(self, greedy, ranker):
        explanation = greedy.explain(QUERY, FAKE_NEWS_DOC_ID, k=10)[0]
        exhaustive = CounterfactualDocumentExplainer(ranker)
        removed = set(explanation.removed_indices)
        for index in removed:
            if len(removed) == 1:
                break
            assert not exhaustive.is_valid(
                QUERY, FAKE_NEWS_DOC_ID, removed - {index}, k=10
            ), "a pruned-superset survived: prune phase failed"

    def test_matches_exhaustive_on_demo_instance(self, greedy):
        greedy_size, exhaustive_size = greedy.verify_against_exhaustive(
            QUERY, FAKE_NEWS_DOC_ID, k=10
        )
        assert greedy_size == exhaustive_size == 2

    def test_cost_is_linear_not_combinatorial(self, greedy):
        result = greedy.explain(QUERY, FAKE_NEWS_DOC_ID, k=10)
        sentence_count = 5  # the fake article
        assert result.candidates_evaluated <= 2 * sentence_count


class TestGreedyEdgeCases:
    def test_unranked_document_rejected(self, greedy):
        with pytest.raises(RankingError):
            greedy.explain(QUERY, "markets-0002", k=10)

    def test_no_counterfactual_reports_exhausted(self):
        # Every sentence mentions the query terms and the pool's k+1 slot
        # is lexically close — greedy must terminate empty, not loop.
        documents = [
            Document("target", "covid outbreak one. covid outbreak two."),
            Document("other-1", "covid outbreak elsewhere today."),
            Document("other-2", "covid outbreak report tonight."),
        ]
        ranker = Bm25Ranker(InvertedIndex.from_documents(documents))
        greedy = GreedyDocumentExplainer(ranker)
        ranking = ranker.rank(QUERY, 2)
        target = ranking.doc_ids[0]
        result = greedy.explain(QUERY, target, k=2)
        # Either a valid demotion exists or the search reports exhaustion.
        assert len(result) == 1 or result.search_exhausted

    def test_single_sentence_document(self):
        documents = [
            Document("short", "covid outbreak here."),
            Document("other", "covid outbreak elsewhere today."),
            Document("third", "unrelated text entirely."),
        ]
        ranker = Bm25Ranker(InvertedIndex.from_documents(documents))
        result = GreedyDocumentExplainer(ranker).explain(QUERY, "short", k=2)
        assert len(result) == 0
        assert result.search_exhausted
