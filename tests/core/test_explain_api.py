"""Tests for the unified explanation API: ExplainRequest/Response,
engine.explain, explain_batch, memoization, and the deprecation shims."""

import warnings

import pytest

from repro.core.explain import (
    DEFAULT_STRATEGY,
    ExplainRequest,
    ExplainResponse,
)
from repro.datasets.covid import FAKE_NEWS_DOC_ID
from repro.errors import (
    ConfigurationError,
    RankingError,
    StrategyUnavailableError,
    UnknownStrategyError,
)

QUERY = "covid outbreak"


class TestExplainRequest:
    def test_defaults(self):
        request = ExplainRequest(QUERY, FAKE_NEWS_DOC_ID)
        assert request.strategy == DEFAULT_STRATEGY
        assert (request.n, request.k, request.threshold, request.samples) == (
            1, 10, 1, 50
        )
        assert dict(request.extra) == {}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query": ""},
            {"query": "   "},
            {"doc_id": ""},
            {"strategy": " "},
            {"n": 0},
            {"k": -1},
            {"threshold": 0},
            {"samples": 0},
            {"extra": "not-a-mapping"},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        base = {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID}
        with pytest.raises(ConfigurationError):
            ExplainRequest(**{**base, **kwargs})

    def test_round_trip_dict(self):
        request = ExplainRequest(
            QUERY, FAKE_NEWS_DOC_ID, strategy="instance/cosine",
            n=2, k=5, samples=30, extra={"alpha": 1},
        )
        assert ExplainRequest.from_dict(request.to_dict()) == request

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown request field"):
            ExplainRequest.from_dict(
                {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "shards": 4}
            )

    def test_with_strategy(self):
        request = ExplainRequest(QUERY, FAKE_NEWS_DOC_ID)
        retargeted = request.with_strategy("query/augmentation")
        assert retargeted.strategy == "query/augmentation"
        assert retargeted.query == request.query


class TestEngineExplain:
    @pytest.mark.parametrize(
        "strategy",
        [
            "document/sentence-removal",
            "document/greedy",
            "query/augmentation",
            "instance/doc2vec",
            "instance/cosine",
        ],
    )
    def test_every_family_reachable(self, bm25_engine, strategy):
        response = bm25_engine.explain(
            ExplainRequest(QUERY, FAKE_NEWS_DOC_ID, strategy=strategy, samples=30)
        )
        assert response.strategy == strategy
        assert response.ok
        assert len(response) >= 1
        assert response.elapsed_seconds > 0.0

    def test_keyword_form(self, bm25_engine):
        response = bm25_engine.explain(
            query=QUERY, doc_id=FAKE_NEWS_DOC_ID, strategy="query/augmentation",
            n=2, threshold=2,
        )
        assert len(response) == 2
        assert all(e.new_rank <= 2 for e in response)

    def test_request_and_kwargs_mutually_exclusive(self, bm25_engine):
        with pytest.raises(ConfigurationError):
            bm25_engine.explain(
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID), n=2
            )

    def test_unknown_strategy_raises(self, bm25_engine):
        with pytest.raises(UnknownStrategyError, match="registered:"):
            bm25_engine.explain(
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID, strategy="magic/crystal")
            )

    def test_legacy_alias_accepted(self, bm25_engine):
        response = bm25_engine.explain(
            ExplainRequest(QUERY, FAKE_NEWS_DOC_ID, strategy="cosine_sampled",
                           samples=30)
        )
        assert response.strategy == "instance/cosine"

    def test_ltr_strategy_unavailable_on_lexical_ranker(self, bm25_engine):
        with pytest.raises(StrategyUnavailableError):
            bm25_engine.explain(
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID, strategy="features/ltr")
            )
        assert "features/ltr" not in bm25_engine.available_strategies()

    def test_ranking_errors_propagate(self, bm25_engine):
        with pytest.raises(RankingError):
            bm25_engine.explain(ExplainRequest(QUERY, "markets-0002"))

    def test_response_envelope_dict(self, bm25_engine):
        payload = bm25_engine.explain(
            ExplainRequest(QUERY, FAKE_NEWS_DOC_ID)
        ).to_dict()
        assert payload["strategy"] == "document/sentence-removal"
        assert payload["query"] == QUERY
        assert payload["doc_id"] == FAKE_NEWS_DOC_ID
        assert payload["elapsed_seconds"] >= 0.0
        assert payload["explanations"]
        assert "error" not in payload


class TestExplainBatch:
    def test_preserves_order_and_isolates_errors(self, bm25_engine):
        requests = [
            ExplainRequest(QUERY, FAKE_NEWS_DOC_ID,
                           strategy="document/sentence-removal"),
            ExplainRequest(QUERY, "ghost-doc", strategy="query/augmentation"),
            ExplainRequest(QUERY, FAKE_NEWS_DOC_ID,
                           strategy="instance/cosine", samples=30),
        ]
        responses = bm25_engine.explain_batch(requests)
        assert [r.strategy for r in responses] == [
            "document/sentence-removal",
            "query/augmentation",
            "instance/cosine",
        ]
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok
        assert "RankingError" in responses[1].error
        assert responses[1].explanations == []
        assert all(r.elapsed_seconds >= 0.0 for r in responses)

    def test_error_response_dict_carries_error(self, bm25_engine):
        (response,) = bm25_engine.explain_batch(
            [ExplainRequest(QUERY, "ghost-doc")]
        )
        payload = response.to_dict()
        assert "error" in payload and "explanations" not in payload

    def test_unknown_strategy_is_a_per_item_error(self, bm25_engine):
        responses = bm25_engine.explain_batch(
            [
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID, strategy="nope"),
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID),
            ]
        )
        assert not responses[0].ok
        assert responses[1].ok

    def test_rejects_non_request_items(self, bm25_engine):
        with pytest.raises(ConfigurationError):
            bm25_engine.explain_batch([{"query": QUERY}])

    def test_empty_batch(self, bm25_engine):
        assert bm25_engine.explain_batch([]) == []


class TestMemoization:
    def test_instance_explainers_reused_across_calls(self, bm25_engine):
        registry = bm25_engine.registry
        first = registry.get(bm25_engine, "instance/cosine")
        bm25_engine.explain(
            ExplainRequest(QUERY, FAKE_NEWS_DOC_ID, strategy="instance/cosine",
                           samples=30)
        )
        second = registry.get(bm25_engine, "instance/cosine")
        assert first is second

    def test_doc2vec_explainer_reused(self, bm25_engine):
        registry = bm25_engine.registry
        first = registry.get(bm25_engine, "instance/doc2vec")
        second = registry.get(bm25_engine, "instance/doc2vec")
        assert first is second
        # and it holds the engine's lazily-trained (cached) model
        assert bm25_engine.doc2vec is bm25_engine.doc2vec


class TestDeprecatedShims:
    def test_shims_warn_and_match_unified_results(self, bm25_engine):
        cases = [
            (
                lambda: bm25_engine.explain_document(QUERY, FAKE_NEWS_DOC_ID),
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID,
                               strategy="document/sentence-removal"),
            ),
            (
                lambda: bm25_engine.explain_query(
                    QUERY, FAKE_NEWS_DOC_ID, n=2, threshold=2
                ),
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID,
                               strategy="query/augmentation", n=2, threshold=2),
            ),
            (
                lambda: bm25_engine.explain_instance_doc2vec(
                    QUERY, FAKE_NEWS_DOC_ID
                ),
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID,
                               strategy="instance/doc2vec"),
            ),
            (
                lambda: bm25_engine.explain_instance_cosine(
                    QUERY, FAKE_NEWS_DOC_ID, samples=30
                ),
                ExplainRequest(QUERY, FAKE_NEWS_DOC_ID,
                               strategy="instance/cosine", samples=30),
            ),
        ]
        for legacy_call, request in cases:
            with pytest.deprecated_call():
                legacy = legacy_call()
            unified = bm25_engine.explain(request)
            assert [e.to_dict() for e in legacy] == [
                e.to_dict() for e in unified.result
            ]

    def test_shim_returns_explanation_set(self, bm25_engine):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = bm25_engine.explain_document(QUERY, FAKE_NEWS_DOC_ID)
        assert hasattr(result, "candidates_evaluated")
        assert not isinstance(result, ExplainResponse)
