"""Tests for the shared search budget/trace objects and the unified
budget-exhaustion contract across explainer families."""

from __future__ import annotations

import pytest

from repro.core.query_cf import CounterfactualQueryExplainer
from repro.core.search import SearchBudget, UNLIMITED
from repro.core.search.budget import (
    DEADLINE,
    EVALUATIONS,
    SearchTrace,
    budget_stop,
)
from repro.errors import ConfigurationError, ExplanationBudgetExceeded
from repro.ltr.feature_cf import FeatureCounterfactualExplainer
from repro.ranking.bm25 import Bm25Ranker


class TestSearchBudget:
    def test_defaults_are_unbounded(self):
        meter = UNLIMITED.meter()
        assert meter.exhausted(10**9) is None

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ConfigurationError):
            SearchBudget(max_evaluations=0)
        with pytest.raises(ConfigurationError):
            SearchBudget(deadline_ms=0)
        with pytest.raises(ConfigurationError):
            SearchBudget(deadline_ms=-5)

    def test_evaluation_cap_checked_before_spend(self):
        """A budget of b evaluates exactly b candidates: the check runs
        against evaluations already spent."""
        meter = SearchBudget(max_evaluations=3).meter()
        assert meter.exhausted(2) is None
        assert meter.exhausted(3) == EVALUATIONS
        assert meter.exhausted(4) == EVALUATIONS

    def test_deadline_with_injected_clock(self):
        ticks = iter([0.0, 0.010, 0.060])
        meter = SearchBudget(deadline_ms=50).meter(clock=lambda: next(ticks))
        assert meter.exhausted(0) is None  # 10 ms elapsed
        assert meter.exhausted(0) == DEADLINE  # 60 ms elapsed

    def test_evaluations_reported_before_deadline(self):
        clock = iter([0.0, 1.0]).__next__
        meter = SearchBudget(max_evaluations=1, deadline_ms=1).meter(clock=clock)
        assert meter.exhausted(1) == EVALUATIONS


class TestSearchTrace:
    def test_stop_maps_reasons_to_flags(self):
        trace = SearchTrace()
        trace.stop(DEADLINE)
        assert trace.deadline_exceeded and not trace.budget_exhausted
        trace = SearchTrace()
        trace.stop(EVALUATIONS)
        assert trace.budget_exhausted and not trace.deadline_exceeded

    def test_budget_stop_raises_with_partials_when_asked(self):
        trace = SearchTrace()
        found = ["partial"]
        with pytest.raises(ExplanationBudgetExceeded) as excinfo:
            budget_stop(
                trace,
                EVALUATIONS,
                SearchBudget(max_evaluations=1, raise_on_budget=True),
                found,
                n=3,
            )
        assert excinfo.value.partial_results == ["partial"]
        assert trace.budget_exhausted

    def test_budget_stop_returns_quietly_otherwise(self):
        trace = SearchTrace()
        budget_stop(trace, DEADLINE, SearchBudget(deadline_ms=1), [], n=1)
        assert trace.deadline_exceeded


class TestUnifiedBudgetOutcomes:
    """Every family surfaces the same SearchBudget outcome fields —
    the contract documented in :mod:`repro.core.types`."""

    QUERY = "covid outbreak"

    @pytest.fixture(scope="class")
    def ranker(self):
        from repro.datasets.covid import covid_corpus
        from repro.index.inverted import InvertedIndex

        return Bm25Ranker(InvertedIndex.from_documents(covid_corpus()))

    def test_query_cf_raises_on_budget_when_asked(self, ranker):
        explainer = CounterfactualQueryExplainer(
            ranker, max_evaluations=1, raise_on_budget=True
        )
        target = ranker.rank(self.QUERY, 10).doc_ids[-1]
        with pytest.raises(ExplanationBudgetExceeded):
            explainer.explain(self.QUERY, target, n=5, k=10)

    def test_query_cf_deadline_surfaces_uniform_fields(self, ranker):
        explainer = CounterfactualQueryExplainer(ranker)
        target = ranker.rank(self.QUERY, 10).doc_ids[-1]
        result = explainer.explain(
            self.QUERY,
            target,
            n=50,
            k=10,
            budget=SearchBudget(deadline_ms=0.0001),
        )
        assert result.deadline_exceeded
        assert not result.budget_exhausted
        assert not result.search_exhausted
        assert result.to_dict()["deadline_exceeded"] is True

    def test_feature_cf_honours_raise_on_budget(self):
        """Pre-kernel feature_cf silently ignored raise_on_budget."""
        from repro.index.inverted import InvertedIndex
        from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
        from repro.ltr.models import LinearLtrModel
        from repro.ltr.ranker import LtrRanker
        from repro.datasets.covid import covid_corpus

        corpus = assign_priors(covid_corpus(), seed=7)
        index = InvertedIndex.from_documents(corpus)
        examples = synthetic_letor_dataset(corpus, [self.QUERY], seed=11)
        ranker = LtrRanker(index, LinearLtrModel.fit(examples))
        explainer = FeatureCounterfactualExplainer(
            ranker, max_evaluations=1, raise_on_budget=True
        )
        target = ranker.rank(self.QUERY, 10).doc_ids[0]
        with pytest.raises(ExplanationBudgetExceeded):
            explainer.explain(self.QUERY, target, n=5, k=10)

    def test_budget_and_deadline_flags_are_exclusive(self, ranker):
        from repro.core.document_cf import CounterfactualDocumentExplainer

        explainer = CounterfactualDocumentExplainer(ranker)
        target = ranker.rank(self.QUERY, 10).doc_ids[0]
        capped = explainer.explain(
            self.QUERY, target, n=50, k=10,
            budget=SearchBudget(max_evaluations=2),
        )
        assert capped.budget_exhausted and not capped.deadline_exceeded
        assert not capped.complete


class TestGenerationEvaluationsDoNotConsumeBudget:
    """Instance selection reports its similarity computations as
    candidates_evaluated, but only *strategy* evaluations meter against
    the request budget — budget=b evaluates exactly b candidates."""

    def test_instance_cosine_with_small_budget(self):
        from repro.core.instance_cf import CosineSampledExplainer
        from repro.datasets.covid import FAKE_NEWS_DOC_ID, covid_corpus
        from repro.index.inverted import InvertedIndex

        ranker = Bm25Ranker(InvertedIndex.from_documents(covid_corpus()))
        result = CosineSampledExplainer(ranker, seed=5).explain(
            "covid outbreak",
            FAKE_NEWS_DOC_ID,
            n=2,
            k=10,
            samples=50,
            budget=SearchBudget(max_evaluations=10),
        )
        assert len(result) == 2
        assert not result.budget_exhausted
        assert result.candidates_evaluated == 50  # historical accounting
