"""Tests for the build-your-own counterfactual Builder (§III-C)."""

import pytest

from repro.core.builder import CounterfactualBuilder
from repro.core.perturbations import RemoveTerm, ReplaceTerm
from repro.datasets.covid import FAKE_NEWS_DOC_ID
from repro.errors import RankingError
from repro.ranking.bm25 import Bm25Ranker

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def builder():
    from repro.datasets.covid import covid_corpus
    from repro.index.inverted import InvertedIndex

    index = InvertedIndex.from_documents(covid_corpus())
    return CounterfactualBuilder(Bm25Ranker(index))


FIG5_EDITS = [
    ReplaceTerm("covid-19", "flu"),
    ReplaceTerm("covid", "flu"),
    RemoveTerm("outbreak"),
]


class TestRank:
    def test_rank_shows_top_k(self, builder):
        ranking = builder.rank(QUERY, k=10)
        assert len(ranking) == 10
        assert FAKE_NEWS_DOC_ID in ranking


class TestRerankEdited:
    def test_gutting_query_terms_validates(self, builder):
        result = builder.apply_and_rerank(QUERY, FAKE_NEWS_DOC_ID, FIG5_EDITS, k=10)
        assert result.is_valid_counterfactual
        assert result.rank_after == 11  # k + 1, as in Fig. 5
        assert result.rank_before <= 10

    def test_harmless_edit_is_invalid_counterfactual(self, builder):
        result = builder.apply_and_rerank(
            QUERY, FAKE_NEWS_DOC_ID, [ReplaceTerm("insiders", "sources")], k=10
        )
        assert not result.is_valid_counterfactual
        assert result.rank_after == result.rank_before

    def test_movements_cover_all_pool_documents(self, builder):
        result = builder.apply_and_rerank(QUERY, FAKE_NEWS_DOC_ID, FIG5_EDITS, k=10)
        assert len(result.movements) == len(result.new_ranking) == 11

    def test_revealed_document_identified(self, builder):
        """The originally hidden rank-11 document gets the orange plus."""
        result = builder.apply_and_rerank(QUERY, FAKE_NEWS_DOC_ID, FIG5_EDITS, k=10)
        revealed = result.revealed_doc_id
        assert revealed is not None
        baseline_top_k = set(result.original_ranking.top(10).doc_ids)
        assert revealed not in baseline_top_k

    def test_demoted_document_direction_is_lowered(self, builder):
        result = builder.apply_and_rerank(QUERY, FAKE_NEWS_DOC_ID, FIG5_EDITS, k=10)
        direction = {
            movement.doc_id: movement.direction for movement in result.movements
        }[FAKE_NEWS_DOC_ID]
        assert direction == "lowered"

    def test_others_raised_when_target_demoted(self, builder):
        result = builder.apply_and_rerank(QUERY, FAKE_NEWS_DOC_ID, FIG5_EDITS, k=10)
        raised = [m for m in result.movements if m.direction == "raised"]
        assert raised  # documents below the target move up

    def test_free_text_edit(self, builder):
        result = builder.rerank_edited(
            QUERY, FAKE_NEWS_DOC_ID, "completely unrelated replacement text", k=10
        )
        assert result.is_valid_counterfactual

    def test_boosting_edit_raises_rank(self, builder):
        result = builder.rerank_edited(
            QUERY,
            FAKE_NEWS_DOC_ID,
            "covid outbreak covid outbreak covid outbreak covid outbreak report",
            k=10,
        )
        assert result.rank_after < result.rank_before
        assert not result.is_valid_counterfactual

    def test_to_dict_serialisable(self, builder):
        import json

        result = builder.apply_and_rerank(QUERY, FAKE_NEWS_DOC_ID, FIG5_EDITS, k=10)
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["is_valid_counterfactual"] is True


class TestErrorCases:
    def test_unranked_document_rejected(self, builder):
        with pytest.raises(RankingError):
            builder.rerank_edited(QUERY, "markets-0002", "text", k=10)

    def test_invalid_k(self, builder):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            builder.rank(QUERY, k=0)
