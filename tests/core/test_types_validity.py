"""Tests for explanation records and validity predicates."""

import json

import pytest

from repro.core.types import (
    ExplanationSet,
    InstanceExplanation,
    QueryAugmentationExplanation,
    SentenceRemovalExplanation,
)
from repro.core.validity import is_non_relevant, meets_threshold
from repro.errors import ConfigurationError
from repro.text.sentences import Sentence


class TestValidityPredicates:
    def test_non_relevant_beyond_k(self):
        assert is_non_relevant(11, 10)
        assert not is_non_relevant(10, 10)
        assert not is_non_relevant(1, 10)

    def test_meets_threshold(self):
        assert meets_threshold(1, 2)
        assert meets_threshold(2, 2)
        assert not meets_threshold(3, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            is_non_relevant(0, 10)
        with pytest.raises(ConfigurationError):
            meets_threshold(1, 0)


class TestSentenceRemovalExplanation:
    @pytest.fixture()
    def explanation(self):
        return SentenceRemovalExplanation(
            doc_id="d",
            query="covid outbreak",
            k=10,
            removed_sentences=(
                Sentence("First.", 0, 6, 0),
                Sentence("Last.", 10, 15, 4),
            ),
            importance=4.0,
            original_rank=3,
            new_rank=11,
            perturbed_body="middle only",
        )

    def test_derived_fields(self, explanation):
        assert explanation.removed_indices == (0, 4)
        assert explanation.size == 2

    def test_json_roundtrip(self, explanation):
        payload = explanation.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["removed_sentences"] == ["First.", "Last."]


class TestQueryAugmentationExplanation:
    def test_augmented_query_composition(self):
        explanation = QueryAugmentationExplanation(
            doc_id="d",
            original_query="covid outbreak",
            added_terms=("5g", "microchip"),
            score=9.0,
            threshold=1,
            original_rank=3,
            new_rank=1,
        )
        assert explanation.augmented_query == "covid outbreak 5g microchip"
        assert explanation.size == 2
        assert explanation.to_dict()["augmented_query"] == explanation.augmented_query


class TestInstanceExplanation:
    def test_percent_rounding(self):
        explanation = InstanceExplanation(
            doc_id="a",
            counterfactual_doc_id="b",
            similarity=0.7512,
            method="doc2vec_nearest",
            query="q",
            k=10,
        )
        assert explanation.similarity_percent == 75.1


class TestExplanationSet:
    def test_container_protocol(self):
        result = ExplanationSet(explanations=[1, 2, 3])
        assert len(result) == 3
        assert result[0] == 1
        assert list(result) == [1, 2, 3]

    def test_complete_flag(self):
        assert ExplanationSet().complete
        assert not ExplanationSet(budget_exhausted=True).complete
