"""Property-based tests for perturbation application.

Perturbations feed text back into the analyzer; these properties pin the
contract between the two: a removed/replaced term must vanish from the
*analyzed* view of the perturbed text, on arbitrary generated documents.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perturbations import RemoveTerm, ReplaceTerm
from repro.text.analyzer import Analyzer

# Surface words that survive analysis unchanged (no stemming collisions),
# so properties can reason about exact term identity.
WORDS = st.sampled_from(
    ["covid", "flu", "tower", "microchip", "plot", "secret", "network", "5g"]
)
ANALYZER = Analyzer(stem=False, remove_stopwords=False)

documents = st.lists(WORDS, min_size=1, max_size=30).map(" ".join)


@settings(max_examples=80, deadline=None)
@given(body=documents, term=WORDS)
def test_remove_term_eliminates_every_occurrence(body, term):
    perturbed = RemoveTerm(term).apply(body)
    assert term not in ANALYZER.analyze(perturbed)


@settings(max_examples=80, deadline=None)
@given(body=documents, term=WORDS)
def test_remove_term_touches_nothing_else(body, term):
    original_terms = [t for t in ANALYZER.analyze(body) if t != term]
    perturbed_terms = ANALYZER.analyze(RemoveTerm(term).apply(body))
    assert perturbed_terms == original_terms


@settings(max_examples=80, deadline=None)
@given(body=documents, term=WORDS, replacement=WORDS)
def test_replace_term_substitutes_in_place(body, term, replacement):
    if term == replacement:
        return
    original_terms = ANALYZER.analyze(body)
    perturbed_terms = ANALYZER.analyze(ReplaceTerm(term, replacement).apply(body))
    expected = [replacement if t == term else t for t in original_terms]
    assert perturbed_terms == expected


@settings(max_examples=50, deadline=None)
@given(body=documents, term=WORDS)
def test_remove_is_idempotent(body, term):
    once = RemoveTerm(term).apply(body)
    twice = RemoveTerm(term).apply(once)
    assert once == twice
