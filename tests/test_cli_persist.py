"""CLI coverage for the persistence surface.

``index --save --format``, ``compact``, and the exit-2 contract for
unknown/corrupt index files. All in-process through ``main([...])``.
"""

import json

import pytest

from repro.cli import main
from repro.datasets.loaders import save_jsonl
from repro.index.persist import PackedIndex, PackedShardedIndex
from repro.index.storage import detect_format, load_index


def _build(tmp_path, tiny_docs, out_path, *extra):
    corpus = tmp_path / "docs.jsonl"
    save_jsonl(tiny_docs, corpus)
    return main(
        [
            "index",
            "--corpus", str(corpus),
            "--save", str(out_path),
            "--json",
            *extra,
        ]
    )


class TestIndexSaveFormats:
    def test_default_format_is_v3(self, capsys, tmp_path, tiny_docs):
        out_path = tmp_path / "built.idx"
        code = _build(tmp_path, tiny_docs, out_path)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["format"] == "v3"
        assert detect_format(out_path) == "v3"
        loaded = load_index(out_path)
        try:
            assert isinstance(loaded, PackedIndex)
            assert len(loaded) == len(tiny_docs)
        finally:
            loaded.close()

    def test_v2_keeps_legacy_json(self, capsys, tmp_path, tiny_docs):
        out_path = tmp_path / "built.json"
        code = _build(tmp_path, tiny_docs, out_path, "--format", "v2")
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["format"] == "v2"
        assert detect_format(out_path) == "v1"  # plain index → v1 file
        assert json.loads(out_path.read_text())["format_version"] == 1

    def test_sharded_v3_save(self, capsys, tmp_path, tiny_docs):
        out_path = tmp_path / "built.idx"
        code = _build(
            tmp_path, tiny_docs, out_path, "--shards", "2", "--workers", "2"
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["shards"] == 2
        loaded = load_index(out_path)
        try:
            assert isinstance(loaded, PackedShardedIndex)
            assert loaded.shard_count == 2
        finally:
            loaded.close()

    def test_unknown_format_rejected_by_parser(self, tmp_path, tiny_docs):
        with pytest.raises(SystemExit):
            _build(tmp_path, tiny_docs, tmp_path / "x.idx", "--format", "v9")


class TestCompact:
    @pytest.mark.parametrize("src_shards", ["1", "2"], ids=["plain", "sharded"])
    def test_v2_to_v3_round_trip(self, capsys, tmp_path, tiny_docs, src_shards):
        src = tmp_path / "legacy.json"
        assert (
            _build(
                tmp_path, tiny_docs, src,
                "--format", "v2", "--shards", src_shards,
            )
            == 0
        )
        capsys.readouterr()
        dst = tmp_path / "packed.idx"
        code = main(["compact", str(src), str(dst), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["dst_format"] == "v3"
        assert payload["documents"] == len(tiny_docs)
        assert payload["src_bytes"] > 0 and payload["dst_bytes"] > 0
        assert detect_format(dst) == "v3"
        src_index = load_index(src)
        dst_index = load_index(dst)
        try:
            assert dst_index.doc_ids == [d.doc_id for d in src_index]
            assert list(dst_index.terms()) == list(src_index.terms())
        finally:
            dst_index.close()

    def test_v3_to_v2_downgrade(self, capsys, tmp_path, tiny_docs):
        src = tmp_path / "packed.idx"
        assert _build(tmp_path, tiny_docs, src) == 0
        capsys.readouterr()
        dst = tmp_path / "legacy.json"
        code = main(
            ["compact", str(src), str(dst), "--format", "v2", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert detect_format(dst) == "v1"
        assert payload["src_format"] == "v3"

    def test_human_output(self, capsys, tmp_path, tiny_docs):
        src = tmp_path / "packed.idx"
        assert _build(tmp_path, tiny_docs, src) == 0
        capsys.readouterr()
        code = main(["compact", str(src), str(tmp_path / "copy.idx")])
        out = capsys.readouterr().out
        assert code == 0
        assert "compacted" in out and "v3" in out


class TestCorruptInputExitCodes:
    def test_compact_corrupt_source_exits_2(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.idx"
        bogus.write_bytes(b"\x00\x01 not an index")
        code = main(["compact", str(bogus), str(tmp_path / "out.idx")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        # The clean library-typed message, not a JSON traceback.
        assert "recognised" in captured.err

    def test_compact_unknown_version_exits_2(self, capsys, tmp_path):
        bogus = tmp_path / "future.json"
        bogus.write_text('{"format_version": 42}')
        code = main(["compact", str(bogus), str(tmp_path / "out.idx")])
        captured = capsys.readouterr()
        assert code == 2
        assert "unsupported index format version" in captured.err

    def test_serve_replica_corrupt_index_exits_2(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.idx"
        bogus.write_text("not sqlite")
        code = main(["serve", "--replica", str(bogus), "--port", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
