"""Tests for the shared analyzer pipeline."""

from repro.text.analyzer import Analyzer, default_analyzer, surface_analyzer


class TestDefaultAnalyzer:
    def test_full_pipeline(self):
        analyzer = default_analyzer()
        assert analyzer.analyze("The outbreaks were spreading!") == [
            "outbreak",
            "spread",
        ]

    def test_stopwords_removed(self):
        assert default_analyzer().analyze("the and of") == []

    def test_case_folded(self):
        analyzer = default_analyzer()
        assert analyzer.analyze("COVID Covid covid") == ["covid"] * 3

    def test_accents_folded(self):
        assert default_analyzer().analyze("café") == ["cafe"]

    def test_hyphenated_terms_survive(self):
        assert "covid-19" in default_analyzer().analyze("the COVID-19 articles")

    def test_offsets_preserved_through_analysis(self):
        text = "The Outbreak Spread."
        analyzer = default_analyzer()
        for analyzed in analyzer.analyze_tokens(text):
            surface = text[analyzed.start : analyzed.end]
            assert surface == analyzed.token.text

    def test_analyze_unique(self):
        terms = default_analyzer().analyze_unique("covid covid outbreak")
        assert terms == {"covid", "outbreak"}

    def test_term_of_single_word(self):
        assert default_analyzer().term_of("Outbreaks") == "outbreak"

    def test_term_of_stopword_is_none(self):
        assert default_analyzer().term_of("the") is None


class TestConfigurations:
    def test_surface_analyzer_keeps_everything(self):
        analyzer = surface_analyzer()
        assert analyzer.analyze("The Outbreaks") == ["the", "outbreaks"]

    def test_no_stemming(self):
        analyzer = Analyzer(stem=False)
        assert analyzer.analyze("outbreaks spreading") == ["outbreaks", "spreading"]

    def test_min_token_length(self):
        analyzer = Analyzer(min_token_length=3, remove_stopwords=False, stem=False)
        assert analyzer.analyze("a of the cat") == ["the", "cat"]

    def test_shared_meaning_of_term(self):
        # The same analyzer must give identical terms for query and document —
        # the consistency the counterfactual algorithms rely on.
        analyzer = default_analyzer()
        query_terms = set(analyzer.analyze("covid outbreak"))
        doc_terms = set(
            analyzer.analyze("The COVID outbreaks are spreading everywhere.")
        )
        assert query_terms <= doc_terms
