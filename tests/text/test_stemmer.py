"""Tests for the Porter stemmer against classic reference pairs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer

STEMMER = PorterStemmer()

# Reference pairs from Porter's original paper and the canonical test set.
REFERENCE = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", REFERENCE)
def test_reference_pairs(word, expected):
    assert STEMMER.stem(word) == expected


class TestStemmerBehaviour:
    def test_short_words_untouched(self):
        assert STEMMER.stem("is") == "is"
        assert STEMMER.stem("be") == "be"

    def test_idempotent_on_reference_set(self):
        # Stemming a stem should usually be stable; check the reference set.
        for _, stem in REFERENCE:
            twice = STEMMER.stem(STEMMER.stem(stem))
            assert twice == STEMMER.stem(stem)

    def test_domain_terms_conflate(self):
        assert STEMMER.stem("outbreaks") == STEMMER.stem("outbreak")
        assert STEMMER.stem("vaccines") == STEMMER.stem("vaccine")
        assert STEMMER.stem("spreading") == STEMMER.stem("spread")

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), max_size=20))
    def test_never_crashes_or_grows(self, word):
        result = STEMMER.stem(word)
        assert isinstance(result, str)
        assert len(result) <= len(word) + 1  # only +e restorations grow
