"""Property-based invariants for the tokenizer and analyzer pipeline.

The example-based text suites pin behaviour on curated sentences; these
throw arbitrary unicode (hypothesis when installed, seeded random
otherwise) at the pipeline and assert the structural invariants the
index and the counterfactual explainers rely on: spans are exact and
ordered, token analysis is context-free (the memoized-ingest contract),
and analysis distributes over whitespace concatenation.
"""

from property_support import given, text
from repro.text.analyzer import default_analyzer, surface_analyzer
from repro.text.tokenizer import token_texts, tokenize

ANALYZER = default_analyzer()
SURFACE = surface_analyzer()


class TestTokenizerProperties:
    @given(sample=text(max_size=200))
    def test_spans_cover_their_text(self, sample):
        for token in tokenize(sample):
            assert sample[token.start:token.end] == token.text

    @given(sample=text(max_size=200))
    def test_spans_are_ordered_and_disjoint(self, sample):
        cursor = 0
        for token in tokenize(sample):
            assert token.start >= cursor
            assert token.end > token.start
            cursor = token.end

    @given(sample=text(max_size=120))
    def test_retokenizing_a_token_is_identity(self, sample):
        # A matched token is itself a single token — the property that
        # lets the builder treat token texts as atomic edit units.
        for token in tokenize(sample):
            assert token_texts(token.text) == [token.text]

    @given(sample=text(max_size=120))
    def test_tokens_contain_no_whitespace(self, sample):
        for token in tokenize(sample):
            assert not any(ch.isspace() for ch in token.text)
            assert "_" not in token.text


class TestAnalyzerProperties:
    @given(sample=text(max_size=200))
    def test_analysis_is_deterministic(self, sample):
        assert ANALYZER.analyze(sample) == ANALYZER.analyze(sample)

    @given(sample=text(max_size=200))
    def test_terms_are_nonempty_and_spaceless(self, sample):
        for term in ANALYZER.analyze(sample):
            assert term
            assert not any(ch.isspace() for ch in term)

    @given(sample=text(max_size=200))
    def test_token_analysis_is_context_free(self, sample):
        # Bulk ingestion memoizes analyze_token per surface form
        # (AnalysisMemo); that is only sound if a token's analysis never
        # depends on surrounding text.
        expected = [
            term
            for term in (
                ANALYZER.analyze_token(token.text) for token in tokenize(sample)
            )
            if term is not None
        ]
        assert ANALYZER.analyze(sample) == expected

    @given(left=text(max_size=100), right=text(max_size=100))
    def test_analysis_distributes_over_concatenation(self, left, right):
        # A space is never token-internal, so analysing two texts joined
        # by one must equal the concatenated analyses — the property that
        # makes chunked streaming ingest equivalent to whole-corpus
        # ingest.
        joined = ANALYZER.analyze(f"{left} {right}")
        assert joined == ANALYZER.analyze(left) + ANALYZER.analyze(right)

    @given(sample=text(max_size=200))
    def test_unique_terms_match_sequence(self, sample):
        assert ANALYZER.analyze_unique(sample) == set(ANALYZER.analyze(sample))

    @given(sample=text(max_size=200))
    def test_surface_analysis_is_a_superset(self, sample):
        # The surface analyzer only skips filters; it can never produce
        # *fewer* terms than tokenization, and the default analyzer can
        # never produce more than the surface one.
        assert len(SURFACE.analyze(sample)) <= len(tokenize(sample))
        assert len(ANALYZER.analyze(sample)) <= len(SURFACE.analyze(sample))

    @given(sample=text(max_size=200))
    def test_analyzed_offsets_point_at_source_tokens(self, sample):
        for analyzed in ANALYZER.analyze_tokens(sample):
            assert sample[analyzed.start:analyzed.end] == analyzed.token.text
