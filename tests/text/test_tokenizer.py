"""Tests for the offset-preserving tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import Token, token_texts, tokenize


class TestTokenize:
    def test_basic_words(self):
        assert token_texts("Hello brave world") == ["Hello", "brave", "world"]

    def test_hyphenated_token_stays_whole(self):
        assert token_texts("The COVID-19 outbreak") == ["The", "COVID-19", "outbreak"]

    def test_apostrophes_kept(self):
        assert token_texts("don't panic") == ["don't", "panic"]

    def test_numbers_and_alphanumerics(self):
        assert token_texts("5G towers, 42 cases") == ["5G", "towers", "42", "cases"]

    def test_punctuation_dropped(self):
        assert token_texts("wait... what?!") == ["wait", "what"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_offsets_point_back_into_source(self):
        text = "The covid-19 outbreak grew."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_offsets_strictly_increasing(self):
        tokens = tokenize("a b c d")
        starts = [t.start for t in tokens]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)

    def test_internal_dots_kept(self):
        assert token_texts("the u.s. economy") == ["the", "u.s", "economy"]

    @given(st.text(max_size=200))
    def test_all_spans_valid_on_arbitrary_text(self, text):
        for token in tokenize(text):
            assert 0 <= token.start < token.end <= len(text)
            assert text[token.start : token.end] == token.text


class TestToken:
    def test_span_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Token("abc", 0, 2)

    def test_str_is_surface(self):
        assert str(Token("hi", 0, 2)) == "hi"
