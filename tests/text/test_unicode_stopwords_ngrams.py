"""Tests for unicode folding, stopwords, and n-grams."""

import pytest

from repro.errors import ConfigurationError
from repro.text.ngrams import ngrams
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword
from repro.text.unicode import normalize_text, strip_accents


class TestNormalizeText:
    def test_casefolds(self):
        assert normalize_text("COVID") == "covid"

    def test_keeps_case_when_disabled(self):
        assert normalize_text("COVID", casefold=False) == "COVID"

    def test_curly_quotes_folded(self):
        assert normalize_text("don’t") == "don't"

    def test_dashes_folded(self):
        assert normalize_text("covid–19") == "covid-19"

    def test_accents_stripped(self):
        assert normalize_text("Café Zürich") == "cafe zurich"

    def test_strip_accents_only(self):
        assert strip_accents("naïve") == "naive"


class TestStopwords:
    @pytest.mark.parametrize("word", ["the", "and", "of", "is", "was"])
    def test_common_stopwords(self, word):
        assert is_stopword(word)

    @pytest.mark.parametrize("word", ["covid", "outbreak", "5g", "microchip"])
    def test_content_terms_survive(self, word):
        assert not is_stopword(word)

    def test_frozen(self):
        assert isinstance(ENGLISH_STOPWORDS, frozenset)


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert list(ngrams(["a", "b"], 1)) == [("a",), ("b",)]

    def test_n_longer_than_sequence(self):
        assert list(ngrams(["a"], 2)) == []

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            list(ngrams(["a"], 0))
