"""Tests for sentence segmentation — part of the explanation semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.sentences import remove_sentences, split_sentences


class TestSplitSentences:
    def test_simple_split(self):
        texts = [s.text for s in split_sentences("One fact. Another fact.")]
        assert texts == ["One fact.", "Another fact."]

    def test_abbreviations_do_not_split(self):
        texts = [s.text for s in split_sentences("Dr. Wu spoke. He left.")]
        assert texts == ["Dr. Wu spoke.", "He left."]

    def test_initials_do_not_split(self):
        texts = [s.text for s in split_sentences("John F. Kennedy spoke. Done.")]
        assert texts == ["John F. Kennedy spoke.", "Done."]

    def test_question_and_exclamation(self):
        texts = [s.text for s in split_sentences("Really? Yes! Fine.")]
        assert texts == ["Really?", "Yes!", "Fine."]

    def test_decimal_numbers_not_split(self):
        texts = [s.text for s in split_sentences("It rose 3.5 percent. Wow.")]
        assert texts == ["It rose 3.5 percent.", "Wow."]

    def test_blank_line_is_boundary(self):
        texts = [s.text for s in split_sentences("headline without period\n\nBody text.")]
        assert texts == ["headline without period", "Body text."]

    def test_no_terminal_punctuation(self):
        texts = [s.text for s in split_sentences("no punctuation at all")]
        assert texts == ["no punctuation at all"]

    def test_empty_text(self):
        assert split_sentences("") == []

    def test_whitespace_only(self):
        assert split_sentences("   \n  ") == []

    def test_indices_sequential(self):
        sentences = split_sentences("First one. Second one. Third one.")
        assert [s.index for s in sentences] == [0, 1, 2]

    def test_single_capitals_treated_as_initials(self):
        # "A. B. C." reads as initials, not three sentences — by design.
        assert len(split_sentences("A. B. C.")) == 1

    def test_spans_point_into_source(self):
        text = "First thing happened. Second thing followed!  Third? "
        for sentence in split_sentences(text):
            assert text[sentence.start : sentence.end] == sentence.text

    @given(st.text(alphabet=st.sampled_from("ab .!?\n"), max_size=120))
    def test_spans_valid_and_ordered_on_arbitrary_text(self, text):
        sentences = split_sentences(text)
        previous_end = 0
        for sentence in sentences:
            assert text[sentence.start : sentence.end] == sentence.text
            assert sentence.start >= previous_end
            previous_end = sentence.end


class TestRemoveSentences:
    def test_removes_by_index(self):
        text = "Keep me. Drop me. Keep me too."
        assert remove_sentences(text, {1}) == "Keep me. Keep me too."

    def test_remove_nothing(self):
        text = "One. Two."
        assert remove_sentences(text, set()) == "One. Two."

    def test_remove_everything(self):
        assert remove_sentences("One. Two.", {0, 1}) == ""

    def test_removal_eliminates_terms(self):
        text = "The covid outbreak grew. Markets fell."
        remaining = remove_sentences(text, {0})
        assert "covid" not in remaining
        assert "Markets" in remaining
