"""Tests for the term↔id vocabulary."""

import pytest

from repro.errors import TermNotFoundError
from repro.text.vocabulary import Vocabulary


class TestVocabulary:
    def test_first_seen_order(self):
        vocabulary = Vocabulary(["b", "a", "b", "c"])
        assert vocabulary.id_of("b") == 0
        assert vocabulary.id_of("a") == 1
        assert vocabulary.id_of("c") == 2

    def test_roundtrip(self):
        vocabulary = Vocabulary(["x", "y"])
        for term in ["x", "y"]:
            assert vocabulary.term_of(vocabulary.id_of(term)) == term

    def test_unknown_term_raises(self):
        with pytest.raises(TermNotFoundError):
            Vocabulary().id_of("missing")

    def test_unknown_id_raises(self):
        with pytest.raises(TermNotFoundError):
            Vocabulary(["a"]).term_of(5)

    def test_get_with_default(self):
        assert Vocabulary().get("nope") is None
        assert Vocabulary().get("nope", -1) == -1

    def test_contains_and_len(self):
        vocabulary = Vocabulary(["a", "b"])
        assert "a" in vocabulary
        assert "z" not in vocabulary
        assert len(vocabulary) == 2

    def test_frequency_counts_adds(self):
        vocabulary = Vocabulary(["a", "a", "b"])
        assert vocabulary.frequency("a") == 2
        assert vocabulary.frequency("b") == 1
        assert vocabulary.frequency("zzz") == 0

    def test_encode_skips_unknown(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.encode(["a", "zzz", "b"]) == [0, 1]

    def test_encode_strict_raises(self):
        vocabulary = Vocabulary(["a"])
        with pytest.raises(TermNotFoundError):
            vocabulary.encode(["zzz"], skip_unknown=False)

    def test_decode(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.decode([1, 0]) == ["b", "a"]


class TestFromDocuments:
    def test_min_count_filters(self):
        vocabulary = Vocabulary.from_documents(
            [["a", "a", "b"], ["a", "c"]], min_count=2
        )
        assert "a" in vocabulary
        assert "b" not in vocabulary

    def test_max_size_keeps_most_frequent(self):
        vocabulary = Vocabulary.from_documents(
            [["a"] * 3 + ["b"] * 2 + ["c"]], max_size=2
        )
        assert set(vocabulary) == {"a", "b"}

    def test_deterministic_tie_break(self):
        first = list(Vocabulary.from_documents([["b", "a"]], max_size=2))
        second = list(Vocabulary.from_documents([["b", "a"]], max_size=2))
        assert first == second == ["a", "b"]  # alphabetical on tied counts

    def test_frequencies_recorded(self):
        vocabulary = Vocabulary.from_documents([["a", "a"], ["a", "b"]])
        assert vocabulary.frequency("a") == 3
