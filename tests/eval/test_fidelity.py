"""Cross-layer invariant: every explanation's flip is engine-checked.

For any explanation produced by any strategy, re-applying its
counterfactual edit through the engine (naive re-ranking — no sessions,
no search kernel) must actually flip the ranking. Parametrized over all
six explainer strategies; a failure here localises session drift or
kernel bookkeeping bugs that per-layer suites cannot see.
"""

import pytest

from repro.core.engine import CredenceEngine
from repro.core.explain import ExplainRequest
from repro.core.types import SentenceRemovalExplanation
from repro.errors import ConfigurationError
from repro.eval.fidelity import FidelityCheck, fidelity_rate, recheck_explanation
from repro.eval.harness import rankable_instances
from repro.index.inverted import InvertedIndex

K = 5
QUERIES = ["covid outbreak", "vaccine trial", "flu season"]

#: Strategies runnable on the shared bm25 engine; features/ltr needs the
#: LTR engine and is exercised separately below.
GENERAL_STRATEGIES = (
    "document/sentence-removal",
    "document/greedy",
    "query/augmentation",
    "instance/doc2vec",
    "instance/cosine",
)


@pytest.fixture(scope="module")
def ltr_engine(covid_documents):
    from repro.ltr import (
        LinearLtrModel,
        LtrRanker,
        assign_priors,
        synthetic_letor_dataset,
    )

    docs = assign_priors(covid_documents, seed=5)
    index = InvertedIndex.from_documents(docs)
    examples = synthetic_letor_dataset(docs, QUERIES, seed=5)
    return CredenceEngine.from_index(
        index, ranker=LtrRanker(index, LinearLtrModel.fit(examples))
    )


def _explanations(engine, strategy):
    instances = rankable_instances(engine, QUERIES, k=K, per_query=2)
    produced = []
    for instance in instances:
        result = engine.explain(
            ExplainRequest(
                instance.query,
                instance.doc_id,
                strategy=strategy,
                k=K,
                threshold=3,
                samples=25,
            )
        ).result
        produced.extend(result.explanations)
    return produced


class TestEngineCheckedFidelity:
    @pytest.mark.parametrize("strategy", GENERAL_STRATEGIES)
    def test_reported_flips_are_engine_confirmed(self, bm25_engine, strategy):
        produced = _explanations(bm25_engine, strategy)
        assert produced, f"{strategy} produced no explanations to check"
        for explanation in produced:
            check = recheck_explanation(bm25_engine, explanation, k=K)
            assert check.valid, f"{strategy}: {check.detail}"

    @pytest.mark.parametrize(
        "strategy", (*GENERAL_STRATEGIES, "features/ltr")
    )
    def test_all_six_strategies_on_ltr_engine(self, ltr_engine, strategy):
        produced = _explanations(ltr_engine, strategy)
        assert produced, f"{strategy} produced no explanations to check"
        for explanation in produced:
            check = recheck_explanation(ltr_engine, explanation, k=K)
            assert check.valid, f"{strategy}: {check.detail}"

    def test_fidelity_rate_is_one_for_real_explanations(self, bm25_engine):
        produced = _explanations(bm25_engine, "document/sentence-removal")
        assert fidelity_rate(bm25_engine, produced, k=K) == 1.0


class TestRecheckRejectsForgeries:
    def test_unperturbed_body_fails_recheck(self, bm25_engine):
        # A "counterfactual" that edits nothing cannot flip the ranking:
        # the recheck must not take the record's word for it.
        (real,) = _explanations(bm25_engine, "document/sentence-removal")[:1]
        original = bm25_engine.document(real.doc_id).body
        forged = SentenceRemovalExplanation(
            doc_id=real.doc_id,
            query=real.query,
            k=real.k,
            removed_sentences=real.removed_sentences,
            importance=real.importance,
            original_rank=real.original_rank,
            new_rank=real.new_rank,
            perturbed_body=original,
        )
        check = recheck_explanation(bm25_engine, forged, k=K)
        assert not check.valid
        assert not bool(check)

    def test_unknown_record_type_raises(self, bm25_engine):
        with pytest.raises(ConfigurationError):
            recheck_explanation(bm25_engine, object(), k=K)

    def test_empty_fidelity_rate_is_zero(self, bm25_engine):
        assert fidelity_rate(bm25_engine, [], k=K) == 0.0

    def test_check_is_truthy_dataclass(self):
        assert bool(FidelityCheck("document", True, "ok"))
        assert not bool(FidelityCheck("document", False, "nope"))
