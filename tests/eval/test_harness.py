"""Tests for the batch evaluation harness."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.harness import (
    STUDY_HEADERS,
    StudyInstance,
    rankable_instances,
    run_document_cf_study,
    run_query_cf_study,
    study_table,
)

QUERIES = ["covid outbreak", "flu season", "vaccine trial"]


class TestRankableInstances:
    def test_builds_per_query_instances(self, bm25_engine):
        instances = rankable_instances(bm25_engine, QUERIES, k=5, per_query=2)
        assert len(instances) == len(QUERIES) * 2
        assert all(isinstance(i, StudyInstance) for i in instances)

    def test_instances_are_ranked_documents(self, bm25_engine):
        instances = rankable_instances(bm25_engine, ["covid outbreak"], k=5)
        ranking = bm25_engine.rank("covid outbreak", k=5)
        for instance in instances:
            assert instance.doc_id in ranking


class TestStudies:
    @pytest.fixture(scope="class")
    def instances(self, bm25_engine):
        return rankable_instances(bm25_engine, QUERIES, k=5, per_query=2)

    def test_document_study_aggregates(self, bm25_engine, instances):
        result = run_document_cf_study(bm25_engine, instances, k=5)
        stats = result.stats
        assert stats.requests + result.errors == len(instances)
        assert 0.0 <= stats.success_rate <= 1.0
        assert result.elapsed_seconds > 0

    def test_query_study_aggregates(self, bm25_engine, instances):
        result = run_query_cf_study(bm25_engine, instances, k=5, threshold=1)
        assert result.stats.requests + result.errors == len(instances)

    def test_empty_instances_rejected(self, bm25_engine):
        with pytest.raises(ConfigurationError):
            run_document_cf_study(bm25_engine, [])

    def test_study_table_renders(self, bm25_engine, instances):
        results = [
            run_document_cf_study(bm25_engine, instances, k=5),
            run_query_cf_study(bm25_engine, instances, k=5, threshold=1),
        ]
        rendered = study_table(results, title="study").render()
        assert "document-cf" in rendered
        assert "query-cf" in rendered
        for header in STUDY_HEADERS[:3]:
            assert header in rendered
