"""Tests for the batch evaluation harness."""

import pytest

from repro.errors import ConfigurationError, RankingError
from repro.eval.harness import (
    STUDY_HEADERS,
    StudyFailure,
    StudyInstance,
    StudyResult,
    rankable_instances,
    run_document_cf_study,
    run_query_cf_study,
    study_table,
)

QUERIES = ["covid outbreak", "flu season", "vaccine trial"]


class TestRankableInstances:
    def test_builds_per_query_instances(self, bm25_engine):
        instances = rankable_instances(bm25_engine, QUERIES, k=5, per_query=2)
        assert len(instances) == len(QUERIES) * 2
        assert all(isinstance(i, StudyInstance) for i in instances)

    def test_instances_are_ranked_documents(self, bm25_engine):
        instances = rankable_instances(bm25_engine, ["covid outbreak"], k=5)
        ranking = bm25_engine.rank("covid outbreak", k=5)
        for instance in instances:
            assert instance.doc_id in ranking


class TestStudies:
    @pytest.fixture(scope="class")
    def instances(self, bm25_engine):
        return rankable_instances(bm25_engine, QUERIES, k=5, per_query=2)

    def test_document_study_aggregates(self, bm25_engine, instances):
        result = run_document_cf_study(bm25_engine, instances, k=5)
        stats = result.stats
        assert stats.requests + result.errors == len(instances)
        assert 0.0 <= stats.success_rate <= 1.0
        assert result.elapsed_seconds > 0

    def test_query_study_aggregates(self, bm25_engine, instances):
        result = run_query_cf_study(bm25_engine, instances, k=5, threshold=1)
        assert result.stats.requests + result.errors == len(instances)

    def test_empty_instances_rejected(self, bm25_engine):
        with pytest.raises(ConfigurationError):
            run_document_cf_study(bm25_engine, [])

    def test_failures_attribute_the_failing_instance(self, bm25_engine):
        # A document outside the top-k raises RankingError; the study
        # must record *which* (query, doc_id) failed, not just a count.
        bad = StudyInstance("covid outbreak", "d4")  # finance doc: not ranked
        good = rankable_instances(bm25_engine, ["covid outbreak"], k=5)[:1]
        result = run_document_cf_study(bm25_engine, good + [bad], k=3)
        assert result.errors == len(result.failures)
        assert result.failures, "expected the out-of-top-k instance to fail"
        failure = result.failures[-1]
        assert failure.query == "covid outbreak"
        assert failure.doc_id == "d4"
        assert "RankingError" in failure.error
        assert failure.to_dict() == {
            "query": failure.query,
            "doc_id": failure.doc_id,
            "error": failure.error,
        }

    def test_query_study_failures_are_attributed_too(self, bm25_engine):
        bad = StudyInstance("covid outbreak", "d4")
        result = run_query_cf_study(bm25_engine, [bad], k=3, threshold=1)
        assert [f.doc_id for f in result.failures] == ["d4"]

    def test_record_failure_formats_error(self):
        result = StudyResult(name="unit")
        result.record_failure(
            StudyInstance("q", "doc-9"), RankingError("not in top-k")
        )
        assert result.errors == 1
        assert result.failures == [
            StudyFailure("q", "doc-9", "RankingError: not in top-k")
        ]

    def test_study_table_renders(self, bm25_engine, instances):
        results = [
            run_document_cf_study(bm25_engine, instances, k=5),
            run_query_cf_study(bm25_engine, instances, k=5, threshold=1),
        ]
        rendered = study_table(results, title="study").render()
        assert "document-cf" in rendered
        assert "query-cf" in rendered
        for header in STUDY_HEADERS[:3]:
            assert header in rendered
