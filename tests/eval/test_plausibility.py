"""Tests for the plausibility (perplexity) metric."""

import math

import pytest

from repro.eval.plausibility import CorpusLanguageModel


@pytest.fixture()
def lm(tiny_index):
    return CorpusLanguageModel(tiny_index)


class TestLanguageModel:
    def test_frequent_terms_more_probable(self, lm):
        assert lm.log_probability("covid") > lm.log_probability("microchip")

    def test_unseen_terms_get_smoothed_mass(self, lm):
        assert lm.log_probability("zzzunknown") > -math.inf

    def test_perplexity_positive(self, lm):
        assert lm.perplexity("the covid outbreak spread") > 1.0

    def test_empty_text_infinite(self, lm):
        assert lm.perplexity("") == float("inf")
        assert lm.perplexity("the of and") == float("inf")  # all stopwords

    def test_in_domain_text_less_perplexing(self, lm):
        in_domain = lm.perplexity("covid outbreak city hospitals")
        out_of_domain = lm.perplexity("zebra quantum accordion xylophone")
        assert in_domain < out_of_domain


class TestPlausibilityRatio:
    def test_sentence_removal_is_plausibility_preserving(self, lm, tiny_docs):
        """The paper's design claim: removing whole sentences keeps the
        text on-distribution (ratio near 1), while injecting junk does not."""
        original = tiny_docs[0].body
        sentence_removed = "Hospitals filled quickly. Officials promised more tests."
        junk_injected = original + " zebra quantum accordion xylophone glockenspiel"
        removal_ratio = lm.plausibility_ratio(original, sentence_removed)
        junk_ratio = lm.plausibility_ratio(original, junk_injected)
        assert removal_ratio < junk_ratio
        assert removal_ratio == pytest.approx(1.0, rel=0.5)

    def test_identical_text_ratio_one(self, lm, tiny_docs):
        body = tiny_docs[0].body
        assert lm.plausibility_ratio(body, body) == pytest.approx(1.0)

    def test_empty_original_infinite(self, lm):
        assert lm.plausibility_ratio("", "some text") == float("inf")

    def test_real_explanation_plausibility(self, bm25_engine):
        """End to end: the Fig. 2 perturbation stays near ratio 1."""
        from repro.datasets.covid import DEMO_QUERY, FAKE_NEWS_DOC_ID

        lm = CorpusLanguageModel(bm25_engine.index)
        explanation = bm25_engine.explain_document(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=10
        )[0]
        original = bm25_engine.document(FAKE_NEWS_DOC_ID).body
        ratio = lm.plausibility_ratio(original, explanation.perturbed_body)
        assert 0.5 < ratio < 2.0
