"""Tests for counterfactual metrics and table rendering."""

import pytest

from repro.core.types import ExplanationSet, QueryAugmentationExplanation
from repro.eval.cf_metrics import (
    explanation_cost,
    minimality_violations,
    summarize_runs,
    validity_rate,
)
from repro.eval.reporting import Table, format_table


def make_run(sizes: list[int], candidates: int = 10) -> ExplanationSet:
    run = ExplanationSet(
        explanations=[
            QueryAugmentationExplanation(
                doc_id="d",
                original_query="q",
                added_terms=tuple(f"t{j}" for j in range(size)),
                score=1.0,
                threshold=1,
                original_rank=3,
                new_rank=1,
            )
            for size in sizes
        ]
    )
    run.candidates_evaluated = candidates
    run.ranker_calls = candidates * 10
    return run


class TestSummarizeRuns:
    def test_aggregates(self):
        stats = summarize_runs([make_run([1, 2]), make_run([3]), make_run([])])
        assert stats.requests == 3
        assert stats.found == 2
        assert stats.mean_size == pytest.approx(2.0)
        assert stats.mean_candidates == 10.0
        assert stats.success_rate == pytest.approx(2 / 3)

    def test_empty(self):
        stats = summarize_runs([])
        assert stats.requests == 0
        assert stats.success_rate == 0.0


class TestValidityRate:
    def test_rate(self):
        assert validity_rate([1, 2, 3, 4], lambda x: x % 2 == 0) == 0.5

    def test_empty(self):
        assert validity_rate([], lambda x: True) == 0.0


class TestMinimalityViolations:
    def test_detects_valid_subset(self):
        # {a, b} has valid subset {a} → violation.
        explanations = [frozenset({"a", "b"})]
        assert minimality_violations(explanations, lambda s: s == frozenset({"a"})) == 1

    def test_minimal_sets_pass(self):
        explanations = [frozenset({"a", "b"})]
        assert minimality_violations(explanations, lambda s: False) == 0

    def test_singletons_always_minimal(self):
        explanations = [frozenset({"a"})]
        assert minimality_violations(explanations, lambda s: True) == 0

    def test_checks_all_subset_sizes(self):
        # Only the 1-element subset {c} is valid inside {a, b, c}.
        explanations = [frozenset({"a", "b", "c"})]
        assert minimality_violations(explanations, lambda s: s == frozenset({"c"})) == 1


class TestExplanationCost:
    def test_fields(self):
        cost = explanation_cost(make_run([1]))
        assert cost["explanations"] == 1.0
        assert cost["candidates_evaluated"] == 10.0
        assert cost["ranker_calls"] == 100.0


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["bm25", 1.2345], ["lm", 10.0]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "1.234" in text  # floats rendered at 3 decimals

    def test_table_builder(self):
        table = Table(["a", "b"], title="demo")
        table.add(1, 2).add(3, 4)
        rendered = table.render()
        assert rendered.startswith("demo")
        assert "3" in rendered

    def test_row_arity_enforced(self):
        with pytest.raises(ValueError):
            Table(["a", "b"]).add(1)

    def test_markdown_render(self):
        markdown = Table(["x"], title="t").add(1).render_markdown()
        assert "| x |" in markdown
        assert "**t**" in markdown
