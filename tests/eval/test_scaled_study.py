"""Tests for the scaled study runner and its quality gates."""

from dataclasses import replace

import pytest

from repro.datasets.stream import (
    ZipfianVocabulary,
    sample_stream_queries,
    stream_corpus,
)
from repro.errors import ConfigurationError
from repro.eval.scaled import (
    QualityFloors,
    StudySpec,
    build_study_engines,
    run_scaled_study,
)
from repro.index.sharding import ShardedIndex


@pytest.fixture(scope="module")
def vocabulary():
    return ZipfianVocabulary.build(300)


@pytest.fixture(scope="module")
def study_index(vocabulary):
    docs = stream_corpus(180, seed=11, vocabulary=vocabulary, with_priors=True)
    return ShardedIndex.from_documents(list(docs), 2)


@pytest.fixture(scope="module")
def study_queries(vocabulary):
    return tuple(sample_stream_queries(3, vocabulary=vocabulary, seed=11))


@pytest.fixture(scope="module")
def small_spec(study_queries):
    return StudySpec(
        queries=study_queries,
        rankers=("bm25",),
        strategies=("document/sentence-removal", "query/augmentation"),
        searches=("exhaustive", "greedy"),
        per_query=1,
        k=4,
        threshold=3,
        budget=200,
        seed=11,
        doc2vec_dimension=16,
        doc2vec_epochs=5,
    )


@pytest.fixture(scope="module")
def small_report(study_index, small_spec):
    return run_scaled_study(study_index, small_spec)


class TestSpecValidation:
    def test_unknown_ranker_rejected(self, study_queries):
        with pytest.raises(Exception):
            StudySpec(queries=study_queries, rankers=("pagerank",))

    def test_unknown_search_rejected(self, study_queries):
        with pytest.raises(Exception):
            StudySpec(queries=study_queries, searches=("simulated-annealing",))

    def test_unknown_executor_rejected(self, study_queries):
        with pytest.raises(Exception):
            StudySpec(queries=study_queries, executor="gpu")

    def test_empty_queries_rejected(self):
        with pytest.raises(Exception):
            StudySpec(queries=())

    def test_strategies_default_to_full_registry(self, study_queries):
        spec = StudySpec(queries=study_queries)
        assert "features/ltr" in spec.resolved_strategies()
        assert len(spec.resolved_strategies()) == 6


class TestGrid:
    def test_grid_covers_every_cell(self, small_report, small_spec):
        expected = (
            len(small_spec.rankers)
            * len(small_spec.strategies)
            * len(small_spec.searches)
        )
        assert len(small_report.cells) == expected
        keys = {(c.ranker, c.strategy, c.search) for c in small_report.cells}
        assert len(keys) == expected

    def test_cells_aggregate_quality_metrics(self, small_report):
        cell = small_report.cell("bm25", "document/sentence-removal", "exhaustive")
        assert cell.status == "ok"
        assert cell.tier == "sequential"
        assert cell.requests == 3
        assert 0.0 <= cell.success_rate <= 1.0
        assert 0.0 <= cell.fidelity <= 1.0
        assert cell.mean_candidates >= 0
        assert cell.plausibility is None or cell.plausibility > 0

    def test_unavailable_strategy_recorded_not_raised(
        self, study_index, study_queries
    ):
        spec = StudySpec(
            queries=study_queries,
            rankers=("bm25",),
            strategies=("features/ltr",),
            searches=("exhaustive",),
            per_query=1,
            k=4,
            seed=11,
        )
        report = run_scaled_study(study_index, spec)
        (cell,) = report.cells
        assert cell.status == "unavailable"
        assert "LtrRanker" in cell.detail
        assert cell.requests == 0

    def test_missing_engine_raises(self, study_index, small_spec):
        with pytest.raises(ConfigurationError):
            run_scaled_study(study_index, small_spec, engines={})

    def test_report_renders(self, small_report):
        rendered = small_report.render_table()
        assert "document/sentence-removal" in rendered
        assert "exhaustive" in rendered
        markdown = small_report.render_markdown()
        assert markdown.count("|") > 10

    def test_report_dict_shape(self, small_report):
        payload = small_report.to_dict()
        assert payload["spec"]["rankers"] == ["bm25"]
        assert all("elapsed_seconds" in cell for cell in payload["cells"])
        comparable = small_report.comparable_dict()
        assert all("elapsed_seconds" not in cell for cell in comparable["cells"])
        assert all("tier" not in cell for cell in comparable["cells"])


class TestQualityFloors:
    def test_passing_floors_report_no_violations(self, small_report):
        floors = QualityFloors(min_success_rate=0.0, max_mean_candidates=1e9)
        assert small_report.violations(floors) == []

    def test_unreachable_floor_is_reported_per_cell(self, small_report):
        floors = QualityFloors(min_success_rate=1.1)
        violations = small_report.violations(floors)
        assert violations
        assert all("success rate" in message for message in violations)

    def test_floor_filters_by_ranker_and_strategy(self, small_report):
        floors = QualityFloors(min_fidelity=1.1)
        only_query = small_report.violations(
            floors, strategies=("query/augmentation",)
        )
        assert only_query
        assert all("query/augmentation" in message for message in only_query)
        assert small_report.violations(floors, rankers=("neural",)) == []

    def test_floors_serialize(self):
        payload = QualityFloors(min_success_rate=0.9).to_dict()
        assert payload["min_success_rate"] == 0.9
        assert payload["min_fidelity"] is None


class TestProcessTierEquivalence:
    def test_sequential_and_process_reports_are_byte_identical(
        self, study_index, small_spec, small_report
    ):
        process_spec = replace(small_spec, executor="process")
        process_report = run_scaled_study(study_index, process_spec)
        assert {cell.tier for cell in process_report.cells} == {"process"}
        assert (
            process_report.canonical_json() == small_report.canonical_json()
        )

    def test_explicit_ranker_engine_falls_back_to_sequential(
        self, study_index, study_queries
    ):
        spec = StudySpec(
            queries=study_queries,
            rankers=("ltr",),
            strategies=("features/ltr",),
            searches=("greedy",),
            per_query=1,
            k=4,
            executor="process",
            seed=11,
        )
        engines = build_study_engines(study_index, spec)
        assert not engines["ltr"].ranker_from_config
        report = run_scaled_study(study_index, spec, engines=engines)
        (cell,) = report.cells
        assert cell.status == "ok"
        assert cell.tier == "sequential"  # refused by the process tier
