"""Tests for ranking metrics against hand-computed values."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.ranking_metrics import (
    average_precision,
    kendall_tau,
    mrr,
    ndcg_at_k,
    precision_at_k,
    rank_biased_overlap,
)

RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionAtK:
    def test_basic(self):
        assert precision_at_k(RANKED, {"a", "c"}, k=2) == 0.5
        assert precision_at_k(RANKED, {"a", "c"}, k=3) == pytest.approx(2 / 3)

    def test_empty_ranked(self):
        assert precision_at_k([], {"a"}, k=5) == 0.0


class TestMrr:
    def test_first_hit_position(self):
        assert mrr(RANKED, {"c"}) == pytest.approx(1 / 3)
        assert mrr(RANKED, {"a", "e"}) == 1.0

    def test_no_hit(self):
        assert mrr(RANKED, {"zz"}) == 0.0


class TestAveragePrecision:
    def test_hand_computed(self):
        # relevant at positions 1 and 3 → (1/1 + 2/3) / 2
        assert average_precision(RANKED, {"a", "c"}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_no_relevant(self):
        assert average_precision(RANKED, set()) == 0.0


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], gains, k=3) == pytest.approx(1.0)

    def test_worst_ordering_below_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, k=3) < 1.0

    def test_empty_gains(self):
        assert ndcg_at_k(RANKED, {}, k=3) == 0.0


class TestKendallTau:
    def test_identical_orderings(self):
        assert kendall_tau(RANKED, RANKED) == 1.0

    def test_reversed_orderings(self):
        assert kendall_tau(RANKED, RANKED[::-1]) == -1.0

    def test_single_swap(self):
        swapped = ["b", "a", "c", "d", "e"]
        assert kendall_tau(RANKED, swapped) == pytest.approx(1 - 2 * 1 / 10)

    def test_different_membership_rejected(self):
        with pytest.raises(ConfigurationError):
            kendall_tau(["a"], ["b"])


class TestRbo:
    def test_identical_lists_score_one(self):
        assert rank_biased_overlap(RANKED, RANKED) == pytest.approx(1.0)

    def test_disjoint_lists(self):
        assert rank_biased_overlap(["a", "b"], ["x", "y"]) == 0.0

    def test_top_weightedness(self):
        # Agreement at the top matters more than at the bottom.
        top_agree = rank_biased_overlap(["a", "b", "x"], ["a", "b", "y"])
        bottom_agree = rank_biased_overlap(["x", "a", "b"], ["y", "a", "b"])
        assert top_agree > bottom_agree

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            rank_biased_overlap(["a"], ["a"], p=1.0)

    def test_empty_lists(self):
        assert rank_biased_overlap([], []) == 1.0
