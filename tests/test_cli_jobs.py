"""CLI tests for the ``jobs`` subcommands and ``serve --workers``
(in-process ``main()`` against a live threading server)."""

from __future__ import annotations

import json

import pytest

from repro.api.app import serve
from repro.cli import build_parser, main
from repro.core.engine import CredenceEngine, EngineConfig
from repro.index.document import Document

QUERY = "covid outbreak"
DOC = "d5"

DOCS = [
    Document("d5", "The covid outbreak spread quickly. Experts dismissed "
                   "the covid outbreak rumours. Officials promised tests."),
    Document("d6", "City officials denied rumours about the outbreak "
                   "response. A press briefing is scheduled."),
    Document("d7", "Stock markets rallied as tech shares gained value."),
    Document("d8", "The flu season arrived early with many sick patients."),
]


@pytest.fixture(scope="module")
def live_server():
    engine = CredenceEngine(DOCS, EngineConfig(ranker="bm25", seed=5))
    server = serve(engine, port=0, workers=2)
    yield server
    server.stop()
    engine.service().shutdown()


class TestJobsCli:
    def test_submit_wait_and_status(self, capsys, live_server):
        code = main(
            [
                "jobs", "submit",
                "--url", live_server.url,
                "--query", QUERY,
                "--doc", DOC,
                "--k", "5",
                "--wait",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["status"] == "done"
        assert payload["items"] == ["done"]

        code = main(
            ["jobs", "status", payload["job_id"], "--url", live_server.url]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert payload["job_id"] in out and "done" in out

    def test_submit_batch_renders_items(self, capsys, live_server):
        code = main(
            [
                "jobs", "submit",
                "--url", live_server.url,
                "--query", QUERY,
                "--doc", DOC,
                "--doc", "missing-doc",
                "--k", "5",
                "--wait",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # per-item errors don't fail the job
        assert "item 0: done" in out
        assert "item 1: error" in out

    def test_cancel(self, capsys, live_server):
        main(
            [
                "jobs", "submit",
                "--url", live_server.url,
                "--query", QUERY,
                "--doc", DOC,
                "--k", "5",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        code = main(
            ["jobs", "cancel", payload["job_id"], "--url", live_server.url]
        )
        assert code == 0
        assert payload["job_id"] in capsys.readouterr().out

    def test_unknown_job_exits_2(self, capsys, live_server):
        code = main(
            ["jobs", "status", "job-does-not-exist", "--url", live_server.url]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown job id" in captured.err

    def test_unreachable_service_exits_2(self, capsys):
        code = main(
            ["jobs", "status", "job-1", "--url", "http://127.0.0.1:1",
             "--timeout", "1"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot reach service" in captured.err


class TestServeParser:
    def test_serve_accepts_workers(self):
        args = build_parser().parse_args(["serve", "--workers", "8"])
        assert args.workers == 8

    def test_serve_workers_default_is_none(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers is None
