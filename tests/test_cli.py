"""Tests for the command-line interface (in-process, no subprocesses)."""

import json

import pytest

from repro.cli import main
from repro.datasets.covid import DEMO_QUERY, FAKE_NEWS_DOC_ID
from repro.datasets.loaders import save_jsonl


class TestRank:
    def test_rank_prints_table(self, capsys):
        code = main(["rank", "--query", DEMO_QUERY, "--k", "5"])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.strip().splitlines()) == 5

    def test_rank_json_output(self, capsys):
        code = main(["rank", "--query", DEMO_QUERY, "--k", "3", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(payload["ranking"]) == 3

    def test_rank_custom_corpus(self, capsys, tmp_path, tiny_docs):
        corpus = tmp_path / "docs.jsonl"
        save_jsonl(tiny_docs, corpus)
        code = main(
            ["rank", "--corpus", str(corpus), "--query", "covid", "--k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 2
        assert "d5" in out  # the doc mentioning covid twice ranks first


class TestExplainCommands:
    def test_explain_document(self, capsys):
        code = main(
            [
                "explain-document",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "removing sentence(s)" in out

    def test_explain_query(self, capsys):
        code = main(
            [
                "explain-query",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--n", "2",
                "--threshold", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert DEMO_QUERY in out

    def test_explain_instance_cosine(self, capsys):
        code = main(
            [
                "explain-instance",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--method", "cosine_sampled",
                "--samples", "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "%" in out


class TestUnifiedExplain:
    def test_explain_document_strategy(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--strategy", "document/sentence-removal",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "removing sentence(s)" in out

    def test_explain_query_strategy(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--strategy", "query/augmentation",
                "--n", "2",
                "--threshold", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert DEMO_QUERY in out

    def test_explain_instance_alias_strategy(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--strategy", "cosine_sampled",
                "--samples", "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "%" in out

    def test_explain_json_envelope(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--strategy", "instance/cosine",
                "--samples", "30",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["strategy"] == "instance/cosine"
        assert payload["elapsed_seconds"] >= 0.0
        assert payload["explanations"]

    def test_unknown_strategy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "explain",
                    "--query", DEMO_QUERY,
                    "--doc", FAKE_NEWS_DOC_ID,
                    "--strategy", "magic/crystal",
                ]
            )

    def test_unavailable_strategy_clean_error(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--strategy", "features/ltr",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "unavailable" in captured.err

    def test_unranked_document_clean_error(self, capsys):
        code = main(
            ["explain", "--query", DEMO_QUERY, "--doc", "markets-0002"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "not in the top-10" in captured.err

    def test_strategies_listing(self, capsys):
        code = main(["strategies"])
        out = capsys.readouterr().out
        assert code == 0
        assert "document/sentence-removal" in out
        assert "query/augmentation" in out
        assert "(unavailable)" in out  # features/ltr under a lexical ranker

    def test_strategies_json(self, capsys):
        code = main(["strategies", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        names = {record["name"] for record in payload["strategies"]}
        assert "instance/doc2vec" in names


class TestBuilder:
    def test_builder_valid_edit(self, capsys):
        code = main(
            [
                "builder",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--replace", "covid=flu",
                "--remove", "outbreak",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "VALID" in out

    def test_builder_requires_edits(self):
        with pytest.raises(SystemExit):
            main(["builder", "--query", DEMO_QUERY, "--doc", FAKE_NEWS_DOC_ID])

    def test_builder_bad_replace_spec(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "builder",
                    "--query", DEMO_QUERY,
                    "--doc", FAKE_NEWS_DOC_ID,
                    "--replace", "justaterm",
                ]
            )


class TestIndexCommand:
    def test_index_demo_corpus_plain(self, capsys):
        code = main(["index"])
        out = capsys.readouterr().out
        assert code == 0
        assert "indexed 62 documents" in out
        assert "shards" not in out

    def test_index_sharded_with_save(self, capsys, tmp_path, tiny_docs):
        corpus = tmp_path / "docs.jsonl"
        save_jsonl(tiny_docs, corpus)
        out_path = tmp_path / "built.json"
        code = main(
            [
                "index",
                "--corpus", str(corpus),
                "--shards", "2",
                "--workers", "2",
                "--save", str(out_path),
                "--format", "v2",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["shards"] == 2
        assert payload["router"] == "hash"
        assert payload["format"] == "v2"
        assert sum(payload["shard_documents"]) == payload["documents"]
        from repro.index.sharding import ShardedIndex
        from repro.index.storage import load_index

        loaded = load_index(out_path)
        assert isinstance(loaded, ShardedIndex)
        assert len(loaded) == len(tiny_docs)

    def test_index_round_robin_router(self, capsys, tmp_path, tiny_docs):
        corpus = tmp_path / "docs.jsonl"
        save_jsonl(tiny_docs, corpus)
        code = main(
            [
                "index",
                "--corpus", str(corpus),
                "--shards", "3",
                "--router", "round-robin",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["router"] == "round-robin"
        assert max(payload["shard_documents"]) - min(payload["shard_documents"]) <= 1

    def test_index_rejects_bad_shards(self):
        with pytest.raises(SystemExit):
            main(["index", "--shards", "0"])


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestSearchOptions:
    """`explain --search ...` threads the kernel options through."""

    def test_beam_search_flags(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--search", "beam",
                "--beam-width", "4",
                "--budget", "5000",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["search_strategy"] == "beam"
        assert payload["explanations"]

    def test_anytime_with_deadline(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--search", "anytime",
                "--deadline-ms", "500",
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["search_strategy"] == "anytime"

    def test_unknown_search_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "explain",
                    "--query", DEMO_QUERY,
                    "--doc", FAKE_NEWS_DOC_ID,
                    "--search", "simulated-annealing",
                ]
            )
        assert excinfo.value.code == 2

    def test_invalid_budget_clean_exit_2(self, capsys):
        code = main(
            [
                "explain",
                "--query", DEMO_QUERY,
                "--doc", FAKE_NEWS_DOC_ID,
                "--budget", "0",
            ]
        )
        assert code == 2
        assert "budget" in capsys.readouterr().err
