"""Tests for feature-space counterfactuals (the future-work extension)."""

import itertools

import pytest

from repro.datasets.synthetic import synthetic_corpus
from repro.errors import ConfigurationError, RankingError
from repro.index.inverted import InvertedIndex
from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
from repro.ltr.feature_cf import FeatureChange, FeatureCounterfactualExplainer
from repro.ltr.models import LinearLtrModel
from repro.ltr.ranker import LtrRanker

QUERY = "virus hospital patients"
K = 10


@pytest.fixture(scope="module")
def ranker():
    corpus = assign_priors(synthetic_corpus(size=100, seed=3), seed=7)
    examples = synthetic_letor_dataset(
        corpus,
        [QUERY, "markets stocks investors", "storm rainfall forecast",
         "software platform users", "match season team"],
        seed=11,
    )
    model = LinearLtrModel.fit(examples)
    return LtrRanker(InvertedIndex.from_documents(corpus), model)


@pytest.fixture(scope="module")
def explainer(ranker):
    return FeatureCounterfactualExplainer(ranker)


@pytest.fixture(scope="module")
def target(ranker):
    return ranker.rank(QUERY, K).doc_ids[-1]  # the rank-k document


class TestValidity:
    def test_explanation_demotes_beyond_k(self, explainer, target):
        result = explainer.explain(QUERY, target, n=1, k=K)
        assert len(result) == 1
        explanation = result[0]
        assert explanation.new_rank > K
        assert explainer.is_valid(QUERY, target, explanation.changes, k=K)

    def test_changes_touch_only_mutable_features(self, explainer, target):
        explanation = explainer.explain(QUERY, target, n=1, k=K)[0]
        for change in explanation.changes:
            assert change.feature in explainer.mutable_features
            assert change.new in explainer.grid

    def test_each_feature_changed_at_most_once(self, explainer, target):
        result = explainer.explain(QUERY, target, n=3, k=K)
        for explanation in result:
            touched = [change.feature for change in explanation.changes]
            assert len(touched) == len(set(touched))

    def test_to_dict_serialisable(self, explainer, target):
        import json

        payload = explainer.explain(QUERY, target, n=1, k=K)[0].to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestMinimality:
    def test_first_explanation_is_minimal(self, explainer, target):
        explanation = explainer.explain(QUERY, target, n=1, k=K)[0]
        changes = explanation.changes
        for size in range(1, len(changes)):
            for subset in itertools.combinations(changes, size):
                assert not explainer.is_valid(QUERY, target, subset, k=K), (
                    f"strict subset {subset} is valid: not minimal"
                )


class TestSearchControls:
    def test_budget(self, ranker, target):
        tight = FeatureCounterfactualExplainer(ranker, max_evaluations=1)
        result = tight.explain(QUERY, target, n=10, k=K)
        assert result.budget_exhausted or len(result) >= 1

    def test_max_changes_bounds_size(self, ranker, target):
        capped = FeatureCounterfactualExplainer(ranker, max_changes=1)
        result = capped.explain(QUERY, target, n=2, k=K)
        assert all(e.size == 1 for e in result)

    def test_custom_grid(self, ranker, target):
        explainer = FeatureCounterfactualExplainer(ranker, grid=(0.0, 1.0))
        result = explainer.explain(QUERY, target, n=1, k=K)
        for explanation in result:
            assert all(change.new in (0.0, 1.0) for change in explanation.changes)

    def test_invalid_configuration(self, ranker):
        with pytest.raises(ConfigurationError):
            FeatureCounterfactualExplainer(ranker, mutable_features=())
        with pytest.raises(ConfigurationError):
            FeatureCounterfactualExplainer(ranker, grid=(0.5,))


class TestErrorCases:
    def test_unranked_document_rejected(self, explainer, ranker):
        non_relevant = [
            doc_id
            for doc_id in ranker.index.doc_ids
            if doc_id not in set(ranker.rank(QUERY, K + 1).doc_ids)
        ]
        with pytest.raises(RankingError):
            explainer.explain(QUERY, non_relevant[0], n=1, k=K)


class TestFeatureChange:
    def test_describe(self):
        change = FeatureChange("popularity", 0.9, 0.25)
        assert "popularity" in change.describe()
        assert "0.9" in change.describe()
