"""Tests for LETOR features, priors, and the synthetic dataset."""

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_corpus
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ltr.dataset import (
    assign_priors,
    load_letor,
    save_letor,
    synthetic_letor_dataset,
)
from repro.ltr.features import (
    LETOR_FEATURE_NAMES,
    MUTABLE_FEATURES,
    LetorFeatureExtractor,
)


@pytest.fixture(scope="module")
def corpus():
    return assign_priors(synthetic_corpus(size=40, seed=3), seed=7)


@pytest.fixture(scope="module")
def extractor(corpus):
    return LetorFeatureExtractor(InvertedIndex.from_documents(corpus))


class TestLetorFeatures:
    def test_dimension_matches_names(self, extractor):
        assert extractor.dimension == len(LETOR_FEATURE_NAMES)

    def test_extract_is_finite(self, extractor, corpus):
        vector = extractor.extract("virus hospital", corpus[0])
        assert np.isfinite(vector.as_array()).all()

    def test_priors_read_from_metadata(self, extractor, corpus):
        document = corpus[0]
        named = extractor.extract("virus", document).as_dict()
        assert named["popularity"] == document.metadata["popularity"]
        assert named["freshness"] == document.metadata["freshness"]
        assert named["authority"] == document.metadata["authority"]

    def test_missing_priors_default_to_half(self, extractor):
        bare = Document("bare", "virus hospital text")
        named = extractor.extract("virus", bare).as_dict()
        assert named["popularity"] == 0.5

    def test_match_features_respond_to_overlap(self, extractor):
        strong = extractor.extract_text("virus hospital", "virus hospital virus")
        weak = extractor.extract_text("virus hospital", "nothing relevant at all")
        assert strong.as_dict()["sum_tf"] > weak.as_dict()["sum_tf"]
        assert strong.as_dict()["covered_term_ratio"] == 1.0
        assert weak.as_dict()["covered_term_ratio"] == 0.0

    def test_replace_returns_new_vector(self, extractor, corpus):
        vector = extractor.extract("virus", corpus[0])
        changed = vector.replace({"popularity": 0.9})
        assert changed.as_dict()["popularity"] == 0.9
        assert vector.as_dict()["popularity"] != 0.9 or True  # original intact
        with pytest.raises(KeyError):
            vector.replace({"not_a_feature": 1.0})

    def test_mutable_features_are_the_priors(self):
        assert set(MUTABLE_FEATURES) == {"popularity", "freshness", "authority"}


class TestAssignPriors:
    def test_deterministic(self):
        docs = synthetic_corpus(size=5, seed=1)
        a = assign_priors(docs, seed=2)
        b = assign_priors(docs, seed=2)
        assert [d.metadata["popularity"] for d in a] == [
            d.metadata["popularity"] for d in b
        ]

    def test_in_unit_interval(self, corpus):
        for document in corpus:
            for prior in MUTABLE_FEATURES:
                assert 0.0 <= document.metadata[prior] <= 1.0

    def test_existing_priors_preserved(self):
        doc = Document("d", "text", metadata={"popularity": 0.123})
        enriched = assign_priors([doc], seed=1)[0]
        assert enriched.metadata["popularity"] == 0.123


class TestSyntheticLetorDataset:
    def test_examples_per_query_grouped(self, corpus):
        examples = synthetic_letor_dataset(corpus, ["virus hospital"], seed=1)
        assert all(example.query_id == "q000" for example in examples)
        assert len(examples) > 10

    def test_graded_labels(self, corpus):
        examples = synthetic_letor_dataset(
            corpus, ["virus hospital patients", "markets stocks"], seed=1
        )
        assert {example.label for example in examples} <= {0.0, 1.0, 2.0}

    def test_deterministic(self, corpus):
        a = synthetic_letor_dataset(corpus, ["virus"], seed=4)
        b = synthetic_letor_dataset(corpus, ["virus"], seed=4)
        assert [e.doc_id for e in a] == [e.doc_id for e in b]
        assert all(np.allclose(x.features, y.features) for x, y in zip(a, b))


class TestLetorIo:
    def test_roundtrip(self, corpus, tmp_path):
        examples = synthetic_letor_dataset(corpus, ["virus hospital"], seed=1)
        path = tmp_path / "train.letor"
        count = save_letor(examples, path)
        assert count == len(examples)
        loaded = load_letor(path)
        assert len(loaded) == len(examples)
        assert loaded[0].query_id == examples[0].query_id
        assert loaded[0].doc_id == examples[0].doc_id
        assert np.allclose(loaded[0].features, examples[0].features, atol=1e-5)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.letor"
        path.write_text("2 qid:q0 1:0.5\nbroken line\n")
        with pytest.raises(ValueError, match="bad.letor:2"):
            load_letor(path)
