"""Tests for LTR models and the LtrRanker."""

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_corpus
from repro.errors import ConfigurationError, TrainingError
from repro.eval.ranking_metrics import ndcg_at_k
from repro.index.inverted import InvertedIndex
from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
from repro.ltr.models import LinearLtrModel, RankNetLtrModel
from repro.ltr.ranker import LtrRanker

QUERIES = [
    "virus hospital patients",
    "markets stocks investors",
    "storm rainfall forecast",
    "software platform users",
]


@pytest.fixture(scope="module")
def corpus():
    return assign_priors(synthetic_corpus(size=60, seed=3), seed=7)


@pytest.fixture(scope="module")
def examples(corpus):
    return synthetic_letor_dataset(corpus, QUERIES, seed=11)


@pytest.fixture(scope="module")
def index(corpus):
    return InvertedIndex.from_documents(corpus)


@pytest.fixture(scope="module")
def linear(examples):
    return LinearLtrModel.fit(examples)


@pytest.fixture(scope="module")
def ranknet(examples):
    return RankNetLtrModel.fit(examples, epochs=10, seed=3)


class TestLinearModel:
    def test_requires_examples(self):
        with pytest.raises(ConfigurationError):
            LinearLtrModel.fit([])

    def test_learns_label_signal(self, linear, examples):
        relevant = [e for e in examples if e.label == 2.0]
        irrelevant = [e for e in examples if e.label == 0.0]
        mean_relevant = np.mean([linear.score(e.features) for e in relevant])
        mean_irrelevant = np.mean([linear.score(e.features) for e in irrelevant])
        assert mean_relevant > mean_irrelevant

    def test_sensitivity_shape(self, linear, examples):
        assert linear.feature_sensitivity().shape == examples[0].features.shape
        assert (linear.feature_sensitivity() >= 0).all()


class TestRankNetModel:
    def test_requires_preference_pairs(self, examples):
        constant = [e for e in examples if e.label == 1.0][:5]
        with pytest.raises(TrainingError):
            RankNetLtrModel.fit(constant, epochs=1)

    def test_deterministic_under_seed(self, examples):
        a = RankNetLtrModel.fit(examples[:60], epochs=2, seed=5)
        b = RankNetLtrModel.fit(examples[:60], epochs=2, seed=5)
        assert a.score(examples[0].features) == pytest.approx(
            b.score(examples[0].features)
        )

    def test_learns_label_signal(self, ranknet, examples):
        relevant = [e for e in examples if e.label == 2.0]
        irrelevant = [e for e in examples if e.label == 0.0]
        mean_relevant = np.mean([ranknet.score(e.features) for e in relevant])
        mean_irrelevant = np.mean([ranknet.score(e.features) for e in irrelevant])
        assert mean_relevant > mean_irrelevant


class TestLtrRanker:
    @pytest.fixture(scope="class", params=["linear", "ranknet"])
    def ranker(self, request, index, linear, ranknet):
        model = linear if request.param == "linear" else ranknet
        return LtrRanker(index, model)

    def test_rank_is_contiguous(self, ranker):
        ranking = ranker.rank("virus hospital patients", k=10)
        assert [entry.rank for entry in ranking] == list(range(1, len(ranking) + 1))

    def test_ranking_quality_beats_random(self, ranker, examples):
        """nDCG of the LTR order over judged docs must beat label-agnostic order."""
        query = "virus hospital patients"
        judged = {
            e.doc_id: e.label for e in examples if e.query == query
        }
        ranking = ranker.rank(query, k=len(ranker.index))
        ranked_judged = [d for d in ranking.doc_ids if d in judged]
        score = ndcg_at_k(ranked_judged, judged, k=10)
        assert score > 0.5

    def test_score_text_uses_neutral_priors(self, ranker):
        score = ranker.score_text("virus", "virus hospital report")
        assert isinstance(score, float)

    def test_rank_candidates_keeps_priors(self, ranker, index):
        documents = list(index)[:6]
        ranking = ranker.rank_candidates("virus hospital", documents)
        assert len(ranking) == 6

    def test_explainers_work_on_ltr_ranker(self, ranker):
        """Black-box generality: the §II explainers run on LTR unchanged."""
        from repro.core.document_cf import CounterfactualDocumentExplainer

        query = "virus hospital patients"
        ranking = ranker.rank(query, k=6)
        explainer = CounterfactualDocumentExplainer(ranker, max_evaluations=400)
        result = explainer.explain(query, ranking.doc_ids[-1], n=1, k=6)
        # Either a counterfactual is found or the space was fully searched.
        assert len(result) == 1 or result.search_exhausted
