"""Tests for timing helpers."""

import pytest

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        first = watch.elapsed
        with watch.measure():
            pass
        assert watch.elapsed >= first

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running


def test_timed_yields_monotonic_clock():
    with timed() as elapsed:
        first = elapsed()
        second = elapsed()
    assert 0.0 <= first <= second
