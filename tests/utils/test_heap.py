"""Unit tests for the bounded top-k heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.heap import TopK


class TestTopK:
    def test_keeps_best_k(self):
        top = TopK[str](2)
        top.extend([(1.0, "a"), (3.0, "b"), (2.0, "c")])
        assert top.items() == [(3.0, "b"), (2.0, "c")]

    def test_under_capacity_keeps_everything(self):
        top = TopK[str](10)
        top.extend([(1.0, "a"), (2.0, "b")])
        assert len(top) == 2

    def test_push_reports_acceptance(self):
        top = TopK[str](1)
        assert top.push(1.0, "a") is True
        assert top.push(0.5, "b") is False
        assert top.push(2.0, "c") is True

    def test_ties_prefer_earlier_insertion(self):
        top = TopK[str](2)
        top.extend([(1.0, "first"), (1.0, "second"), (1.0, "third")])
        assert [item for _, item in top.items()] == ["first", "second"]

    def test_threshold_is_none_under_capacity(self):
        top = TopK[str](3)
        top.push(5.0, "a")
        assert top.threshold is None

    def test_threshold_is_kth_best(self):
        top = TopK[str](2)
        top.extend([(5.0, "a"), (3.0, "b"), (4.0, "c")])
        assert top.threshold == 4.0

    def test_rejects_non_positive_k(self):
        with pytest.raises(ConfigurationError):
            TopK(0)

    def test_iteration_matches_items(self):
        top = TopK[int](3)
        top.extend([(float(i), i) for i in range(6)])
        assert list(top) == top.items()

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=50))
    def test_matches_sorted_reference(self, scores):
        k = 5
        top = TopK[int](k)
        for i, score in enumerate(scores):
            top.push(score, i)
        kept_scores = [score for score, _ in top.items()]
        expected = sorted(scores, reverse=True)[:k]
        assert kept_scores == expected

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=60))
    def test_result_is_sorted_descending(self, scores):
        top = TopK[int](7)
        for i, score in enumerate(scores):
            top.push(float(score), i)
        result = [score for score, _ in top.items()]
        assert result == sorted(result, reverse=True)
