"""Tests for iteration utilities — the minimality-critical enumerator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.iteration import batched, ordered_subsets, ranked_pairs, take


class TestTake:
    def test_takes_prefix(self):
        assert take(2, iter([1, 2, 3])) == [1, 2]

    def test_short_iterable(self):
        assert take(5, [1]) == [1]

    def test_zero(self):
        assert take(0, [1, 2]) == []

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            take(-1, [])


class TestBatched:
    def test_even_batches(self):
        assert list(batched([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(batched([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_empty(self):
        assert list(batched([], 3)) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            list(batched([1], 0))


class TestRankedPairs:
    def test_pairs_in_order(self):
        assert list(ranked_pairs(["a", "b", "c"])) == [
            ("a", "b"), ("a", "c"), ("b", "c"),
        ]

    def test_single_item_no_pairs(self):
        assert list(ranked_pairs(["a"])) == []


class TestOrderedSubsets:
    def test_exact_order_small_case(self):
        subsets = list(ordered_subsets(["s0", "s1", "s2"], [2.0, 1.0, 2.0]))
        assert subsets == [
            (("s0",), 2.0),
            (("s2",), 2.0),
            (("s1",), 1.0),
            (("s0", "s2"), 4.0),
            (("s0", "s1"), 3.0),
            (("s2", "s1"), 3.0),
            (("s0", "s2", "s1"), 5.0),
        ]

    def test_max_size_limits_enumeration(self):
        subsets = list(ordered_subsets(list("abcd"), [4, 3, 2, 1], max_size=2))
        assert max(len(s) for s, _ in subsets) == 2
        assert len(subsets) == 4 + 6

    def test_min_size_skips_small_subsets(self):
        subsets = list(ordered_subsets(list("abc"), [3, 2, 1], min_size=2))
        assert min(len(s) for s, _ in subsets) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            list(ordered_subsets(["a"], [1.0, 2.0]))

    def test_empty_items(self):
        assert list(ordered_subsets([], [])) == []

    def test_lazy_early_exit(self):
        # Enumerating only the first element of a large space must be cheap.
        items = list(range(40))
        scores = [float(i) for i in items]
        generator = ordered_subsets(items, scores)
        first, score = next(generator)
        assert first == (39,)
        assert score == 39.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=7,
        )
    )
    def test_complete_and_size_major_and_score_sorted(self, scores):
        items = list(range(len(scores)))
        emitted = list(ordered_subsets(items, scores))

        # Completeness: every non-empty subset appears exactly once.
        expected = set()
        for size in range(1, len(items) + 1):
            expected.update(itertools.combinations(items, size))
        seen = [tuple(sorted(subset)) for subset, _ in emitted]
        assert sorted(seen) == sorted(expected)
        assert len(seen) == len(set(seen))

        # Size-major order.
        sizes = [len(subset) for subset, _ in emitted]
        assert sizes == sorted(sizes)

        # Score order within each size: non-increasing.
        for size in set(sizes):
            sums = [score for subset, score in emitted if len(subset) == size]
            assert all(a >= b - 1e-9 for a, b in zip(sums, sums[1:]))

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=6
        )
    )
    def test_reported_score_matches_subset(self, scores):
        items = list(range(len(scores)))
        for subset, total in ordered_subsets(items, scores):
            assert total == pytest.approx(sum(scores[i] for i in subset))
