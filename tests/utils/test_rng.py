"""Tests for deterministic RNG helpers."""

import numpy as np

from repro.utils.rng import DEFAULT_SEED, default_rng, spawn_rng


class TestDefaultRng:
    def test_same_seed_same_stream(self):
        assert default_rng(42).integers(0, 1000) == default_rng(42).integers(0, 1000)

    def test_different_seeds_diverge(self):
        a = default_rng(1).integers(0, 2**31)
        b = default_rng(2).integers(0, 2**31)
        assert a != b

    def test_none_uses_library_default(self):
        a = default_rng(None).integers(0, 2**31)
        b = default_rng(DEFAULT_SEED).integers(0, 2**31)
        assert a == b

    def test_existing_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert default_rng(rng) is rng


class TestSpawnRng:
    def test_children_deterministic(self):
        a = spawn_rng(default_rng(3), "doc2vec").integers(0, 2**31)
        b = spawn_rng(default_rng(3), "doc2vec").integers(0, 2**31)
        assert a == b

    def test_labels_give_independent_streams(self):
        parent = default_rng(3)
        a = spawn_rng(parent, "a")
        parent = default_rng(3)
        b = spawn_rng(parent, "b")
        assert a.integers(0, 2**31) != b.integers(0, 2**31)
