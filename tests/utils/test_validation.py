"""Tests for argument-validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="broken invariant"):
            require(False, "broken invariant")


class TestNumericChecks:
    def test_positive_accepts(self):
        require_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_positive_rejects(self, value):
        with pytest.raises(ConfigurationError):
            require_positive(value, "x")

    def test_non_negative_accepts_zero(self):
        require_non_negative(0, "x")

    def test_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-1e-9, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_probability_rejects(self, value):
        with pytest.raises(ConfigurationError):
            require_probability(value, "p")


class TestRequireType:
    def test_accepts_instance(self):
        require_type("x", str, "value")

    def test_accepts_tuple_of_types(self):
        require_type(3, (int, float), "value")

    def test_rejects_with_both_names_in_message(self):
        with pytest.raises(ConfigurationError, match="value must be str"):
            require_type(3, str, "value")
