"""Tracing must be invisible: byte-identical explanations on vs off.

The instrumentation sits on the hottest serving paths (admission, the
search kernel, scoring sessions), so the contract is structural: spans
observe, they never participate. This suite runs every explanation
family across every ranker family and every search strategy twice —
once with no trace installed, once under an active trace — and demands
``to_dict()``-identical payloads (minus the wall-clock
``elapsed_seconds``, which is a measurement, not a result).
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.index.document import Document
from repro.obs import Tracer, span

QUERY = "covid outbreak hospital"

_TOPICS = [
    "covid outbreak strained the hospital wards",
    "the city council debated transit funding",
    "researchers tracked the covid variant spread",
    "the festival drew record crowds downtown",
    "hospital staff reported outbreak fatigue",
    "markets rallied after the earnings report",
]


def _corpus() -> list[Document]:
    documents = []
    for i in range(18):
        body = ". ".join(
            [
                f"{_TOPICS[i % len(_TOPICS)].capitalize()} in district {i}",
                f"{_TOPICS[(i + 2) % len(_TOPICS)].capitalize()} again",
                f"Observers noted item {i} in the evening report",
            ]
        ) + "."
        documents.append(Document(f"doc-{i:02d}", body))
    return documents


RANKERS = ("bm25", "tfidf", "lm")
SEARCHES = ("exhaustive", "greedy", "beam", "anytime")


@pytest.fixture(scope="module")
def engines() -> dict[str, CredenceEngine]:
    return {
        ranker: CredenceEngine(
            _corpus(), EngineConfig(ranker=ranker, seed=5)
        )
        for ranker in RANKERS
    }


def _doc_for(engine: CredenceEngine) -> str:
    return engine.rank(QUERY, k=1)[0].doc_id


def _fingerprint(engine: CredenceEngine, request: ExplainRequest) -> dict:
    payload = engine.explain(request).to_dict()
    payload.pop("elapsed_seconds")
    return payload


def _assert_equivalent(engine: CredenceEngine, request: ExplainRequest):
    baseline = _fingerprint(engine, request)
    tracer = Tracer(ring_capacity=4)
    with tracer.trace("equivalence") as trace:
        traced = _fingerprint(engine, request)
    assert json.dumps(traced, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
    # The traced run must actually have been observed, or the test is
    # vacuous.
    assert any(s.name == "engine/explain" for s in trace.spans)
    # And a control: rerunning without a trace still matches.
    assert _fingerprint(engine, request) == baseline


class TestDocumentFamily:
    @pytest.mark.parametrize("ranker", RANKERS)
    @pytest.mark.parametrize("search", SEARCHES)
    def test_sentence_removal(self, engines, ranker, search):
        engine = engines[ranker]
        _assert_equivalent(
            engine,
            ExplainRequest(
                query=QUERY,
                doc_id=_doc_for(engine),
                strategy="document/sentence-removal",
                n=2,
                k=5,
                search=search,
                budget=200,
            ),
        )

    @pytest.mark.parametrize("ranker", RANKERS)
    def test_greedy(self, engines, ranker):
        engine = engines[ranker]
        _assert_equivalent(
            engine,
            ExplainRequest(
                query=QUERY,
                doc_id=_doc_for(engine),
                strategy="document/greedy",
                n=2,
                k=5,
            ),
        )


class TestQueryFamily:
    @pytest.mark.parametrize("ranker", RANKERS)
    def test_augmentation(self, engines, ranker):
        engine = engines[ranker]
        _assert_equivalent(
            engine,
            ExplainRequest(
                query=QUERY,
                doc_id=_doc_for(engine),
                strategy="query/augmentation",
                n=2,
                k=5,
                threshold=3,
            ),
        )


class TestInstanceFamily:
    @pytest.mark.parametrize("ranker", RANKERS)
    def test_cosine(self, engines, ranker):
        engine = engines[ranker]
        _assert_equivalent(
            engine,
            ExplainRequest(
                query=QUERY,
                doc_id=_doc_for(engine),
                strategy="instance/cosine",
                n=2,
                k=5,
                samples=10,
            ),
        )


class TestNestingNeutrality:
    def test_explain_inside_a_foreign_span_is_unaffected(self, engines):
        """An ambient span from unrelated instrumentation must not leak
        into the explanation either."""
        engine = engines["bm25"]
        request = ExplainRequest(
            query=QUERY,
            doc_id=_doc_for(engine),
            strategy="document/sentence-removal",
            n=2,
            k=5,
        )
        baseline = _fingerprint(engine, request)
        tracer = Tracer(ring_capacity=4)
        with tracer.trace("outer"):
            with span("caller/stage"):
                nested = _fingerprint(engine, request)
        assert nested == baseline
