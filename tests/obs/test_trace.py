"""Unit tests for the tracing primitives: spans, context propagation,
exporters, the tracer lifecycle, and the profile block."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    JsonlExporter,
    NULL_SPAN,
    RingExporter,
    Trace,
    TraceContext,
    Tracer,
    activate_context,
    annotate,
    capture_context,
    count,
    current_context,
    current_trace,
    event,
    event_since,
    new_request_id,
    profile_block,
    render_profile,
    span,
)
from repro.obs.trace import MAX_SPANS_PER_TRACE


class TestSpanTree:
    def test_nested_spans_parent_correctly(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert [s.name for s in trace.spans] == ["outer", "inner"]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.span_id == "s1" and inner.span_id == "s2"
        assert all(s.duration_ms is not None for s in trace.spans)

    def test_sibling_spans_share_a_parent(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            with span("parent") as parent:
                with span("a"):
                    pass
                with span("b"):
                    pass
        children = [s for s in trace.spans if s.parent_id == parent.span_id]
        assert [s.name for s in children] == ["a", "b"]

    def test_span_attributes_and_set(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            with span("stage", strategy="beam") as sp:
                sp.set(hit=True)
        assert trace.spans[0].attributes == {"strategy": "beam", "hit": True}

    def test_exception_stamps_error_and_propagates(self):
        trace = Trace("test")
        with pytest.raises(ValueError):
            with activate_context(TraceContext(trace)):
                with span("boom"):
                    raise ValueError("nope")
        assert trace.spans[0].attributes["error"] == "ValueError"
        assert trace.spans[0].duration_ms is not None

    def test_context_restored_after_span(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            with span("outer"):
                pass
            assert current_context().span is None


class TestNoOpPath:
    """With no trace installed, every helper is an observable no-op."""

    def test_span_yields_null_span(self):
        with span("anything") as sp:
            assert sp is NULL_SPAN
            sp.set(ignored=True)  # must not raise

    def test_helpers_are_silent(self):
        event("e")
        event_since("q", 0.0)
        count("c")
        annotate(x=1)
        assert current_trace() is None
        assert capture_context() is None


class TestEventsAndCounters:
    def test_event_is_zero_duration(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            event("replica/swap", generation=3)
        assert trace.spans[0].duration_ms == 0.0
        assert trace.spans[0].attributes == {"generation": 3}

    def test_event_since_backdates_the_start(self):
        trace = Trace("test")
        stamp = trace._clock()  # a perf_counter reading after t0
        with activate_context(TraceContext(trace)):
            event_since("queue/wait", stamp)
        recorded = trace.spans[0]
        assert recorded.duration_ms >= 0.0
        assert recorded.started_ms >= 0.0

    def test_counters_accumulate(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            count("sessions/opened")
            count("sessions/opened", by=2)
        assert trace.counters == {"sessions/opened": 3}

    def test_annotate_targets_innermost_span_then_trace(self):
        trace = Trace("test")
        with activate_context(TraceContext(trace)):
            annotate(client="cli")
            with span("stage"):
                annotate(hit=False)
        assert trace.attributes == {"client": "cli"}
        assert trace.spans[0].attributes == {"hit": False}


class TestCrossThread:
    def test_captured_context_carries_to_a_worker_thread(self):
        trace = Trace("test")
        recorded = []

        def worker(context):
            with activate_context(context):
                with span("worker/stage"):
                    recorded.append(current_trace())

        with activate_context(TraceContext(trace)):
            context = capture_context()
            thread = threading.Thread(target=worker, args=(context,))
            thread.start()
            thread.join()
        assert recorded == [trace]
        assert [s.name for s in trace.spans] == ["worker/stage"]

    def test_activate_none_is_a_no_op(self):
        with activate_context(None):
            assert current_trace() is None


class TestSpanCap:
    def test_runaway_spans_degrade_to_a_counter(self):
        trace = Trace("test")
        for _ in range(MAX_SPANS_PER_TRACE + 5):
            trace.add_event("tick", None)
        assert len(trace.spans) == MAX_SPANS_PER_TRACE
        assert trace.spans_dropped == 5
        assert trace.to_dict()["spans_dropped"] == 5

    def test_dropped_span_is_still_settable(self):
        trace = Trace("test")
        for _ in range(MAX_SPANS_PER_TRACE):
            trace.add_event("tick", None)
        extra = trace.begin_span("late", None)
        assert extra.span_id == "dropped"
        extra.set(ok=True)  # must not raise


class TestTraceRendering:
    def test_to_dict_shape(self):
        trace = Trace("GET /health", request_id="abc")
        with activate_context(TraceContext(trace)):
            with span("stage"):
                count("hits")
        trace.set(status=200)
        trace.finish()
        data = trace.to_dict()
        assert data["request_id"] == "abc"
        assert data["name"] == "GET /health"
        assert data["attributes"] == {"status": 200}
        assert data["counters"] == {"hits": 1}
        assert [s["name"] for s in data["spans"]] == ["stage"]
        assert data["duration_ms"] >= 0.0
        assert json.dumps(data)  # JSON-serialisable end to end

    def test_summary_includes_only_status_and_error(self):
        trace = Trace("test", request_id="abc")
        trace.set(status=500, error="Boom", secret="hidden")
        trace.finish()
        summary = trace.summary()
        assert summary["status"] == 500
        assert summary["error"] == "Boom"
        assert "secret" not in summary

    def test_request_id_generated_when_absent(self):
        generated = Trace("test").request_id
        assert len(generated) == 16
        int(generated, 16)  # hex

    def test_new_request_id_is_16_hex(self):
        rid = new_request_id()
        assert len(rid) == 16
        int(rid, 16)


class TestRingExporter:
    def test_bounded_and_newest_first(self):
        ring = RingExporter(capacity=2)
        traces = [Trace(f"t{i}") for i in range(3)]
        for trace in traces:
            ring.export(trace)
        assert [t.name for t in ring.traces()] == ["t2", "t1"]
        assert len(ring) == 2
        assert ring.exported == 3

    def test_find_returns_newest_match(self):
        ring = RingExporter(capacity=4)
        first = Trace("a", request_id="dup")
        second = Trace("b", request_id="dup")
        ring.export(first)
        ring.export(second)
        assert ring.find("dup") is second
        assert ring.find("ghost") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(Exception):
            RingExporter(capacity=0)


class TestJsonlExporter:
    def test_lazy_open_and_one_line_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        exporter = JsonlExporter(str(path))
        assert not path.exists()  # construction must not touch the fs
        for name in ("a", "b"):
            trace = Trace(name)
            trace.finish()
            exporter.export(trace)
        exporter.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


class TestTracer:
    def test_disabled_tracer_installs_nothing(self):
        tracer = Tracer(enabled=False, ring_capacity=1)
        with tracer.trace("req") as trace:
            assert trace is None
            assert current_trace() is None
        assert len(tracer.ring) == 0

    def test_enabled_tracer_exports_to_the_ring(self):
        tracer = Tracer(ring_capacity=4)
        with tracer.trace("req", request_id="abc") as trace:
            with span("stage"):
                pass
        assert trace.duration_ms is not None
        assert tracer.trace_for("abc") is trace
        assert tracer.traces()[0] is trace

    def test_export_happens_even_when_the_block_raises(self):
        tracer = Tracer(ring_capacity=4)
        with pytest.raises(RuntimeError):
            with tracer.trace("req", request_id="failed"):
                raise RuntimeError("boom")
        assert tracer.trace_for("failed") is not None

    def test_slow_ring_catches_only_slow_traces(self):
        tracer = Tracer(ring_capacity=4, slow_threshold_ms=0.0)
        with tracer.trace("slow", request_id="s1"):
            pass
        assert [t.request_id for t in tracer.traces(slow=True)] == ["s1"]
        fast = Tracer(ring_capacity=4, slow_threshold_ms=1e9)
        with fast.trace("fast"):
            pass
        assert fast.traces(slow=True) == []

    def test_jsonl_export_wiring(self, tmp_path):
        path = tmp_path / "out.jsonl"
        tracer = Tracer(ring_capacity=4, jsonl_path=str(path))
        with tracer.trace("req"):
            pass
        tracer.close()
        assert len(path.read_text().splitlines()) == 1


class TestProfileBlock:
    def test_none_trace_yields_disabled(self):
        assert profile_block(None) == {"enabled": False}
        assert render_profile({"enabled": False}) == "profiling disabled"

    def test_stages_aggregate_by_name_in_first_seen_order(self):
        trace = Trace("req", request_id="abc")
        with activate_context(TraceContext(trace)):
            with span("a"):
                pass
            with span("b"):
                pass
            with span("a"):
                pass
            count("things", by=2)
        trace.finish()
        block = profile_block(trace)
        assert block["enabled"] is True
        assert block["request_id"] == "abc"
        assert [s["name"] for s in block["stages"]] == ["a", "b"]
        by_name = {s["name"]: s for s in block["stages"]}
        assert by_name["a"]["count"] == 2
        assert by_name["a"]["total_ms"] >= by_name["a"]["max_ms"]
        assert block["counters"] == {"things": 2}
        rendered = render_profile(block)
        assert "profile abc" in rendered
        assert "things = 2" in rendered
