"""Pin the Prometheus exposition surface.

Exactly the way ``tests/service/test_metrics_schema.py`` pins the JSON
snapshot, this file pins the metric-name/label surface of
``GET /metrics?format=prometheus``: renaming a family is a deliberate
dashboard migration, never a refactoring accident.
"""

from __future__ import annotations

import re

import pytest

from repro.obs.prometheus import (
    METRIC_HELP,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)

#: The pinned family-name surface. Adding, removing, or renaming a
#: metric must edit this list consciously.
PINNED_FAMILIES = [
    "repro_admission_enabled",
    "repro_admission_max_queue_depth",
    "repro_admission_rate_burst",
    "repro_admission_rate_limit_per_client",
    "repro_cache_hit_rate",
    "repro_circuit_breaker_open",
    "repro_deadline_exceeded_total",
    "repro_draining",
    "repro_executor_index_snapshots_total",
    "repro_executor_tasks_dispatched_total",
    "repro_executor_worker_respawns_total",
    "repro_executor_workers",
    "repro_fault_events_total",
    "repro_faults_injected_total",
    "repro_item_latency_by_priority_seconds",
    "repro_item_latency_seconds",
    "repro_items_executed_total",
    "repro_items_failed_total",
    "repro_items_skipped_total",
    "repro_jobs_cancelled_total",
    "repro_jobs_completed_total",
    "repro_jobs_failed_total",
    "repro_jobs_submitted_total",
    "repro_jobs_tracked",
    "repro_metrics_snapshot_seq",
    "repro_queue_depth",
    "repro_requests_admitted_total",
    "repro_requests_rate_limited_total",
    "repro_requests_rejected_draining_total",
    "repro_requests_rejected_open_circuit_total",
    "repro_requests_shed_total",
    "repro_store_entries",
    "repro_store_evictions_total",
    "repro_store_expirations_total",
    "repro_store_hits_total",
    "repro_store_max_entries",
    "repro_store_misses_total",
    "repro_store_ttl_seconds",
    "repro_uptime_seconds",
    "repro_workers",
]

_WINDOW = {
    "count": 2,
    "mean_seconds": 0.25,
    "p50_seconds": 0.2,
    "p95_seconds": 0.4,
    "p99_seconds": 0.5,
}

#: A snapshot that exercises every optional branch of the renderer
#: (admission armed with every knob set, TTL store, injected faults).
FULL_SNAPSHOT = {
    "counters": {
        "jobs_submitted": 3,
        "jobs_completed": 2,
        "jobs_failed": 1,
        "jobs_cancelled": 0,
        "items_executed": 5,
        "items_failed": 1,
        "items_skipped": 0,
        "requests_admitted": 9,
        "requests_rate_limited": 1,
        "requests_shed": 0,
        "requests_rejected_open_circuit": 0,
        "requests_rejected_draining": 0,
        "deadline_exceeded": 0,
        "faults_injected": 2,
    },
    "item_latency": dict(_WINDOW),
    "latency_by_priority": {
        "interactive": dict(_WINDOW),
        "batch": dict(_WINDOW),
    },
    "uptime_seconds": 12.5,
    "snapshot_seq": 7,
    "store": {
        "entries": 4,
        "max_entries": 2048,
        "ttl_seconds": 60.0,
        "hits": 3,
        "misses": 5,
        "hit_rate": 0.375,
        "evictions": 1,
        "expirations": 2,
    },
    "cache_hit_rate": 0.375,
    "queue_depth": 1,
    "workers": 4,
    "admission": {
        "rate_limit_per_client": 10.0,
        "rate_burst": 20.0,
        "max_queue_depth": 32,
        "circuit_breaker": "open",
    },
    "draining": False,
    "faults": {"store.get": 1, "worker.execute": 1},
    "jobs_tracked": 2,
    "executor": {
        "kind": "process",
        "workers": 4,
        "start_method": "fork",
        "tasks_dispatched": 11,
        "worker_respawns": 1,
        "index_snapshots": 2,
    },
}


def _families(text: str) -> set[str]:
    names = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        names.add(re.sub(r"_(sum|count)$", "", name))
    return names


@pytest.fixture(scope="module")
def full_text() -> str:
    return render_prometheus(FULL_SNAPSHOT)


class TestPinnedSurface:
    def test_metric_help_is_pinned(self):
        assert sorted(METRIC_HELP) == PINNED_FAMILIES

    def test_full_snapshot_renders_every_family(self, full_text):
        assert _families(full_text) == set(PINNED_FAMILIES)

    def test_every_family_declares_help_and_type_once(self, full_text):
        for family, (kind, _help) in METRIC_HELP.items():
            help_lines = [
                line
                for line in full_text.splitlines()
                if line.startswith(f"# HELP {family} ")
            ]
            type_lines = [
                line
                for line in full_text.splitlines()
                if line == f"# TYPE {family} {kind}"
            ]
            assert len(help_lines) == 1, family
            assert len(type_lines) == 1, family

    def test_content_type_is_exposition_004(self):
        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )


class TestCounterCompleteness:
    """Property: every JSON counter appears in the text format."""

    def test_synthetic_counters_all_present(self, full_text):
        for name, value in FULL_SNAPSHOT["counters"].items():
            assert f"repro_{name}_total {value}" in full_text

    def test_live_snapshot_counters_all_present(self, bm25_engine):
        snapshot = bm25_engine.service().metrics_snapshot()
        text = render_prometheus(snapshot)
        for name, value in snapshot["counters"].items():
            family = f"repro_{name}_total"
            assert family in METRIC_HELP
            assert f"{family} {value:g}" in text or f"{family} {value}" in text


class TestRenderedValues:
    def test_uptime_and_seq(self, full_text):
        assert "repro_uptime_seconds 12.5" in full_text
        assert "repro_metrics_snapshot_seq 7" in full_text

    def test_booleans_render_as_01(self, full_text):
        assert "repro_draining 0" in full_text
        assert "repro_admission_enabled 1" in full_text
        assert "repro_circuit_breaker_open 1" in full_text

    def test_summaries_emit_quantiles_sum_count(self, full_text):
        assert 'repro_item_latency_seconds{quantile="0.5"} 0.2' in full_text
        assert "repro_item_latency_seconds_sum 0.5" in full_text
        assert "repro_item_latency_seconds_count 2" in full_text
        assert (
            'repro_item_latency_by_priority_seconds'
            '{priority="batch",quantile="0.99"} 0.5'
        ) in full_text

    def test_executor_block_renders_with_tier_labels(self, full_text):
        assert (
            'repro_executor_workers{kind="process",start_method="fork"} 4'
        ) in full_text
        assert "repro_executor_tasks_dispatched_total 11" in full_text
        assert "repro_executor_worker_respawns_total 1" in full_text
        assert "repro_executor_index_snapshots_total 2" in full_text

    def test_thread_tier_omits_the_start_method_label(self):
        from repro.service.process import thread_executor_block

        snapshot = {**FULL_SNAPSHOT, "executor": thread_executor_block(4)}
        text = render_prometheus(snapshot)
        assert 'repro_executor_workers{kind="thread"} 4' in text
        assert "start_method" not in text

    def test_fault_sites_become_labels(self, full_text):
        assert 'repro_fault_events_total{site="store.get"} 1' in full_text
        assert 'repro_fault_events_total{site="worker.execute"} 1' in full_text

    def test_optional_sections_are_omitted_not_sentinelled(self):
        bare = {
            key: value
            for key, value in FULL_SNAPSHOT.items()
            if key not in ("admission",)
        }
        bare["admission"] = None
        bare["store"] = {**FULL_SNAPSHOT["store"], "ttl_seconds": None}
        bare["faults"] = {}
        text = render_prometheus(bare)
        assert "repro_admission_enabled 0" in text
        assert "repro_admission_rate_limit" not in text
        assert "repro_circuit_breaker_open" not in text
        assert "repro_store_ttl_seconds" not in text
        assert "repro_fault_events_total" not in text

    def test_label_values_are_escaped(self):
        snapshot = {**FULL_SNAPSHOT, "faults": {'we"ird\nsite\\x': 1}}
        text = render_prometheus(snapshot)
        assert r'site="we\"ird\nsite\\x"' in text

    def test_output_ends_with_newline(self, full_text):
        assert full_text.endswith("\n")
