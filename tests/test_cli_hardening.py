"""CLI tests for the serving-hardening surface: the ``serve`` overload
flags parse into the right namespace fields, and ``explain --stream``
prints live progress to stderr while leaving stdout identical to the
non-streamed run."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.covid import DEMO_QUERY, FAKE_NEWS_DOC_ID


class TestServeFlags:
    def test_hardening_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--rate-limit",
                "25",
                "--rate-burst",
                "50",
                "--max-queue",
                "64",
                "--default-deadline-ms",
                "1500",
            ]
        )
        assert args.rate_limit == 25.0
        assert args.rate_burst == 50.0
        assert args.max_queue == 64
        assert args.default_deadline_ms == 1500.0

    def test_hardening_flags_default_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.rate_limit is None
        assert args.rate_burst is None
        assert args.max_queue is None
        assert args.default_deadline_ms is None

    def test_bad_rate_limit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--rate-limit", "fast"])


class TestExplainStream:
    _ARGS = [
        "explain",
        "--strategy",
        "document/sentence-removal",
        "--query",
        DEMO_QUERY,
        "--doc",
        FAKE_NEWS_DOC_ID,
        "--n",
        "1",
    ]

    def test_stream_flag_parses(self):
        args = build_parser().parse_args(self._ARGS + ["--stream"])
        assert args.stream is True
        assert build_parser().parse_args(self._ARGS).stream is False

    def test_streamed_run_matches_plain_stdout(self, capsys):
        code = main(self._ARGS + ["--json"])
        plain = capsys.readouterr()
        stream_code = main(self._ARGS + ["--json", "--stream"])
        streamed = capsys.readouterr()
        assert code == stream_code == 0
        # stdout payloads are identical (modulo timing); stderr differs.
        first = json.loads(plain.out)
        second = json.loads(streamed.out)
        first.pop("elapsed_seconds"), second.pop("elapsed_seconds")
        assert second == first

    def test_stream_progress_goes_to_stderr(self, capsys):
        code = main(self._ARGS + ["--json", "--stream"])
        captured = capsys.readouterr()
        assert code == 0
        # Progress lines (if the search outlived the first poll) never
        # contaminate stdout — it must stay parseable JSON.
        json.loads(captured.out)
        for line in captured.err.splitlines():
            assert line.startswith("  ...")

    def test_stream_error_still_clean_exit(self, capsys):
        code = main(
            [
                "explain",
                "--strategy",
                "document/sentence-removal",
                "--query",
                DEMO_QUERY,
                "--doc",
                "no-such-doc",
                "--stream",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err.lower()
