"""Unit tests for the version-keyed LRU+TTL result store."""

from __future__ import annotations

import pytest

from repro.core.explain import ExplainRequest, ExplainResponse
from repro.errors import ConfigurationError
from repro.service.store import ResultStore, request_fingerprint


def _request(**overrides) -> ExplainRequest:
    fields = {"query": "covid outbreak", "doc_id": "d1"}
    fields.update(overrides)
    return ExplainRequest(**fields)


def _response(request: ExplainRequest) -> ExplainResponse:
    return ExplainResponse(
        strategy=request.strategy,
        query=request.query,
        doc_id=request.doc_id,
        elapsed_seconds=0.01,
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestFingerprint:
    def test_identical_requests_share_a_fingerprint(self):
        assert request_fingerprint(_request()) == request_fingerprint(_request())

    def test_any_field_change_alters_the_fingerprint(self):
        base = request_fingerprint(_request())
        assert request_fingerprint(_request(n=2)) != base
        assert request_fingerprint(_request(k=5)) != base
        assert request_fingerprint(_request(doc_id="d2")) != base
        assert request_fingerprint(_request(extra={"alpha": 1})) != base


class TestRoundTrip:
    def test_put_then_get(self):
        store = ResultStore()
        request, response = _request(), _response(_request())
        assert store.put(3, "BM25", request, response)
        assert store.get(3, "BM25", request) is response
        assert store.hits == 1

    def test_miss_on_version_change(self):
        store = ResultStore()
        request = _request()
        store.put(3, "BM25", request, _response(request))
        assert store.get(4, "BM25", request) is None

    def test_miss_on_ranker_change(self):
        store = ResultStore()
        request = _request()
        store.put(3, "BM25", request, _response(request))
        assert store.get(3, "TfIdf", request) is None

    def test_error_responses_are_refused(self):
        store = ResultStore()
        request = _request()
        failed = ExplainResponse.from_error(request, ValueError("boom"), 0.0)
        assert not store.put(3, "BM25", request, failed)
        assert store.get(3, "BM25", request) is None
        assert len(store) == 0


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        store = ResultStore(max_entries=2)
        first, second, third = _request(), _request(n=2), _request(n=3)
        store.put(1, "BM25", first, _response(first))
        store.put(1, "BM25", second, _response(second))
        store.get(1, "BM25", first)  # refresh first; second is now LRU
        store.put(1, "BM25", third, _response(third))
        assert store.get(1, "BM25", first) is not None
        assert store.get(1, "BM25", second) is None
        assert store.evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        store = ResultStore(ttl_seconds=10.0, clock=clock)
        request = _request()
        store.put(1, "BM25", request, _response(request))
        clock.now = 9.0
        assert store.get(1, "BM25", request) is not None
        clock.now = 11.0
        assert store.get(1, "BM25", request) is None
        assert store.expirations == 1
        assert len(store) == 0

    def test_prune_drops_stale_versions(self):
        store = ResultStore()
        old, current = _request(), _request(n=2)
        store.put(1, "BM25", old, _response(old))
        store.put(2, "BM25", current, _response(current))
        assert store.prune(current_version=2) == 1
        assert len(store) == 1
        assert store.get(2, "BM25", current) is not None

    def test_clear(self):
        store = ResultStore()
        request = _request()
        store.put(1, "BM25", request, _response(request))
        store.clear()
        assert len(store) == 0


class TestStats:
    def test_snapshot_shape(self):
        store = ResultStore(max_entries=7, ttl_seconds=5.0)
        request = _request()
        store.get(1, "BM25", request)
        store.put(1, "BM25", request, _response(request))
        store.get(1, "BM25", request)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 7
        assert stats["ttl_seconds"] == 5.0
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultStore(max_entries=0)
        with pytest.raises(ConfigurationError):
            ResultStore(ttl_seconds=0.0)


class TestSearchOptionFingerprints:
    """Store keys distinguish requests that differ only in search
    options — a beam answer must never be served for an exhaustive
    request."""

    def test_each_search_option_alters_the_fingerprint(self):
        base = request_fingerprint(_request())
        assert request_fingerprint(_request(search="beam")) != base
        assert request_fingerprint(_request(beam_width=8)) != base
        assert request_fingerprint(_request(budget=500)) != base
        assert request_fingerprint(_request(deadline_ms=100)) != base

    def test_search_options_are_mutually_distinct(self):
        prints = {
            request_fingerprint(_request(search=search))
            for search in ("exhaustive", "greedy", "beam", "anytime")
        }
        assert len(prints) == 4

    def test_store_keeps_entries_apart(self):
        store = ResultStore(max_entries=8)
        exhaustive = _request(search="exhaustive")
        beam = _request(search="beam")
        store.put(1, "bm25", exhaustive, _response(exhaustive))
        assert store.get(1, "bm25", beam) is None
        store.put(1, "bm25", beam, _response(beam))
        assert len(store) == 2
        assert store.get(1, "bm25", exhaustive) is not None


class TestPartialResultCaching:
    def _result_response(self, request, **result_fields):
        from repro.core.types import ExplanationSet

        response = _response(request)
        response.result = ExplanationSet(**result_fields)
        return response

    def test_deadline_truncated_results_are_never_cached(self):
        store = ResultStore()
        request = _request(search="anytime", deadline_ms=50)
        truncated = self._result_response(request, deadline_exceeded=True)
        assert store.put(1, "bm25", request, truncated) is False
        assert store.get(1, "bm25", request) is None

    def test_budget_truncated_results_stay_cacheable(self):
        """Evaluation-budget truncation is deterministic per request."""
        store = ResultStore()
        request = _request(budget=5)
        capped = self._result_response(request, budget_exhausted=True)
        assert store.put(1, "bm25", request, capped) is True
        assert store.get(1, "bm25", request) is not None
