"""Deadline tests: stamping at admission, min-of composition, the
effective floor, and the two cache invariants (deadline-partials never
cached; store keys ignore the effective deadline)."""

from __future__ import annotations

import pytest

from repro.core.explain import ExplainRequest, ExplainResponse
from repro.service.deadlines import (
    MIN_EFFECTIVE_DEADLINE_MS,
    NO_DEADLINES,
    Deadline,
    DeadlinePolicy,
)
from repro.service.scheduler import ExplanationService


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _request(**overrides) -> ExplainRequest:
    fields = {"query": "covid outbreak", "doc_id": "d5", "k": 5}
    fields.update(overrides)
    return ExplainRequest(**fields)


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(100.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(100.0)
        clock.advance(0.06)
        assert deadline.remaining_ms() == pytest.approx(40.0)
        assert not deadline.expired
        clock.advance(0.05)
        assert deadline.remaining_ms() == 0.0
        assert deadline.expired

    def test_apply_takes_the_tighter_bound(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(200.0, clock=clock)
        tightened = deadline.apply(_request(deadline_ms=50.0))
        assert tightened.deadline_ms == pytest.approx(50.0)
        loosened = deadline.apply(_request(deadline_ms=10_000.0))
        assert loosened.deadline_ms == pytest.approx(200.0)

    def test_apply_after_queue_wait_reflects_elapsed_time(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(200.0, clock=clock)
        clock.advance(0.15)  # 150ms in the queue
        effective = deadline.apply(_request())
        assert effective.deadline_ms == pytest.approx(50.0)

    def test_expired_deadline_floors_not_zeroes(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(10.0, clock=clock)
        clock.advance(1.0)
        effective = deadline.apply(_request())
        # The sliver keeps the search kernel's budget check in charge:
        # it yields a clean deadline_exceeded result, not an exception.
        assert effective.deadline_ms == MIN_EFFECTIVE_DEADLINE_MS

    def test_apply_without_change_returns_same_request(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(100.0, clock=clock)
        request = _request(deadline_ms=100.0)
        assert deadline.apply(request) is request


class TestDeadlinePolicy:
    def test_no_deadlines_policy_is_inert(self):
        assert NO_DEADLINES.start(_request()) is None

    def test_request_own_deadline_still_honoured(self):
        deadline = NO_DEADLINES.start(_request(deadline_ms=75.0))
        assert deadline is not None
        assert deadline.remaining_ms() <= 75.0

    def test_policy_default_applies_to_bare_requests(self):
        clock = FakeClock()
        policy = DeadlinePolicy(default_deadline_ms=500.0, clock=clock)
        deadline = policy.start(_request())
        assert deadline.remaining_ms() == pytest.approx(500.0)

    def test_policy_takes_min_with_request(self):
        clock = FakeClock()
        policy = DeadlinePolicy(default_deadline_ms=500.0, clock=clock)
        assert policy.start(_request(deadline_ms=100.0)).remaining_ms() == (
            pytest.approx(100.0)
        )
        assert policy.start(_request(deadline_ms=900.0)).remaining_ms() == (
            pytest.approx(500.0)
        )


class _StubIndex:
    def __init__(self):
        self.version = 0


class _StubRanker:
    name = "Stub"


class _RecordingEngine:
    """Counts explain() calls and echoes back the request's effective
    deadline, so cache-key tests can see both."""

    def __init__(self):
        self.index = _StubIndex()
        self.ranker = _StubRanker()
        self.calls: list[ExplainRequest] = []

    def explain(self, request: ExplainRequest) -> ExplainResponse:
        self.calls.append(request)
        return ExplainResponse(
            strategy=request.strategy,
            query=request.query,
            doc_id=request.doc_id,
        )


class TestStoreKeyInvariant:
    def test_cache_keyed_on_original_request_not_effective_deadline(self):
        engine = _RecordingEngine()
        clock = FakeClock()
        service = ExplanationService(
            engine,
            workers=1,
            deadline_policy=DeadlinePolicy(
                default_deadline_ms=1000.0, clock=clock
            ),
        )
        request = _request()
        first = service.explain(request)
        assert len(engine.calls) == 1
        # The engine saw the deadline-applied copy...
        assert engine.calls[0].deadline_ms == pytest.approx(1000.0)
        # ...but the cache is keyed on the original: the repeat hits even
        # though "remaining" would now be a different number.
        clock.advance(0.4)
        second = service.explain(request)
        assert len(engine.calls) == 1
        assert second.to_dict() == first.to_dict()
        service.shutdown()
