"""Admission-control unit tests: token bucket, rate limiter, circuit
breaker, and the shed-before-queue controller — all on fake clocks."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    QueueFullError,
    RateLimitedError,
)
from repro.service.admission import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CircuitBreaker,
    Priority,
    RateLimiter,
    TokenBucket,
    parse_priority,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPriority:
    def test_interactive_dequeues_first(self):
        assert Priority.INTERACTIVE < Priority.BATCH

    def test_labels(self):
        assert Priority.INTERACTIVE.label == "interactive"
        assert Priority.BATCH.label == "batch"

    @pytest.mark.parametrize(
        "raw", ["interactive", "INTERACTIVE", 0, Priority.INTERACTIVE]
    )
    def test_parse_accepts_names_ints_enums(self, raw):
        assert parse_priority(raw) is Priority.INTERACTIVE

    @pytest.mark.parametrize("raw", ["urgent", 7, True, None, 1.5])
    def test_parse_rejects_unknown(self, raw):
        with pytest.raises(ConfigurationError):
            parse_priority(raw)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(3.0)


class TestRateLimiter:
    def test_per_client_isolation(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("alice")
        with pytest.raises(RateLimitedError):
            limiter.check("alice")
        limiter.check("bob")  # bob has his own bucket

    def test_refusal_carries_retry_after(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=1.0, clock=clock)
        limiter.check("c")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.check("c")
        assert excinfo.value.retry_after_seconds == pytest.approx(0.5)

    def test_anonymous_traffic_shares_one_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check(None)
        with pytest.raises(RateLimitedError):
            limiter.check(None)

    def test_client_table_is_lru_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(
            rate=1.0, burst=1.0, max_clients=2, clock=clock
        )
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")  # evicts a
        assert limiter.client_count == 2
        # An evicted client starts over with a full bucket — permissive,
        # never punitive.
        limiter.check("a")


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        config = dict(
            failure_threshold=0.5,
            min_samples=4,
            window=8,
            cooldown_seconds=5.0,
            clock=clock,
        )
        config.update(overrides)
        return CircuitBreaker(**config)

    def test_trips_on_failure_rate(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after_seconds == pytest.approx(5.0)

    def test_below_min_samples_never_trips(self):
        clock = FakeClock()
        breaker = self._breaker(clock, min_samples=10)
        for _ in range(5):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)
        breaker.check()  # the probe is admitted
        assert breaker.state == HALF_OPEN
        # Only one probe at a time.
        with pytest.raises(CircuitOpenError):
            breaker.check()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.check()  # closed again: admits freely

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.check()
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check()
        # The cooldown restarted at the probe failure.
        clock.advance(5.0)
        breaker.check()
        assert breaker.state == HALF_OPEN

    def test_success_after_trip_clears_window(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.check()
        breaker.record_success()
        # The old failures are forgotten: it takes a fresh spike to trip.
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestAdmissionController:
    def test_defaults_admit_everything(self):
        controller = AdmissionController()
        decision = controller.admit(None, Priority.BATCH, enqueue_items=999)
        assert decision.client_id == "anonymous"
        assert decision.priority is Priority.BATCH

    def test_sheds_before_queueing(self):
        controller = AdmissionController(max_queue_depth=4)
        controller.admit(queue_depth=3, enqueue_items=1)
        with pytest.raises(QueueFullError):
            controller.admit(queue_depth=3, enqueue_items=2)

    def test_sync_requests_never_shed_on_depth(self):
        controller = AdmissionController(max_queue_depth=1)
        # enqueue_items=0: runs in the caller's thread, no queue impact.
        controller.admit(queue_depth=50, enqueue_items=0)

    def test_shed_retry_after_tracks_backlog_and_p95(self):
        controller = AdmissionController(max_queue_depth=2)
        with pytest.raises(QueueFullError) as excinfo:
            controller.admit(
                queue_depth=8, enqueue_items=1, workers=2, p95_seconds=1.0
            )
        # 8 queued / 2 workers * 1.0s p95 = 4 seconds.
        assert excinfo.value.retry_after_seconds == pytest.approx(4.0)

    def test_shed_retry_after_is_clamped(self):
        controller = AdmissionController(
            max_queue_depth=1, max_retry_after_seconds=10.0
        )
        with pytest.raises(QueueFullError) as excinfo:
            controller.admit(
                queue_depth=1000, enqueue_items=1, workers=1, p95_seconds=60.0
            )
        assert excinfo.value.retry_after_seconds == 10.0

    def test_breaker_checked_before_rate_limit(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=0.5, min_samples=2, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        controller = AdmissionController(
            rate_limiter=RateLimiter(rate=100.0, clock=clock), breaker=breaker
        )
        with pytest.raises(CircuitOpenError):
            controller.admit("alice")

    def test_describe_is_json_ready(self):
        controller = AdmissionController(
            rate_limiter=RateLimiter(rate=5.0, burst=10.0),
            max_queue_depth=32,
            breaker=CircuitBreaker(),
        )
        description = controller.describe()
        assert description == {
            "rate_limit_per_client": 5.0,
            "rate_burst": 10.0,
            "max_queue_depth": 32,
            "circuit_breaker": CLOSED,
        }
