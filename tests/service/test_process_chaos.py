"""Chaos suite for the process tier: workers die mid-job, for real.

``FaultPlan.kill_rate`` makes the pool SIGKILL the leased worker after
the task is written to its pipe — the recv sees EOF, so every assertion
below exercises the true death-detection path, not a simulation. The
contract under test: a dead worker fails only the task it was leased
for, siblings keep serving, the pool respawns the slot, and the breaker
treats a dead process exactly like an in-process worker crash.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.errors import CircuitOpenError
from repro.service.admission import AdmissionController, CircuitBreaker
from repro.service.faults import NO_FAULTS, FaultInjector, FaultPlan
from repro.service.process import ProcessExecutor, WorkerProcessDied
from repro.service.scheduler import ExplanationService
from tests.core.test_search_equivalence import _corpus

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-tier tests need the fork start method",
)

QUERY = "covid outbreak hospital"


def _engine() -> CredenceEngine:
    return CredenceEngine(_corpus(), EngineConfig(ranker="bm25", seed=5))


def _request(engine: CredenceEngine) -> ExplainRequest:
    return ExplainRequest(QUERY, engine.rank(QUERY, 5).doc_ids[0], k=5)


@requires_fork
class TestWorkerDeath:
    def test_killed_worker_fails_only_its_lease(self):
        engine = _engine()
        faults = FaultInjector(FaultPlan(kill_rate=1.0))
        executor = ProcessExecutor(engine, workers=2, faults=faults)
        request = _request(engine)
        try:
            with pytest.raises(WorkerProcessDied, match="died mid-task"):
                executor.explain(request)
            assert faults.counts()["process/kill"] == 1

            # The injector decided once; disarm it and the pool is whole:
            # the dead slot was respawned, the sibling never noticed.
            executor.set_faults(NO_FAULTS)
            pool = executor._pool
            assert pool.stats()["worker_respawns"] == 1
            assert pool.stats()["live_workers"] == 2
            for _ in range(4):
                assert executor.explain(request).error is None
            assert pool.stats()["worker_respawns"] == 1
        finally:
            executor.shutdown()

    def test_respawned_worker_produces_identical_results(self):
        engine = _engine()
        faults = FaultInjector(FaultPlan(kill_rate=1.0))
        executor = ProcessExecutor(engine, workers=1, faults=faults)
        request = _request(engine)
        try:
            with pytest.raises(WorkerProcessDied):
                executor.explain(request)
            executor.set_faults(NO_FAULTS)
            remote = executor.explain(request)
        finally:
            executor.shutdown()
        local = _engine().explain(request).to_dict()
        remote = remote.to_dict()
        local.pop("elapsed_seconds"), remote.pop("elapsed_seconds")
        assert remote == local


@requires_fork
class TestServiceDegradation:
    """Through the full service: jobs degrade, metrics tell the truth."""

    def _service(self, engine, kill_rate: float, breaker=None):
        service = ExplanationService(
            engine,
            workers=1,
            admission=(
                AdmissionController(breaker=breaker) if breaker else None
            ),
            faults=FaultInjector(FaultPlan(kill_rate=kill_rate)),
        )
        service.configure_executor("process", workers=1)
        return service

    def test_job_fails_cleanly_with_the_death_envelope(self):
        engine = _engine()
        service = self._service(engine, kill_rate=1.0)
        try:
            job = service.submit([_request(engine)])
            assert job.wait(timeout=60)
            response = job.responses[0]
            assert response.error is not None
            assert response.error.startswith("WorkerProcessDied:")
            assert "died mid-task" in response.error
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["items_failed"] == 1
            assert snapshot["counters"]["faults_injected"] == 1
            assert snapshot["faults"] == {"process/kill": 1}
            assert snapshot["executor"]["worker_respawns"] == 1
        finally:
            service.shutdown()

    def test_sibling_items_survive_one_death(self):
        engine = _engine()
        service = self._service(engine, kill_rate=0.0)
        # Distinct targets per phase: the result store would otherwise
        # answer repeats without ever dispatching to a worker.
        targets = engine.rank(QUERY, 5).doc_ids[:4]
        requests = [ExplainRequest(QUERY, doc_id, k=5) for doc_id in targets]
        try:
            # Warm the pool, then arm a one-kill plan: the next dispatch
            # dies, every dispatch after the disarm below succeeds.
            assert service.run_batch([requests[0]])[0].error is None
            service.faults = FaultInjector(FaultPlan(kill_rate=1.0))
            service.executor.set_faults(service.faults)
            job = service.submit([requests[1]])
            assert job.wait(timeout=60)
            assert job.responses[0].error is not None
            service.faults = NO_FAULTS
            service.executor.set_faults(NO_FAULTS)
            survivors = service.run_batch(requests[1:])
            assert [r.error for r in survivors] == [None, None, None]
            assert service.metrics_snapshot()["executor"]["worker_respawns"] == 1
        finally:
            service.shutdown()

    def test_breaker_semantics_match_the_thread_tier(self):
        """A dead process is a sick service: it must feed the breaker
        exactly like an in-process worker crash does."""

        def trip(service: ExplanationService) -> None:
            engine = service.engine
            request = _request(engine)
            for _ in range(2):
                job = service.submit([request])
                assert job.wait(timeout=60)
                assert job.responses[0].error is not None
            with pytest.raises(CircuitOpenError):
                service.submit([request])

        breaker_kwargs = dict(
            failure_threshold=0.5, min_samples=2, cooldown_seconds=60.0
        )
        process_service = self._service(
            _engine(), kill_rate=1.0, breaker=CircuitBreaker(**breaker_kwargs)
        )
        try:
            trip(process_service)
        finally:
            process_service.shutdown()

        thread_service = ExplanationService(
            _engine(),
            workers=1,
            admission=AdmissionController(
                breaker=CircuitBreaker(**breaker_kwargs)
            ),
            faults=FaultInjector(FaultPlan(crash_rate=1.0)),
        )
        try:
            trip(thread_service)
        finally:
            thread_service.shutdown()

    def test_remote_repro_errors_do_not_trip_the_breaker(self):
        engine = _engine()
        service = self._service(
            engine,
            kill_rate=0.0,
            breaker=CircuitBreaker(
                failure_threshold=0.5, min_samples=2, cooldown_seconds=60.0
            ),
        )
        try:
            bad = ExplainRequest(QUERY, "no-such-document", k=5)
            responses = service.run_batch([bad, bad, bad])
            assert all(r.error is not None for r in responses)
            assert all(r.error.startswith("RankingError:") for r in responses)
            # bad requests are not a sick worker: admission still open
            job = service.submit([_request(engine)])
            assert job.wait(timeout=60)
            assert job.responses[0].error is None
        finally:
            service.shutdown()
