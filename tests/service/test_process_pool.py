"""Unit tests for the process-backed execution tier.

Covers the pool mechanics the equivalence suite takes for granted:
init-once worker lifecycle, lease dispatch, both error channels, the
stale-snapshot refresh, spawn-safety of the worker spec, and the
pinned ``describe()`` schema. Worker *death* is exercised separately in
``test_process_chaos.py``.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.errors import ConfigurationError, PoolShutdownError, RankingError
from repro.service.process import (
    ProcessExecutor,
    ProcessWorkerPool,
    RemoteReproError,
    WorkerSpec,
    rehydrate_repro_error,
    analysis_pool,
    default_start_method,
    thread_executor_block,
)
from repro.text.analyzer import default_analyzer
from tests.core.test_search_equivalence import _corpus

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-tier tests need the fork start method",
)
requires_spawn = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable",
)

QUERY = "covid outbreak hospital"


def _strip(payload: dict) -> dict:
    cleaned = dict(payload)
    cleaned.pop("elapsed_seconds", None)
    return cleaned


def _engine() -> CredenceEngine:
    return CredenceEngine(_corpus(), EngineConfig(ranker="bm25", seed=5))


class TestWorkerSpec:
    def test_exactly_one_payload_required(self):
        with pytest.raises(ConfigurationError):
            WorkerSpec()
        with pytest.raises(ConfigurationError):
            WorkerSpec(index_path="x", analyzer_config={"lowercase": True})

    def test_spec_is_picklable(self):
        import pickle

        spec = WorkerSpec(
            index_path="/tmp/x", engine_config=EngineConfig(ranker="bm25")
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_default_start_method_is_available(self):
        assert default_start_method() in multiprocessing.get_all_start_methods()

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="not available"):
            ProcessWorkerPool(
                WorkerSpec(analyzer_config=default_analyzer().to_config()),
                workers=1,
                start_method="teleport",
            )


@requires_fork
class TestAnalysisPool:
    def test_remote_analysis_matches_local(self):
        analyzer = default_analyzer()
        bodies = [doc.body for doc in _corpus()[:6]]
        with analysis_pool(analyzer, workers=2) as pool:
            remote = pool.analyze(bodies)
        assert remote == [analyzer.analyze(body) for body in bodies]

    def test_partitions_preserve_order(self):
        analyzer = default_analyzer()
        bodies = [doc.body for doc in _corpus()[:6]]
        chunks = [bodies[:2], bodies[2:4], bodies[4:]]
        with analysis_pool(analyzer, workers=2) as pool:
            results = pool.analyze_partitions(chunks)
        flattened = [terms for chunk in results for terms in chunk]
        assert flattened == [analyzer.analyze(body) for body in bodies]

    def test_workers_initialize_once_across_dispatches(self):
        analyzer = default_analyzer()
        with analysis_pool(analyzer, workers=2) as pool:
            pool.analyze(["warm up the pool"])
            pids = sorted(w.process.pid for w in pool._workers)
            for _ in range(5):
                pool.analyze(["one more body"])
            assert sorted(w.process.pid for w in pool._workers) == pids
            assert pool.stats()["tasks_dispatched"] == 6

    def test_unknown_op_is_a_fault_not_a_death(self):
        analyzer = default_analyzer()
        with analysis_pool(analyzer, workers=1) as pool:
            status, payload, _ = pool.call(("sing", []))
            assert status == "fault"
            assert "unknown worker op" in payload
            # the same worker still serves the next task
            assert pool.analyze(["still alive"]) == [
                analyzer.analyze("still alive")
            ]
            assert pool.stats()["worker_respawns"] == 0

    def test_dispatch_after_shutdown_raises(self):
        pool = ProcessWorkerPool(
            WorkerSpec(analyzer_config=default_analyzer().to_config()),
            workers=1,
        )
        pool.analyze(["x"])
        pool.shutdown()
        with pytest.raises(PoolShutdownError):
            pool.analyze(["y"])


@requires_spawn
class TestSpawnSafety:
    """The spec-built worker must behave identically under ``spawn``."""

    def test_spawned_analysis_matches_local(self):
        analyzer = default_analyzer()
        bodies = [doc.body for doc in _corpus()[:3]]
        with analysis_pool(analyzer, workers=1, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            assert pool.analyze(bodies) == [
                analyzer.analyze(body) for body in bodies
            ]


@requires_fork
class TestProcessExecutor:
    @pytest.fixture()
    def executor(self):
        engine = _engine()
        executor = ProcessExecutor(engine, workers=2)
        yield engine, executor
        executor.shutdown()

    def test_explain_matches_sequential(self, executor):
        engine, executor = executor
        target = engine.rank(QUERY, 5).doc_ids[0]
        request = ExplainRequest(QUERY, target, k=5)
        remote = executor.explain(request)
        local = _engine().explain(request)
        assert _strip(remote.to_dict()) == _strip(local.to_dict())

    def test_repro_errors_rehydrate_to_the_local_class(self, executor):
        engine, executor = executor
        request = ExplainRequest(QUERY, "no-such-document", k=5)
        # A worker-side RankingError must be catchable as RankingError
        # here — the process tier is transparent to REST/CLI handlers.
        with pytest.raises(RankingError) as excinfo:
            executor.explain(request)
        try:
            _engine().explain(request)
        except Exception as local:  # noqa: BLE001 - comparing envelopes
            assert excinfo.value.error_envelope == (
                f"{type(local).__name__}: {local}"
            )
            assert str(excinfo.value) == str(local)

    def test_unknown_envelopes_fall_back_to_remote_repro_error(self):
        error = rehydrate_repro_error("ExoticError: something odd")
        assert isinstance(error, RemoteReproError)
        assert error.error_envelope == "ExoticError: something odd"
        bare = rehydrate_repro_error("no separator at all")
        assert isinstance(bare, RemoteReproError)

    def test_formatting_subclasses_rehydrate_to_their_base(self):
        envelope = "UnknownStrategyError: unknown strategy 'nope'"
        error = rehydrate_repro_error(envelope)
        assert type(error) is ConfigurationError
        assert str(error) == "unknown strategy 'nope'"
        assert error.error_envelope == envelope

    def test_corpus_mutation_refreshes_the_snapshot(self, executor):
        engine, executor = executor
        target = engine.rank(QUERY, 5).doc_ids[0]
        request = ExplainRequest(QUERY, target, k=5)
        executor.explain(request)
        assert executor.describe()["index_snapshots"] == 1
        first_pool = executor._pool

        documents = _corpus()
        extra = type(documents[0])(
            "doc-new", "Covid outbreak strained the hospital wards anew."
        )
        engine.add_documents([extra])

        remote = executor.explain(request)
        assert executor._pool is not first_pool  # stale pool retired
        assert first_pool.is_shutdown
        assert executor.describe()["index_snapshots"] == 2

        fresh = CredenceEngine(
            documents + [extra], EngineConfig(ranker="bm25", seed=5)
        )
        assert _strip(remote.to_dict()) == _strip(
            fresh.explain(request).to_dict()
        )

    def test_describe_schema(self, executor):
        engine, executor = executor
        block = executor.describe()
        assert set(block) == {
            "kind",
            "workers",
            "start_method",
            "tasks_dispatched",
            "worker_respawns",
            "index_snapshots",
        }
        assert block["kind"] == "process"
        assert block["workers"] == 2
        assert block["start_method"] in multiprocessing.get_all_start_methods()

    def test_thread_block_is_shape_identical(self):
        thread = thread_executor_block(4)
        assert set(thread) == {
            "kind",
            "workers",
            "start_method",
            "tasks_dispatched",
            "worker_respawns",
            "index_snapshots",
        }
        assert thread["kind"] == "thread"
        assert thread["start_method"] is None

    def test_explicit_ranker_refused_at_construction(self):
        from repro.ranking.bm25 import Bm25Ranker

        engine = _engine()
        explicit = CredenceEngine(
            _corpus(),
            EngineConfig(ranker="bm25", seed=5),
            ranker=Bm25Ranker(engine.index),
        )
        with pytest.raises(ConfigurationError, match="explicit"):
            ProcessExecutor(explicit, workers=1)


@requires_fork
class TestPackedIndexZeroCopyPath:
    def test_packed_engine_reuses_the_manifest(self, tmp_path):
        """An engine attached to a v3 packed index ships the manifest
        path it was attached from — no snapshot is ever written."""
        from repro.index.storage import load_index, save_index

        engine = _engine()
        manifest = tmp_path / "index.v3"
        save_index(engine.index, manifest, format="v3")
        packed = CredenceEngine.from_index(
            load_index(manifest), config=EngineConfig(ranker="bm25", seed=5)
        )
        executor = ProcessExecutor(packed, workers=1)
        try:
            target = packed.rank(QUERY, 5).doc_ids[0]
            remote = executor.explain(ExplainRequest(QUERY, target, k=5))
            assert executor.describe()["index_snapshots"] == 0
            assert executor._tempdir is None
            local = packed.explain(ExplainRequest(QUERY, target, k=5))
            assert _strip(remote.to_dict()) == _strip(local.to_dict())
        finally:
            executor.shutdown()


@requires_fork
class TestTraceGrafting:
    def test_remote_spans_land_in_the_parent_trace(self):
        from repro.obs import Tracer

        engine = _engine()
        executor = ProcessExecutor(engine, workers=1)
        tracer = Tracer(ring_capacity=4)
        try:
            target = engine.rank(QUERY, 5).doc_ids[0]
            with tracer.trace("test/process") as trace:
                executor.explain(ExplainRequest(QUERY, target, k=5))
            names = [span.name for span in trace.spans]
            assert "process/dispatch" in names
            dispatch = next(
                span for span in trace.spans if span.name == "process/dispatch"
            )
            # the worker's spans graft in as children of the dispatch
            grafted = [
                span for span in trace.spans if span.parent_id == dispatch.span_id
            ]
            assert grafted, names
            for span in grafted:
                assert span.started_ms >= dispatch.started_ms - 1.0
        finally:
            executor.shutdown()

    def test_no_trace_means_no_wire_payload(self):
        engine = _engine()
        executor = ProcessExecutor(engine, workers=1)
        try:
            target = engine.rank(QUERY, 5).doc_ids[0]
            response = executor.explain(ExplainRequest(QUERY, target, k=5))
            assert response.error is None
        finally:
            executor.shutdown()
