"""Regression tests for concurrent engine use.

Before the service layer, ``ScoreCache``, the index's memoized
``stats()``, the lexical ranker's collection view, and the registry's
lazy explainer memoization were all mutated without locks while
``ApiServer`` is a threading server. These tests hammer those paths
from many threads and require (a) no exceptions and (b) results
identical to a single-threaded reference run.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.core.registry import ExplainerRegistry

THREADS = 8
ROUNDS = 5


def _requests() -> list[ExplainRequest]:
    return [
        ExplainRequest("covid outbreak", "d5", k=5),
        ExplainRequest(
            "covid outbreak", "d5", strategy="document/greedy", k=5
        ),
        ExplainRequest(
            "covid outbreak",
            "d5",
            strategy="query/augmentation",
            n=2,
            k=5,
            threshold=2,
        ),
    ]


def _canonical(response) -> str:
    payload = response.to_dict()
    payload.pop("elapsed_seconds", None)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture()
def engine(tiny_docs) -> CredenceEngine:
    return CredenceEngine(
        tiny_docs, EngineConfig(ranker="bm25", seed=5, cache_scores=True)
    )


class TestConcurrentExplain:
    def test_hammer_explain_from_many_threads(self, engine, tiny_docs):
        """The headline regression: concurrent explain() with the score
        cache enabled must neither crash nor diverge."""
        reference = {
            request.strategy: _canonical(engine.explain(request))
            for request in _requests()
        }
        errors: list[BaseException] = []
        mismatches: list[str] = []
        barrier = threading.Barrier(THREADS, timeout=10)

        def hammer():
            try:
                barrier.wait()  # maximise interleaving
                for _ in range(ROUNDS):
                    for request in _requests():
                        got = _canonical(engine.explain(request))
                        if got != reference[request.strategy]:
                            mismatches.append(request.strategy)
            except BaseException as error:  # noqa: BLE001 - collect, then fail
                errors.append(error)

        threads = [
            threading.Thread(target=hammer) for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert not mismatches

    def test_concurrent_stats_during_mutation(self, tiny_docs):
        """stats()/collection views stay coherent while the corpus mutates."""
        from repro.index.document import Document

        engine = CredenceEngine(
            tiny_docs, EngineConfig(ranker="bm25", seed=5)
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    stats = engine.index.stats()
                    assert stats.document_count >= len(tiny_docs)
                    engine.ranker.inner.collection_view()
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for round_number in range(20):
                doc_id = f"extra-{round_number}"
                engine.index.add(
                    Document(doc_id, "An extra covid outbreak bulletin.")
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
        assert not errors, errors

    def test_registry_builds_one_explainer_per_strategy(self, engine):
        """Concurrent first requests must construct a single instance."""
        registry = ExplainerRegistry()
        built = []

        @registry.register("test/strategy")
        def _factory(engine_):
            built.append(object())

            class _Explainer:
                strategy = "test/strategy"

                def explain(self, request):
                    raise NotImplementedError

            return _Explainer()

        barrier = threading.Barrier(THREADS, timeout=10)
        instances = []

        def fetch():
            barrier.wait()
            instances.append(registry.get(engine, "test/strategy"))

        threads = [threading.Thread(target=fetch) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(built) == 1
        assert len(set(map(id, instances))) == 1

    def test_concurrent_service_accessor_builds_one_service(self, engine):
        barrier = threading.Barrier(THREADS, timeout=10)
        services = []

        def fetch():
            barrier.wait()
            services.append(engine.service())

        threads = [threading.Thread(target=fetch) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(set(map(id, services))) == 1
        engine.service().shutdown()
