"""Schema-pinning tests for the metrics surface.

``GET /metrics`` is a dashboard contract: the exact key sets below are
asserted with ``==`` (not ``<=``) so adding, renaming, or dropping a
field fails loudly here and forces a deliberate docs + dashboard
update. If you extend the snapshot, extend these sets in the same
commit.
"""

from __future__ import annotations

from repro.core.explain import ExplainRequest, ExplainResponse
from repro.service.admission import AdmissionController, Priority
from repro.service.metrics import COUNTER_NAMES, ServiceMetrics
from repro.service.scheduler import ExplanationService

EXPECTED_COUNTERS = {
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_cancelled",
    "items_executed",
    "items_failed",
    "items_skipped",
    "requests_admitted",
    "requests_rate_limited",
    "requests_shed",
    "requests_rejected_open_circuit",
    "requests_rejected_draining",
    "deadline_exceeded",
    "faults_injected",
}

LATENCY_SUMMARY_KEYS = {
    "count",
    "mean_seconds",
    "p50_seconds",
    "p95_seconds",
    "p99_seconds",
}

STORE_KEYS = {
    "entries",
    "max_entries",
    "ttl_seconds",
    "hits",
    "misses",
    "hit_rate",
    "evictions",
    "expirations",
}

SERVICE_SNAPSHOT_KEYS = {
    "counters",
    "item_latency",
    "latency_by_priority",
    "uptime_seconds",
    "snapshot_seq",
    "store",
    "cache_hit_rate",
    "queue_depth",
    "workers",
    "admission",
    "draining",
    "faults",
    "jobs_tracked",
    "executor",
}

ADMISSION_KEYS = {
    "rate_limit_per_client",
    "rate_burst",
    "max_queue_depth",
    "circuit_breaker",
}

#: The executor block is shape-identical across both execution tiers;
#: the process-only counters read zero on the thread tier.
EXECUTOR_KEYS = {
    "kind",
    "workers",
    "start_method",
    "tasks_dispatched",
    "worker_respawns",
    "index_snapshots",
}


class _StubIndex:
    def __init__(self):
        self.version = 0


class _StubRanker:
    name = "Stub"


class _StubEngine:
    def __init__(self):
        self.index = _StubIndex()
        self.ranker = _StubRanker()

    def explain(self, request: ExplainRequest) -> ExplainResponse:
        return ExplainResponse(
            strategy=request.strategy,
            query=request.query,
            doc_id=request.doc_id,
        )


class TestMetricsSnapshot:
    def test_counter_names_are_pinned(self):
        assert set(COUNTER_NAMES) == EXPECTED_COUNTERS
        assert len(COUNTER_NAMES) == len(EXPECTED_COUNTERS)  # no dupes

    def test_snapshot_schema(self):
        snapshot = ServiceMetrics().snapshot()
        assert set(snapshot) == {
            "counters",
            "item_latency",
            "latency_by_priority",
            "uptime_seconds",
            "snapshot_seq",
        }
        assert set(snapshot["counters"]) == EXPECTED_COUNTERS
        assert all(count == 0 for count in snapshot["counters"].values())
        assert set(snapshot["item_latency"]) == LATENCY_SUMMARY_KEYS

    def test_uptime_and_snapshot_seq_are_monotonic(self):
        metrics = ServiceMetrics()
        first = metrics.snapshot()
        second = metrics.snapshot()
        assert first["snapshot_seq"] == 1
        assert second["snapshot_seq"] == 2
        assert second["uptime_seconds"] >= first["uptime_seconds"] >= 0.0

    def test_per_priority_windows_keyed_by_label(self):
        metrics = ServiceMetrics()
        metrics.record_latency(0.2, priority=Priority.INTERACTIVE)
        by_priority = metrics.snapshot()["latency_by_priority"]
        assert set(by_priority) == {"interactive", "batch"}
        for summary in by_priority.values():
            assert set(summary) == LATENCY_SUMMARY_KEYS
        assert by_priority["interactive"]["count"] == 1
        assert by_priority["batch"]["count"] == 0


class TestServiceSnapshotSchema:
    def test_full_service_snapshot_schema(self):
        service = ExplanationService(
            _StubEngine(), workers=1, admission=AdmissionController()
        )
        try:
            snapshot = service.metrics_snapshot()
            assert set(snapshot) == SERVICE_SNAPSHOT_KEYS
            assert set(snapshot["counters"]) == EXPECTED_COUNTERS
            assert set(snapshot["store"]) == STORE_KEYS
            assert set(snapshot["admission"]) == ADMISSION_KEYS
            assert snapshot["draining"] is False
            assert snapshot["faults"] == {}
            assert snapshot["workers"] == 1
            assert snapshot["queue_depth"] == 0
        finally:
            service.shutdown()

    def test_admission_is_null_when_not_configured(self):
        service = ExplanationService(_StubEngine(), workers=1)
        try:
            assert service.metrics_snapshot()["admission"] is None
        finally:
            service.shutdown()

    def test_executor_block_on_the_default_thread_tier(self):
        service = ExplanationService(_StubEngine(), workers=3)
        try:
            block = service.metrics_snapshot()["executor"]
            assert set(block) == EXECUTOR_KEYS
            assert block == {
                "kind": "thread",
                "workers": 3,
                "start_method": None,
                "tasks_dispatched": 0,
                "worker_respawns": 0,
                "index_snapshots": 0,
            }
        finally:
            service.shutdown()

    def test_executor_block_on_the_process_tier(self):
        service = ExplanationService(_StubEngine(), workers=2)
        try:
            service.configure_executor("process", workers=2)
            block = service.metrics_snapshot()["executor"]
            assert set(block) == EXECUTOR_KEYS
            assert block["kind"] == "process"
            assert block["workers"] == 2
            assert block["start_method"] is not None
        finally:
            service.shutdown()

    def test_switching_back_to_threads_restores_the_thread_block(self):
        service = ExplanationService(_StubEngine(), workers=2)
        try:
            service.configure_executor("process")
            service.configure_executor("thread")
            assert service.metrics_snapshot()["executor"]["kind"] == "thread"
            assert service.executor is None
        finally:
            service.shutdown()
