"""Unit tests for the bounded worker pool."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.service.workers import WorkerPool


class TestLifecycle:
    def test_threads_start_lazily(self):
        pool = WorkerPool(workers=2)
        assert not pool.started
        done = threading.Event()
        pool.submit(done.set)
        assert done.wait(5)
        assert pool.started
        pool.shutdown()

    def test_tasks_run_concurrently(self):
        pool = WorkerPool(workers=4)
        barrier = threading.Barrier(4, timeout=5)
        results = []

        def task():
            barrier.wait()  # only passes if 4 workers run at once
            results.append(threading.current_thread().name)

        for _ in range(4):
            pool.submit(task)
        pool.shutdown(wait=True)
        assert len(results) == 4
        assert len(set(results)) == 4

    def test_graceful_shutdown_drains_queued_tasks(self):
        pool = WorkerPool(workers=1)
        executed = []
        gate = threading.Event()
        pool.submit(lambda: gate.wait(5))
        for position in range(5):
            pool.submit(lambda position=position: executed.append(position))
        gate.set()
        pool.shutdown(wait=True)
        assert executed == [0, 1, 2, 3, 4]

    def test_shutdown_without_drain_discards_queued_tasks(self):
        pool = WorkerPool(workers=1)
        executed = []
        gate = threading.Event()
        pool.submit(lambda: gate.wait(5))
        time.sleep(0.05)  # let the worker block on the gate
        pool.submit(lambda: executed.append("queued"))
        # Release the gate only after shutdown has discarded the queue.
        threading.Timer(0.1, gate.set).start()
        pool.shutdown(wait=True, drain=False)
        assert executed == []

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(workers=1)
        pool.shutdown()
        with pytest.raises(ConfigurationError):
            pool.submit(lambda: None)

    def test_shutdown_twice_is_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.submit(lambda: None)
        pool.shutdown()
        pool.shutdown()
        assert pool.is_shutdown


class TestRobustness:
    def test_worker_survives_a_raising_task(self):
        pool = WorkerPool(workers=1)
        done = threading.Event()

        def bad():
            raise RuntimeError("task bug")

        pool.submit(bad)
        pool.submit(done.set)
        assert done.wait(5)
        pool.shutdown()

    def test_queue_depth_reports_backlog(self):
        pool = WorkerPool(workers=1)
        gate = threading.Event()
        pool.submit(lambda: gate.wait(5))
        time.sleep(0.05)  # let the worker pick up the blocking task
        for _ in range(3):
            pool.submit(lambda: None)
        assert pool.queue_depth == 3
        gate.set()
        pool.shutdown(wait=True)
        assert pool.queue_depth == 0

    def test_worker_count_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(workers=0)
