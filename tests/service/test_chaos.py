"""Chaos suite: every degradation path is a *tested* state, not a hope.

Faults are injected deterministically (seeded streams, see
:mod:`repro.service.faults`) into a stub engine, so each test asserts an
exact outcome: worker crashes fail exactly the struck job while
siblings complete; ranker errors stay per-item; drain under saturation
loses zero acknowledged jobs; a latency spike degrades a deadlined
request into a flagged, never-cached partial; wall-clock skew cannot
bend a deadline.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.explain import ExplainRequest, ExplainResponse
from repro.core.types import ExplanationSet
from repro.errors import CircuitOpenError, ServiceDrainingError
from repro.service.admission import AdmissionController, CircuitBreaker
from repro.service.deadlines import Deadline, DeadlinePolicy
from repro.service.faults import (
    NO_FAULTS,
    SITE_RANKER,
    SITE_WORKER,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    InjectedRankerError,
)
from repro.service.jobs import JobStatus
from repro.service.scheduler import ExplanationService


def _request(doc_id: str = "d1", **overrides) -> ExplainRequest:
    fields = {"query": "covid outbreak", "doc_id": doc_id, "k": 5}
    fields.update(overrides)
    return ExplainRequest(**fields)


class _StubIndex:
    def __init__(self):
        self.version = 0


class _StubRanker:
    name = "Stub"


class StubEngine:
    """Deadline-aware stub: a request whose effective deadline has been
    squeezed to (or near) the floor comes back as a flagged partial —
    exactly the anytime search kernel's degraded outcome."""

    def __init__(self, partial_below_ms: float = 5.0):
        self.index = _StubIndex()
        self.ranker = _StubRanker()
        self.partial_below_ms = partial_below_ms
        self.calls = 0

    def explain(self, request: ExplainRequest) -> ExplainResponse:
        self.calls += 1
        truncated = (
            request.deadline_ms is not None
            and request.deadline_ms <= self.partial_below_ms
        )
        return ExplainResponse(
            strategy=request.strategy,
            query=request.query,
            doc_id=request.doc_id,
            result=ExplanationSet(
                deadline_exceeded=truncated, search_strategy="anytime"
            ),
        )


def _service(**overrides) -> ExplanationService:
    config = dict(engine=StubEngine(), workers=2)
    config.update(overrides)
    engine = config.pop("engine")
    return ExplanationService(engine, **config)


def _seed_firing_at(site: str, kind: str, position: int = 0) -> int:
    """A seed whose ``position``-th draw at (site, kind) fires at
    rate 0.5 — found by scanning, so tests stay exact, not flaky."""
    import random

    for seed in range(1000):
        stream = random.Random(f"{seed}/{site}/{kind}")
        draws = [stream.random() for _ in range(position + 1)]
        if all(d >= 0.5 for d in draws[:-1]) and draws[-1] < 0.5:
            return seed
    raise AssertionError("no such seed in range")


class TestDeterminism:
    def test_same_plan_same_outcomes(self):
        plan = FaultPlan(seed=7, crash_rate=0.3)
        first = [
            self._fires(FaultInjector(plan), SITE_WORKER) for _ in range(20)
        ]
        second = [
            self._fires(FaultInjector(plan), SITE_WORKER) for _ in range(20)
        ]
        assert first == second  # a fresh injector replays identically

    @staticmethod
    def _fires(injector: FaultInjector, site: str) -> bool:
        try:
            injector.maybe_crash(site)
        except InjectedFault:
            return True
        return False

    def test_sites_have_independent_streams(self):
        plan = FaultPlan(seed=7, crash_rate=0.5, ranker_error_rate=0.5)
        worker_fired = []
        ranker_fired = []
        for _ in range(30):
            injector = FaultInjector(plan)
            worker_fired.append(self._fires(injector, SITE_WORKER))
        for _ in range(30):
            injector = FaultInjector(plan)
            try:
                injector.maybe_crash(SITE_RANKER)
                ranker_fired.append(False)
            except InjectedRankerError:
                ranker_fired.append(True)
        # Same seed, different sites: not forced to the same pattern.
        assert worker_fired[0] in (True, False)  # determinism covered above
        assert NO_FAULTS.enabled is False


class TestWorkerCrashIsolation:
    def test_crash_fails_job_with_cause_siblings_unaffected(self):
        # First worker-site draw fires: the first executed item crashes.
        seed = _seed_firing_at(SITE_WORKER, "crash", position=0)
        faults = FaultInjector(FaultPlan(seed=seed, crash_rate=0.5))
        service = _service(workers=1, faults=faults)

        struck = service.submit(_request("crash-doc"))
        struck.wait(5.0)
        assert struck.status is JobStatus.FAILED
        assert "InjectedFault" in struck.error
        assert faults.counts()[f"{SITE_WORKER}/crash"] == 1
        # The struck item still carries an error response.
        assert struck.responses[0] is not None
        assert not struck.responses[0].ok

        # Later jobs (draws that don't fire) complete normally.
        sibling = service.submit(_request("sibling-doc"))
        sibling.wait(5.0)
        assert sibling.status is JobStatus.DONE
        assert sibling.responses[0].ok
        assert service.metrics.counter("jobs_failed") == 1
        assert service.metrics.counter("jobs_completed") == 1
        assert service.metrics.counter("faults_injected") >= 1
        service.shutdown()

    def test_crashes_feed_the_circuit_breaker(self):
        seed = _seed_firing_at(SITE_WORKER, "crash", position=0)
        breaker = CircuitBreaker(
            failure_threshold=1.0, min_samples=1, cooldown_seconds=60.0
        )
        service = _service(
            workers=1,
            faults=FaultInjector(FaultPlan(seed=seed, crash_rate=0.5)),
            admission=AdmissionController(breaker=breaker),
        )
        job = service.submit(_request("crash-doc"))
        job.wait(5.0)
        assert job.status is JobStatus.FAILED
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            service.admit()
        assert service.metrics.counter("requests_rejected_open_circuit") == 1
        service.shutdown()


class TestRankerErrorChannel:
    def test_ranker_error_is_per_item_and_never_trips_breaker(self):
        seed = _seed_firing_at(SITE_RANKER, "crash", position=0)
        breaker = CircuitBreaker(failure_threshold=1.0, min_samples=1)
        service = _service(
            workers=1,
            faults=FaultInjector(FaultPlan(seed=seed, ranker_error_rate=0.5)),
            admission=AdmissionController(breaker=breaker),
        )
        job = service.submit(_request("ranker-doc"))
        job.wait(5.0)
        # A library error is a bad request, not a sick worker: the job
        # finishes DONE with a per-item error, and the breaker stays
        # closed.
        assert job.status is JobStatus.DONE
        assert not job.responses[0].ok
        assert "InjectedRankerError" in job.responses[0].error
        assert breaker.state == "closed"
        service.admit()  # still admitting
        service.shutdown()


class TestDrainUnderSaturation:
    def test_zero_lost_acks(self):
        release = threading.Event()

        class SlowEngine(StubEngine):
            def explain(self, request):
                release.wait(5.0)
                return super().explain(request)

        service = _service(engine=SlowEngine(), workers=2)
        jobs = [
            service.submit(_request(f"doc-{i}"), client_id=f"c{i}")
            for i in range(8)
        ]

        drained = threading.Thread(
            target=service.drain, kwargs={"wait": True}, daemon=True
        )
        drained.start()
        # While draining, new work is refused with a clean typed error...
        with pytest.raises(ServiceDrainingError):
            service.submit(_request("late"))
        assert service.metrics.counter("requests_rejected_draining") == 1
        release.set()
        drained.join(10.0)
        assert not drained.is_alive()
        # ...and every job accepted before the drain reached a terminal
        # state with every item accounted: zero lost acks.
        for job in jobs:
            assert job.wait(5.0)
            assert job.status is JobStatus.DONE
            assert all(response is not None for response in job.responses)
        assert service.metrics.counter("jobs_completed") == len(jobs)
        assert service.draining
        snapshot = service.metrics_snapshot()
        assert snapshot["draining"] is True


class TestDeadlineUnderLatencySpike:
    def test_spike_degrades_to_flagged_partial_and_is_not_cached(self):
        engine = StubEngine(partial_below_ms=5.0)
        # Every call at the worker site sleeps 100ms — a 10x spike over
        # the 10ms deadline budget.
        faults = FaultInjector(
            FaultPlan(seed=0, latency_rate=1.0, latency_ms=100.0)
        )
        service = _service(
            engine=engine,
            faults=faults,
            deadline_policy=DeadlinePolicy(default_deadline_ms=10.0),
        )
        request = _request("spiked")
        response = service.explain(request)
        # The spike consumed the whole budget: the engine was handed the
        # floor deadline and returned the flagged best-effort partial.
        assert response.ok
        assert response.result.deadline_exceeded
        assert service.metrics.counter("deadline_exceeded") == 1
        assert faults.counts()[f"{SITE_WORKER}/latency"] == 1
        # Never cached: the repeat recomputes (and degrades again under
        # the still-active spike).
        service.explain(request)
        assert engine.calls == 2
        assert service.store.stats()["hits"] == 0
        service.shutdown()

    def test_unspiked_deadline_completes_and_caches(self):
        engine = StubEngine(partial_below_ms=5.0)
        service = _service(
            engine=engine,
            deadline_policy=DeadlinePolicy(default_deadline_ms=5_000.0),
        )
        request = _request("healthy")
        first = service.explain(request)
        assert first.ok and not first.result.deadline_exceeded
        service.explain(request)
        assert engine.calls == 1  # cached: same key, no deadline taint
        service.shutdown()


class TestClockSkewImmunity:
    def test_wall_clock_skew_does_not_bend_deadlines(self):
        # An NTP step of -1 hour shifts wall_clock()...
        faults = FaultInjector(FaultPlan(seed=0, clock_skew_ms=-3_600_000.0))
        import time as _time

        assert faults.wall_clock() < _time.time() - 3000
        # ...but deadlines ride the monotonic clock: remaining time is
        # unaffected by any wall-clock step.
        deadline = Deadline.after_ms(50.0)
        remaining_before = deadline.remaining_ms()
        assert 0.0 < remaining_before <= 50.0
        policy = DeadlinePolicy(default_deadline_ms=100.0)
        stamped = policy.start(_request())
        assert stamped.remaining_ms() <= 100.0
