"""Unit tests for the ExplainJob status machine and item protocol."""

from __future__ import annotations

import pytest

from repro.core.explain import ExplainRequest, ExplainResponse
from repro.errors import ConfigurationError
from repro.service.jobs import ExplainJob, JobStatus


def _request(doc_id: str = "d1") -> ExplainRequest:
    return ExplainRequest("covid", doc_id)


def _response(request: ExplainRequest, error: bool = False) -> ExplainResponse:
    if error:
        return ExplainResponse.from_error(request, ValueError("boom"), 0.0)
    return ExplainResponse(
        strategy=request.strategy, query=request.query, doc_id=request.doc_id
    )


class TestLifecycle:
    def test_initial_state(self):
        job = ExplainJob("job-1", [_request()])
        assert job.status is JobStatus.PENDING
        assert not job.status.terminal
        assert job.items_total == 1
        assert job.items_done == 0
        assert not job.wait(timeout=0.0)

    def test_start_finish_reaches_done(self):
        request = _request()
        job = ExplainJob("job-1", [request])
        assert job.start_item(0)
        assert job.status is JobStatus.RUNNING
        final = job.finish_item(0, _response(request))
        assert final is JobStatus.DONE
        assert job.status is JobStatus.DONE
        assert job.wait(timeout=0.0)
        assert job.duration_seconds is not None

    def test_only_final_item_returns_terminal_status(self):
        requests = [_request("d1"), _request("d2"), _request("d3")]
        job = ExplainJob("job-1", requests)
        for position in range(3):
            assert job.start_item(position)
        assert job.finish_item(0, _response(requests[0])) is None
        assert job.finish_item(1, _response(requests[1])) is None
        assert job.finish_item(2, _response(requests[2])) is JobStatus.DONE

    def test_item_error_does_not_fail_the_job(self):
        requests = [_request("d1"), _request("bad")]
        job = ExplainJob("job-1", requests)
        job.start_item(0)
        job.finish_item(0, _response(requests[0]))
        job.start_item(1)
        job.finish_item(1, _response(requests[1], error=True))
        assert job.status is JobStatus.DONE
        payload = job.to_dict()
        assert payload["items"] == ["done", "error"]

    def test_fatal_marks_job_failed(self):
        requests = [_request("d1"), _request("d2")]
        job = ExplainJob("job-1", requests)
        job.start_item(0)
        job.finish_item(0, _response(requests[0]))
        job.start_item(1)
        job.note_fatal(RuntimeError("unexpected"))
        final = job.finish_item(1, _response(requests[1], error=True))
        assert final is JobStatus.FAILED
        assert "unexpected" in job.error


class TestCancellation:
    def test_cancel_skips_unstarted_items(self):
        requests = [_request("d1"), _request("d2")]
        job = ExplainJob("job-1", requests)
        job.start_item(0)
        assert job.request_cancel()
        # the running item completes and keeps its result
        job.finish_item(0, _response(requests[0]))
        # the queued item is skipped when a worker reaches it
        assert not job.start_item(1)
        final = job.skip_item(1)
        assert final is JobStatus.CANCELLED
        payload = job.to_dict()
        assert payload["items"] == ["done", "skipped"]
        assert payload["items_skipped"] == 1
        assert payload["responses"][0] is not None
        assert payload["responses"][1] is None

    def test_cancel_on_terminal_job_is_refused(self):
        request = _request()
        job = ExplainJob("job-1", [request])
        job.start_item(0)
        job.finish_item(0, _response(request))
        assert not job.request_cancel()
        assert job.status is JobStatus.DONE

    def test_cancel_wins_over_fatal(self):
        request = _request()
        job = ExplainJob("job-1", [request])
        job.note_fatal(RuntimeError("boom"))
        job.request_cancel()
        assert not job.start_item(0)
        assert job.skip_item(0) is JobStatus.CANCELLED


class TestValidation:
    def test_empty_request_list_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplainJob("job-1", [])

    def test_non_request_items_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplainJob("job-1", [{"query": "covid", "doc_id": "d1"}])


class TestSerialisation:
    def test_to_dict_shape(self):
        request = _request()
        job = ExplainJob("job-7", [request])
        payload = job.to_dict()
        assert payload["job_id"] == "job-7"
        assert payload["status"] == "pending"
        assert payload["items"] == ["pending"]
        assert payload["responses"] == [None]
        assert payload["items_total"] == 1
        assert payload["cancel_requested"] is False

    def test_to_dict_without_responses(self):
        job = ExplainJob("job-7", [_request()])
        payload = job.to_dict(include_responses=False)
        assert "responses" not in payload
        assert payload["items"] == ["pending"]
