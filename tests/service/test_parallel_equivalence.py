"""Acceptance: parallel execution is byte-identical to the sequential path.

Runs the same request workload through sequential ``explain_batch``,
``explain_batch(parallel=4)``, and the async job path, and compares the
serialised payloads byte-for-byte (modulo wall-clock timing, which is
measurement, not result). The workload repeats requests so the parallel
paths also exercise the result store — cached responses must be the
same bytes too.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.datasets.covid import DEMO_QUERY, FAKE_NEWS_DOC_ID, covid_corpus


def _strip_timing(payload: dict) -> dict:
    cleaned = dict(payload)
    cleaned.pop("elapsed_seconds", None)
    return cleaned


def _canonical(responses) -> list[str]:
    return [
        json.dumps(_strip_timing(response.to_dict()), sort_keys=True)
        for response in responses
    ]


def _workload(doc_ids: list[str]) -> list[ExplainRequest]:
    requests = []
    for doc_id in doc_ids:
        requests.append(ExplainRequest(DEMO_QUERY, doc_id, k=10))
        requests.append(
            ExplainRequest(
                DEMO_QUERY,
                doc_id,
                strategy="query/augmentation",
                n=2,
                k=10,
                threshold=2,
            )
        )
        requests.append(
            ExplainRequest(DEMO_QUERY, doc_id, strategy="document/greedy", k=10)
        )
    # repeats: the parallel path answers these from the result store
    return requests + requests[: len(requests) // 2]


@pytest.fixture(scope="module")
def fresh_engine():
    def build() -> CredenceEngine:
        return CredenceEngine(
            covid_corpus(), EngineConfig(ranker="bm25", seed=5)
        )

    return build


@pytest.fixture(scope="module")
def doc_ids(fresh_engine) -> list[str]:
    ranking = fresh_engine().rank(DEMO_QUERY, 10)
    ids = [entry.doc_id for entry in ranking][:3]
    assert FAKE_NEWS_DOC_ID in set(
        entry.doc_id for entry in ranking
    )
    return ids


class TestParallelEquivalence:
    def test_parallel_batch_matches_sequential(self, fresh_engine, doc_ids):
        requests = _workload(doc_ids)
        sequential = fresh_engine().explain_batch(requests)
        parallel_engine = fresh_engine()
        try:
            parallel = parallel_engine.explain_batch(requests, parallel=4)
        finally:
            parallel_engine.service().shutdown()
        assert _canonical(parallel) == _canonical(sequential)

    def test_job_results_match_sequential(self, fresh_engine, doc_ids):
        requests = _workload(doc_ids)
        sequential = fresh_engine().explain_batch(requests)
        engine = fresh_engine()
        service = engine.service(workers=4)
        try:
            job = service.submit(requests)
            assert job.wait(timeout=120)
            assert _canonical(job.responses) == _canonical(sequential)
            assert service.store.hits > 0  # the repeats hit the cache
        finally:
            service.shutdown()

    def test_error_items_match_sequential(self, fresh_engine):
        requests = [
            ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=10),
            ExplainRequest(DEMO_QUERY, "no-such-document", k=10),
            ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=10, n=2),
        ]
        sequential = fresh_engine().explain_batch(requests)
        engine = fresh_engine()
        try:
            parallel = engine.explain_batch(requests, parallel=2)
        finally:
            engine.service().shutdown()
        assert _canonical(parallel) == _canonical(sequential)

    def test_parallel_true_uses_the_service_pool(self, fresh_engine, doc_ids):
        """Regression: True == 1 in Python, so a naive `parallel != 1`
        guard silently routed parallel=True to the sequential loop."""
        requests = _workload(doc_ids)[:4]
        engine = fresh_engine()
        try:
            responses = engine.explain_batch(requests, parallel=True)
            assert engine._service is not None  # the pool really ran
            assert engine.service().metrics.counter("jobs_submitted") == 1
            assert _canonical(responses) == _canonical(
                fresh_engine().explain_batch(requests)
            )
        finally:
            engine.service().shutdown()

    def test_sequential_path_unaffected_by_parallel_flag_values(
        self, fresh_engine, doc_ids
    ):
        requests = _workload(doc_ids)[:3]
        engine = fresh_engine()
        baseline = engine.explain_batch(requests)
        assert _canonical(engine.explain_batch(requests, parallel=None)) == (
            _canonical(baseline)
        )
        assert _canonical(engine.explain_batch(requests, parallel=False)) == (
            _canonical(baseline)
        )
        assert _canonical(engine.explain_batch(requests, parallel=1)) == (
            _canonical(baseline)
        )
        assert engine._service is None  # those flags never built a service
