"""Acceptance: parallel execution is byte-identical to the sequential path.

Runs the same request workload through sequential ``explain_batch``,
``explain_batch(parallel=4)``, and the async job path, and compares the
serialised payloads byte-for-byte (modulo wall-clock timing, which is
measurement, not result). The workload repeats requests so the parallel
paths also exercise the result store — cached responses must be the
same bytes too.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.core.search import SEARCH_STRATEGIES
from repro.datasets.covid import DEMO_QUERY, FAKE_NEWS_DOC_ID, covid_corpus
from tests.core.test_search_equivalence import _corpus
from tests.index.test_sharded_equivalence import (
    K,
    LEXICAL_RANKERS,
    QUERY,
    STRATEGIES,
)

requires_process_tier = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-tier tests need the fork start method",
)


def _strip_timing(payload: dict) -> dict:
    cleaned = dict(payload)
    cleaned.pop("elapsed_seconds", None)
    return cleaned


def _canonical(responses) -> list[str]:
    return [
        json.dumps(_strip_timing(response.to_dict()), sort_keys=True)
        for response in responses
    ]


def _workload(doc_ids: list[str]) -> list[ExplainRequest]:
    requests = []
    for doc_id in doc_ids:
        requests.append(ExplainRequest(DEMO_QUERY, doc_id, k=10))
        requests.append(
            ExplainRequest(
                DEMO_QUERY,
                doc_id,
                strategy="query/augmentation",
                n=2,
                k=10,
                threshold=2,
            )
        )
        requests.append(
            ExplainRequest(DEMO_QUERY, doc_id, strategy="document/greedy", k=10)
        )
    # repeats: the parallel path answers these from the result store
    return requests + requests[: len(requests) // 2]


@pytest.fixture(scope="module")
def fresh_engine():
    def build() -> CredenceEngine:
        return CredenceEngine(
            covid_corpus(), EngineConfig(ranker="bm25", seed=5)
        )

    return build


@pytest.fixture(scope="module")
def doc_ids(fresh_engine) -> list[str]:
    ranking = fresh_engine().rank(DEMO_QUERY, 10)
    ids = [entry.doc_id for entry in ranking][:3]
    assert FAKE_NEWS_DOC_ID in set(
        entry.doc_id for entry in ranking
    )
    return ids


class TestParallelEquivalence:
    def test_parallel_batch_matches_sequential(self, fresh_engine, doc_ids):
        requests = _workload(doc_ids)
        sequential = fresh_engine().explain_batch(requests)
        parallel_engine = fresh_engine()
        try:
            parallel = parallel_engine.explain_batch(requests, parallel=4)
        finally:
            parallel_engine.service().shutdown()
        assert _canonical(parallel) == _canonical(sequential)

    def test_job_results_match_sequential(self, fresh_engine, doc_ids):
        requests = _workload(doc_ids)
        sequential = fresh_engine().explain_batch(requests)
        engine = fresh_engine()
        service = engine.service(workers=4)
        try:
            job = service.submit(requests)
            assert job.wait(timeout=120)
            assert _canonical(job.responses) == _canonical(sequential)
            assert service.store.hits > 0  # the repeats hit the cache
        finally:
            service.shutdown()

    def test_error_items_match_sequential(self, fresh_engine):
        requests = [
            ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=10),
            ExplainRequest(DEMO_QUERY, "no-such-document", k=10),
            ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=10, n=2),
        ]
        sequential = fresh_engine().explain_batch(requests)
        engine = fresh_engine()
        try:
            parallel = engine.explain_batch(requests, parallel=2)
        finally:
            engine.service().shutdown()
        assert _canonical(parallel) == _canonical(sequential)

    def test_parallel_true_uses_the_service_pool(self, fresh_engine, doc_ids):
        """Regression: True == 1 in Python, so a naive `parallel != 1`
        guard silently routed parallel=True to the sequential loop."""
        requests = _workload(doc_ids)[:4]
        engine = fresh_engine()
        try:
            responses = engine.explain_batch(requests, parallel=True)
            assert engine._service is not None  # the pool really ran
            assert engine.service().metrics.counter("jobs_submitted") == 1
            assert _canonical(responses) == _canonical(
                fresh_engine().explain_batch(requests)
            )
        finally:
            engine.service().shutdown()

    def test_sequential_path_unaffected_by_parallel_flag_values(
        self, fresh_engine, doc_ids
    ):
        requests = _workload(doc_ids)[:3]
        engine = fresh_engine()
        baseline = engine.explain_batch(requests)
        assert _canonical(engine.explain_batch(requests, parallel=None)) == (
            _canonical(baseline)
        )
        assert _canonical(engine.explain_batch(requests, parallel=False)) == (
            _canonical(baseline)
        )
        assert _canonical(engine.explain_batch(requests, parallel=1)) == (
            _canonical(baseline)
        )
        assert engine._service is None  # those flags never built a service

    def test_executor_thread_engages_pool_without_parallel(
        self, fresh_engine, doc_ids
    ):
        """``executor="thread"`` alone opts into the worker pool — it
        must not silently run sequential just because parallel is unset."""
        requests = _workload(doc_ids)[:4]
        engine = fresh_engine()
        try:
            responses = engine.explain_batch(requests, executor="thread")
            assert engine._service is not None
            assert engine.service().metrics.counter("jobs_submitted") == 1
            assert _canonical(responses) == _canonical(
                fresh_engine().explain_batch(requests)
            )
        finally:
            engine.service().shutdown()

    def test_invalid_executor_rejected(self, fresh_engine):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fresh_engine().explain_batch(
                [ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=10)],
                executor="gpu",
            )


def _tier_sweep() -> list[ExplainRequest]:
    """Every explainer × every search strategy (where search applies).

    The instance strategies do not route through the search kernel, so
    they run once each; the kernel-backed document/query strategies run
    once per search strategy.
    """
    requests = []
    for strategy, knobs in STRATEGIES:
        searches = (
            SEARCH_STRATEGIES
            if strategy.startswith(("document/", "query/"))
            else (None,)
        )
        for search in searches:
            requests.append(
                ExplainRequest(
                    QUERY, "__target__", strategy=strategy, k=K,
                    search=search, **knobs,
                )
            )
    return requests


@requires_process_tier
class TestProcessTierEquivalence:
    """Acceptance: the process tier is byte-identical to sequential
    across all rankers × explainers × search strategies.

    Worker processes rebuild the ranker from ``EngineConfig`` and attach
    a v3 snapshot of the index, so any nondeterminism in snapshotting,
    ranker reconstruction, or payload serialisation shows up here as a
    byte diff.
    """

    @pytest.fixture(scope="class", params=LEXICAL_RANKERS)
    def tier_results(self, request):
        ranker = request.param

        def build() -> CredenceEngine:
            return CredenceEngine(
                _corpus(), EngineConfig(ranker=ranker, seed=5)
            )

        target = build().rank(QUERY, K).doc_ids[0]
        requests = [
            ExplainRequest(
                QUERY,
                target,
                strategy=item.strategy,
                k=item.k,
                n=item.n,
                threshold=item.threshold,
                samples=item.samples,
                search=item.search,
            )
            for item in _tier_sweep()
        ]
        sequential = build().explain_batch(requests)
        process_engine = build()
        try:
            process = process_engine.explain_batch(
                requests, parallel=2, executor="process"
            )
        finally:
            process_engine.service().shutdown()
        return sequential, process

    def test_process_results_byte_identical(self, tier_results):
        sequential, process = tier_results
        assert _canonical(process) == _canonical(sequential)

    def test_sweep_covers_every_strategy_and_search(self):
        sweep = _tier_sweep()
        assert {r.strategy for r in sweep} == {name for name, _ in STRATEGIES}
        kernel = [r for r in sweep if r.strategy.startswith(("document/", "query/"))]
        assert {r.search for r in kernel} == set(SEARCH_STRATEGIES)

    def test_neural_ranker_byte_identical(self):
        """The trained ranker family: workers must retrain the MLP from
        the config's training queries to the same weights (seeded)."""
        training = (QUERY, "markets earnings report")

        def build() -> CredenceEngine:
            return CredenceEngine(
                _corpus(),
                EngineConfig(ranker="neural", training_queries=training, seed=5),
            )

        target = build().rank(QUERY, K).doc_ids[0]
        requests = [
            ExplainRequest(QUERY, target, strategy="document/greedy", k=K),
            ExplainRequest(QUERY, target, strategy="query/augmentation", n=2, k=K),
        ]
        sequential = build().explain_batch(requests)
        engine = build()
        try:
            process = engine.explain_batch(requests, executor="process")
        finally:
            engine.service().shutdown()
        assert _canonical(process) == _canonical(sequential)

    def test_error_envelopes_byte_identical(self, fresh_engine):
        requests = [
            ExplainRequest(DEMO_QUERY, "no-such-document", k=10),
            ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID, k=10),
        ]
        sequential = fresh_engine().explain_batch(requests)
        engine = fresh_engine()
        try:
            process = engine.explain_batch(requests, executor="process")
        finally:
            engine.service().shutdown()
        assert _canonical(process) == _canonical(sequential)

    def test_explicit_ranker_refused(self):
        """An explicitly-passed ranker object cannot be rebuilt from
        config in a worker process — the tier refuses loudly instead of
        silently computing with a different ranker."""
        from repro.errors import ConfigurationError
        from repro.ranking.bm25 import Bm25Ranker

        documents = _corpus()
        engine = CredenceEngine(
            documents, EngineConfig(ranker="bm25", seed=5)
        )
        explicit = CredenceEngine(
            documents,
            EngineConfig(ranker="bm25", seed=5),
            ranker=Bm25Ranker(engine.index),
        )
        try:
            with pytest.raises(ConfigurationError, match="explicit"):
                explicit.explain_batch(
                    [ExplainRequest(QUERY, documents[0].doc_id, k=K)],
                    executor="process",
                )
        finally:
            explicit.service().shutdown()
