"""ExplanationService tests: job lifecycle, cancellation, failure
isolation, store-backed execution, and invalidation on index mutation.

Mechanics that need precise control over timing (cancellation mid-batch,
unexpected exceptions) run against a stub engine; everything else runs
against a real BM25 engine over the tiny corpus.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest, ExplainResponse
from repro.errors import ConfigurationError, JobNotFoundError, RankingError
from repro.index.document import Document
from repro.service.jobs import JobStatus
from repro.service.scheduler import ExplanationService


def _request(doc_id: str = "d5", **overrides) -> ExplainRequest:
    fields = {"query": "covid outbreak", "doc_id": doc_id, "k": 5}
    fields.update(overrides)
    return ExplainRequest(**fields)


class _StubIndex:
    def __init__(self):
        self.version = 0


class _StubRanker:
    name = "Stub"


class StubEngine:
    """Just enough engine surface for the scheduler: index.version,
    ranker.name, and a controllable explain()."""

    def __init__(self, explain=None):
        self.index = _StubIndex()
        self.ranker = _StubRanker()
        self._explain = explain

    def explain(self, request: ExplainRequest) -> ExplainResponse:
        if self._explain is not None:
            return self._explain(request)
        return ExplainResponse(
            strategy=request.strategy,
            query=request.query,
            doc_id=request.doc_id,
        )


@pytest.fixture()
def engine(tiny_docs) -> CredenceEngine:
    return CredenceEngine(tiny_docs, EngineConfig(ranker="bm25", seed=5))


@pytest.fixture()
def service(engine) -> ExplanationService:
    with engine.service(workers=2) as built:
        yield built


class TestJobLifecycle:
    def test_submit_progress_result(self, service):
        job = service.submit([_request(), _request(strategy="document/greedy")])
        assert job.wait(timeout=30)
        assert job.status is JobStatus.DONE
        assert job.items_done == 2
        assert all(response.ok for response in job.responses)
        assert service.job(job.job_id) is job
        assert service.metrics.counter("jobs_completed") == 1

    def test_single_request_submission(self, service):
        job = service.submit(_request())
        assert job.wait(timeout=30)
        assert job.items_total == 1
        assert job.status is JobStatus.DONE

    def test_unknown_job_id_raises(self, service):
        with pytest.raises(JobNotFoundError):
            service.job("job-999")

    def test_failure_isolation(self, service):
        """One bad item fails that item, not the job (same contract as
        sequential explain_batch)."""
        job = service.submit(
            [_request(), _request(doc_id="absent"), _request(n=2)]
        )
        assert job.wait(timeout=30)
        assert job.status is JobStatus.DONE
        ok, bad, ok2 = job.responses
        assert ok.ok and ok2.ok
        assert not bad.ok
        assert "absent" in bad.error
        assert service.metrics.counter("items_failed") == 1

    def test_unexpected_exception_marks_job_failed(self):
        def explode(request):
            if request.doc_id == "boom":
                raise RuntimeError("not a library error")
            return ExplainResponse(
                strategy=request.strategy,
                query=request.query,
                doc_id=request.doc_id,
            )

        with ExplanationService(StubEngine(explode), workers=2) as service:
            job = service.submit([_request("fine"), _request("boom")])
            assert job.wait(timeout=30)
            assert job.status is JobStatus.FAILED
            assert "RuntimeError" in job.error
            # the healthy item still carries its result
            assert job.responses[0].ok
            assert not job.responses[1].ok
            assert service.metrics.counter("jobs_failed") == 1

    def test_job_retention_keeps_recent_and_live_jobs(self):
        with ExplanationService(
            StubEngine(), workers=1, job_retention=2
        ) as service:
            ids = []
            for _ in range(4):
                job = service.submit(_request())
                job.wait(timeout=30)
                ids.append(job.job_id)
            tracked = {job.job_id for job in service.jobs()}
            assert len(tracked) == 2
            assert ids[-1] in tracked
            with pytest.raises(JobNotFoundError):
                service.job(ids[0])


class TestCancellation:
    def test_cancel_mid_batch_skips_pending_items(self):
        started = threading.Event()
        release = threading.Event()

        def slow(request):
            started.set()
            assert release.wait(30)
            return ExplainResponse(
                strategy=request.strategy,
                query=request.query,
                doc_id=request.doc_id,
            )

        service = ExplanationService(StubEngine(slow), workers=1)
        try:
            job = service.submit([_request(f"d{i}") for i in range(4)])
            assert started.wait(30)  # item 0 is executing
            cancelled = service.cancel(job.job_id)
            assert cancelled is job
            release.set()
            assert job.wait(timeout=30)
            assert job.status is JobStatus.CANCELLED
            # the in-flight item completed; queued items were skipped
            assert job.responses[0] is not None and job.responses[0].ok
            assert job.responses[1:] == [None, None, None]
            assert job.to_dict()["items"] == [
                "done", "skipped", "skipped", "skipped",
            ]
            assert service.metrics.counter("jobs_cancelled") == 1
            assert service.metrics.counter("items_skipped") == 3
        finally:
            release.set()
            service.shutdown()

    def test_cancel_terminal_job_is_a_noop(self, service):
        job = service.submit(_request())
        assert job.wait(timeout=30)
        assert service.cancel(job.job_id).status is JobStatus.DONE

    def test_submit_after_shutdown_raises_but_finalises_the_job(self):
        """A job the pool will never run must not stay pending forever."""
        service = ExplanationService(StubEngine(), workers=1)
        service.shutdown()
        with pytest.raises(ConfigurationError):
            service.submit([_request("d1"), _request("d2")])
        (job,) = service.jobs()
        assert job.wait(timeout=5)
        assert job.status is JobStatus.CANCELLED
        assert job.to_dict()["items"] == ["skipped", "skipped"]
        assert service.metrics.counter("items_skipped") == 2

    def test_shutdown_cancel_pending_finalises_live_jobs(self):
        release = threading.Event()

        def slow(request):
            assert release.wait(30)
            return ExplainResponse(
                strategy=request.strategy,
                query=request.query,
                doc_id=request.doc_id,
            )

        service = ExplanationService(StubEngine(slow), workers=1)
        job = service.submit([_request(f"d{i}") for i in range(3)])
        release.set()
        service.shutdown(wait=True, cancel_pending=True)
        assert job.wait(timeout=30)
        assert job.status.terminal


class TestStoreBackedExecution:
    def test_repeat_requests_hit_the_store(self, service):
        first = service.explain(_request())
        second = service.explain(_request())
        assert second is first  # the cached response object
        assert service.store.hits == 1
        assert service.metrics_snapshot()["cache_hit_rate"] == 0.5

    def test_errors_propagate_and_are_not_cached(self, service):
        with pytest.raises(RankingError):
            service.explain(_request(doc_id="d1", k=1))
        assert len(service.store) == 0

    def test_index_mutation_invalidates_cached_results(self, service, engine):
        request = _request()
        before = service.explain(request)
        engine.index.add(
            Document("new-doc", "A fresh covid outbreak update arrived.")
        )
        after = service.explain(request)
        assert after is not before  # version changed -> recomputed
        assert service.store.misses == 2

    def test_run_batch_validates_items(self, service):
        with pytest.raises(ConfigurationError):
            service.run_batch([{"query": "covid", "doc_id": "d5"}])


class TestMetricsSnapshot:
    def test_snapshot_shape(self, service):
        service.run_batch([_request(), _request()])
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["jobs_submitted"] == 1
        assert snapshot["counters"]["items_executed"] == 2
        assert snapshot["store"]["entries"] == 1
        assert snapshot["workers"] == 2
        assert snapshot["jobs_tracked"] == 1
        assert snapshot["item_latency"]["count"] == 2
