"""Doc-sync guard: the documentation cannot silently rot.

Three contracts, enforced so the docs added with the sharded backend
stay true as the public surface evolves:

1. every public symbol exported from ``repro/__init__.py`` has a
   docstring (callables/classes) **and** is mentioned somewhere in the
   documentation set;
2. the documentation set itself exists and is substantive (README,
   architecture guide, cookbook, API hub and its per-area pages);
3. every relative link between markdown documents resolves.
"""

import inspect
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation set the public surface must be reflected in.
REQUIRED_DOCS = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/COOKBOOK.md",
    "docs/API.md",
    "docs/api/explanations.md",
    "docs/api/search.md",
    "docs/api/sessions.md",
    "docs/api/sharding.md",
    "docs/api/persistence.md",
    "docs/api/service.md",
    "docs/api/rest.md",
    "docs/api/cli.md",
    "docs/api/observability.md",
    "docs/api/eval.md",
)


def _doc_corpus() -> str:
    parts = []
    for name in REQUIRED_DOCS:
        path = REPO_ROOT / name
        if path.exists():
            parts.append(path.read_text(encoding="utf-8"))
    return "\n".join(parts)


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_required_doc_exists_and_is_substantive(name):
    path = REPO_ROOT / name
    assert path.exists(), f"missing documentation file: {name}"
    assert len(path.read_text(encoding="utf-8")) > 800, (
        f"{name} is a stub; the doc-sync guard expects real content"
    )


@pytest.mark.parametrize(
    "symbol", [s for s in repro.__all__ if s != "__version__"]
)
def test_public_symbol_has_docstring_and_docs(symbol):
    value = getattr(repro, symbol)
    if inspect.isclass(value) or inspect.isfunction(value) or inspect.ismodule(value):
        assert (getattr(value, "__doc__", None) or "").strip(), (
            f"repro.{symbol} has no docstring"
        )
    assert symbol in _doc_corpus(), (
        f"repro.{symbol} is exported but never mentioned in the docs "
        f"({', '.join(REQUIRED_DOCS)})"
    )


def test_api_hub_documents_the_sharding_api():
    hub = (REPO_ROOT / "docs/API.md").read_text(encoding="utf-8")
    for needle in ("ShardedIndex", "add_documents", "shards=", "api/sharding.md"):
        assert needle in hub, f"docs/API.md no longer documents {needle!r}"


#: The execution-tier surface each document must keep describing.
EXECUTION_TIER_NEEDLES = {
    "docs/ARCHITECTURE.md": (
        "Execution tiers",
        "ProcessExecutor",
        "ProcessWorkerPool",
        "WorkerSpec",
        "index_snapshots",
        "WorkerProcessDied",
    ),
    "docs/api/service.md": (
        "Execution tiers",
        "configure_executor",
        'executor="process"',
        "ProcessExecutor",
        "RemoteReproError",
        "WorkerProcessDied",
        "tasks_dispatched",
        "BENCH_process_tier.json",
    ),
    "docs/api/cli.md": (
        "--parallel",
        "--executor",
        "serve --executor process",
    ),
    "docs/api/rest.md": (
        "`executor`",
        "worker_respawns",
        "index_snapshots",
        "repro_executor_workers",
    ),
}


@pytest.mark.parametrize("name", sorted(EXECUTION_TIER_NEEDLES))
def test_docs_cover_the_execution_tiers(name):
    text = (REPO_ROOT / name).read_text(encoding="utf-8")
    missing = [n for n in EXECUTION_TIER_NEEDLES[name] if n not in text]
    assert not missing, (
        f"{name} no longer documents the execution-tier surface: {missing}"
    )


#: The evaluation-harness surface each document must keep describing.
EVAL_NEEDLES = {
    "docs/api/eval.md": (
        "StudySpec",
        "run_scaled_study",
        "QualityFloors",
        "recheck_explanation",
        "stream_corpus",
        "stream_ingest",
        "load_trec_covid",
        "EVAL_SMOKE=1",
        "BENCH_large_eval.json",
        "canonical_json",
    ),
    "docs/API.md": (
        "api/eval.md",
        "run_scaled_study",
    ),
    "docs/COOKBOOK.md": (
        "StudySpec",
        "run_scaled_study",
        "stream_corpus",
        "EVAL_SMOKE=1",
    ),
}


@pytest.mark.parametrize("name", sorted(EVAL_NEEDLES))
def test_docs_cover_the_eval_harness(name):
    text = (REPO_ROOT / name).read_text(encoding="utf-8")
    missing = [n for n in EVAL_NEEDLES[name] if n not in text]
    assert not missing, (
        f"{name} no longer documents the evaluation harness: {missing}"
    )


_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)(?:#[^)]*)?\)")


def _markdown_files():
    yield REPO_ROOT / "README.md"
    yield from (REPO_ROOT / "docs").rglob("*.md")


@pytest.mark.parametrize(
    "markdown", list(_markdown_files()), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(markdown):
    text = markdown.read_text(encoding="utf-8")
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1).strip()
        if "://" in target or target.startswith("mailto:"):
            continue
        if not (markdown.parent / target).exists():
            broken.append(target)
    assert not broken, f"{markdown.name} has broken links: {broken}"


def test_examples_referenced_by_cookbook_exist():
    cookbook = (REPO_ROOT / "docs/COOKBOOK.md").read_text(encoding="utf-8")
    referenced = set(re.findall(r"([a-z_]+\.py)", cookbook))
    existing = {path.name for path in (REPO_ROOT / "examples").glob("*.py")}
    missing = {
        name for name in referenced
        if name not in existing and name not in {"check.sh"}
    }
    # every examples/ script must be covered, and no ghost scripts cited
    assert existing <= referenced, (
        f"cookbook does not cover: {sorted(existing - referenced)}"
    )
    assert not missing, f"cookbook cites missing scripts: {sorted(missing)}"
