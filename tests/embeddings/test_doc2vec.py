"""Tests for PV-DBOW Doc2Vec."""

import numpy as np
import pytest

from repro.embeddings.doc2vec import train_doc2vec
from repro.errors import ConfigurationError, DocumentNotFoundError

DOCS = {
    "covid-a": "covid outbreak city hospital cases covid outbreak".split(),
    "covid-b": "covid outbreak spread hospital doctors covid".split(),
    "covid-c": "covid vaccine trial doctors results".split(),
    "fin-a": "market stocks rally investors shares earnings".split(),
    "fin-b": "market stocks earnings investors trading bonds".split(),
    "weather-a": "storm rainfall flooding forecast winds drought".split(),
}


@pytest.fixture(scope="module")
def model():
    return train_doc2vec(DOCS, dimension=24, epochs=120, seed=5)


class TestTraining:
    def test_empty_documents_rejected(self):
        with pytest.raises(ConfigurationError):
            train_doc2vec({})

    def test_deterministic(self):
        a = train_doc2vec(DOCS, dimension=8, epochs=5, seed=2)
        b = train_doc2vec(DOCS, dimension=8, epochs=5, seed=2)
        assert np.allclose(a.doc_vectors, b.doc_vectors)

    def test_contains_and_vector(self, model):
        assert "covid-a" in model
        assert model.vector("covid-a").shape == (24,)

    def test_unknown_doc_raises(self, model):
        with pytest.raises(DocumentNotFoundError):
            model.vector("ghost")


class TestSimilarityStructure:
    def test_same_topic_more_similar_than_cross_topic(self, model):
        same = model.similarity("covid-a", "covid-b")
        cross = model.similarity("covid-a", "weather-a")
        assert same > cross

    def test_similarity_symmetric(self, model):
        assert model.similarity("covid-a", "fin-a") == pytest.approx(
            model.similarity("fin-a", "covid-a")
        )

    def test_most_similar_excludes_self(self, model):
        neighbours = [doc for doc, _ in model.most_similar("covid-a", n=5)]
        assert "covid-a" not in neighbours

    def test_most_similar_respects_exclusions(self, model):
        neighbours = [
            doc
            for doc, _ in model.most_similar(
                "covid-a", n=5, exclude={"covid-b", "covid-c"}
            )
        ]
        assert "covid-b" not in neighbours
        assert "covid-c" not in neighbours

    def test_most_similar_sorted(self, model):
        scores = [s for _, s in model.most_similar("covid-a", n=5)]
        assert scores == sorted(scores, reverse=True)


class TestInference:
    def test_infer_vector_near_topic(self, model):
        inferred = model.infer_vector(
            "covid outbreak hospital cases".split(), epochs=40, seed=3
        )
        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        covid_sim = cosine(inferred, model.vector("covid-a"))
        weather_sim = cosine(inferred, model.vector("weather-a"))
        assert covid_sim > weather_sim

    def test_infer_empty_terms_gives_small_vector(self, model):
        vector = model.infer_vector([], seed=1)
        assert vector.shape == (model.dimension,)

    def test_infer_deterministic(self, model):
        a = model.infer_vector(["covid", "outbreak"], epochs=5, seed=7)
        b = model.infer_vector(["covid", "outbreak"], epochs=5, seed=7)
        assert np.allclose(a, b)
