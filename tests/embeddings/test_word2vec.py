"""Tests for skip-gram word2vec."""

import numpy as np
import pytest

from repro.embeddings.word2vec import train_word2vec
from repro.errors import TermNotFoundError, TrainingError

CORPUS = [
    "covid outbreak city hospital cases".split(),
    "covid outbreak spread hospital doctors".split(),
    "covid vaccine trial doctors results".split(),
    "market stocks rally investors shares".split(),
    "market stocks earnings investors trading".split(),
    "storm rainfall flooding forecast winds".split(),
] * 4


@pytest.fixture(scope="module")
def model():
    return train_word2vec(CORPUS, dimension=24, epochs=12, seed=5)


class TestTraining:
    def test_empty_corpus_rejected(self):
        with pytest.raises(TrainingError):
            train_word2vec([[]])

    def test_deterministic(self):
        a = train_word2vec(CORPUS[:6], dimension=8, epochs=2, seed=4)
        b = train_word2vec(CORPUS[:6], dimension=8, epochs=2, seed=4)
        assert np.allclose(a.w_in, b.w_in)

    def test_min_count_prunes(self):
        model = train_word2vec(CORPUS + [["rareterm", "covid"]], min_count=2, epochs=1)
        assert "rareterm" not in model

    def test_dimension(self, model):
        assert model.dimension == 24
        assert model.vector("covid").shape == (24,)


class TestSimilarityStructure:
    def test_topically_related_terms_closer(self, model):
        neighbours = [term for term, _ in model.most_similar("stocks", n=3)]
        assert "investors" in neighbours or "market" in neighbours or "earnings" in neighbours

    def test_unknown_term_raises(self, model):
        with pytest.raises(TermNotFoundError):
            model.vector("nonexistent")

    def test_text_vector_mean(self, model):
        combined = model.text_vector(["covid", "outbreak"])
        manual = (model.vector("covid") + model.vector("outbreak")) / 2
        assert np.allclose(combined, manual)

    def test_text_vector_unknown_terms_zero(self, model):
        assert not model.text_vector(["qqq", "zzz"]).any()

    def test_most_similar_excludes_self(self, model):
        assert "covid" not in [t for t, _ in model.most_similar("covid", n=5)]
