"""Tests for the word2vec semantic channel."""

import pytest

from repro.embeddings.semantic import Word2VecSemanticScorer


@pytest.fixture(scope="module")
def scorer(module_index):
    return Word2VecSemanticScorer.train(module_index, dimension=24, epochs=10, seed=4)


@pytest.fixture(scope="module")
def module_index():
    from repro.datasets.covid import covid_corpus
    from repro.index.inverted import InvertedIndex

    return InvertedIndex.from_documents(covid_corpus())


class TestSemanticScorer:
    def test_scores_in_cosine_range(self, scorer):
        score = scorer("covid outbreak", "the covid outbreak spread")
        assert -1.0 <= score <= 1.0

    def test_topical_text_scores_higher(self, scorer):
        on_topic = scorer("covid outbreak", "hospitals treating covid patients")
        off_topic = scorer("covid outbreak", "the championship match was played")
        assert on_topic > off_topic

    def test_unknown_terms_score_zero(self, scorer):
        assert scorer("qqqq zzzz", "xxxx wwww") == 0.0

    def test_query_vector_cached(self, scorer):
        scorer("covid outbreak", "text one")
        assert "covid outbreak" in scorer._query_cache

    def test_engine_integration(self):
        """The semantic channel threads into the neural pipeline config."""
        from repro.core.engine import CredenceEngine, EngineConfig
        from repro.datasets.covid import covid_corpus, covid_training_queries

        engine = CredenceEngine(
            covid_corpus(filler_size=10),
            EngineConfig(
                ranker="neural",
                training_queries=tuple(covid_training_queries()),
                use_semantic_channel=True,
                neural_epochs=3,
                seed=9,
            ),
        )
        ranking = engine.rank("covid outbreak", k=5)
        assert len(ranking) == 5
