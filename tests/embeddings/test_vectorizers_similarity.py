"""Tests for BM25/TF-IDF document vectors and cosine/KNN."""

import numpy as np
import pytest

from repro.embeddings.similarity import CosineKnn, cosine_similarity
from repro.embeddings.vectorizers import Bm25Vectorizer, TfIdfVectorizer
from repro.errors import ConfigurationError


class TestCosineSimilarity:
    def test_identical_dense(self):
        assert cosine_similarity([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_orthogonal_dense(self):
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_opposite_dense(self):
        assert cosine_similarity([1.0], [-1.0]) == pytest.approx(-1.0)

    def test_zero_vector_is_zero(self):
        assert cosine_similarity([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            cosine_similarity([1.0], [1.0, 2.0])

    def test_sparse_vectors(self):
        a = {"covid": 2.0, "outbreak": 1.0}
        b = {"covid": 2.0, "outbreak": 1.0}
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_sparse_disjoint(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_sparse_empty(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_sparse_matches_dense(self):
        sparse = cosine_similarity({"x": 3.0, "y": 4.0}, {"x": 4.0, "y": 3.0})
        dense = cosine_similarity([3.0, 4.0], [4.0, 3.0])
        assert sparse == pytest.approx(dense)


class TestVectorizers:
    def test_bm25_vector_nonzero_for_content_terms(self, tiny_index):
        vector = Bm25Vectorizer(tiny_index).vector("d5")
        assert vector.get("microchip", 0.0) > 0.0
        assert vector.get("covid", 0.0) > 0.0

    def test_rare_terms_weigh_more(self, tiny_index):
        vector = Bm25Vectorizer(tiny_index).vector("d5")
        # 'microchip' is unique to d5; 'covid' appears in three documents.
        assert vector["microchip"] > vector["covid"] / 2  # idf dominates

    def test_vector_for_text_matches_vector_for_same_body(self, tiny_index):
        vectorizer = Bm25Vectorizer(tiny_index)
        body = tiny_index.document("d5").body
        assert vectorizer.vector_for_text(body) == vectorizer.vector("d5")

    def test_all_vectors_cover_corpus(self, tiny_index):
        assert set(Bm25Vectorizer(tiny_index).all_vectors()) == set(tiny_index.doc_ids)

    def test_tfidf_variant_works(self, tiny_index):
        vector = TfIdfVectorizer(tiny_index).vector("d5")
        assert vector.get("microchip", 0.0) > 0.0

    def test_near_duplicate_bodies_have_high_cosine(self, tiny_index):
        vectorizer = Bm25Vectorizer(tiny_index)
        a = vectorizer.vector("d5")
        b = vectorizer.vector_for_text(
            "Conspiracy theorists claim 5G towers caused the illness. "
            "A microchip plot supposedly tracks citizens."
        )
        c = vectorizer.vector("d4")
        assert cosine_similarity(a, b) > cosine_similarity(a, c)


class TestCosineKnn:
    def test_nearest_ordering(self):
        matrix = np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]])
        knn = CosineKnn(["a", "b", "c"], matrix)
        result = knn.nearest(np.array([1.0, 0.0]), n=2)
        assert [label for label, _ in result] == ["a", "b"]

    def test_exclusions(self):
        matrix = np.eye(3)
        knn = CosineKnn(["a", "b", "c"], matrix)
        result = knn.nearest(np.array([1.0, 0.0, 0.0]), n=3, exclude={"a"})
        assert "a" not in [label for label, _ in result]

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CosineKnn(["a"], np.eye(2))

    def test_zero_rows_handled(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        knn = CosineKnn(["zero", "one"], matrix)
        result = knn.nearest(np.array([1.0, 0.0]), n=2)
        assert result[0][0] == "one"
