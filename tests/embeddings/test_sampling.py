"""Tests for negative-sampling machinery."""

import numpy as np
import pytest

from repro.embeddings.sampling import UnigramTable, sigmoid
from repro.errors import ConfigurationError
from repro.utils.rng import default_rng


class TestUnigramTable:
    def test_samples_in_range(self):
        table = UnigramTable(np.array([5.0, 3.0, 1.0]))
        samples = table.sample(default_rng(1), 100)
        assert samples.min() >= 0
        assert samples.max() <= 2

    def test_frequency_proportionality(self):
        table = UnigramTable(np.array([1000.0, 1.0]))
        samples = table.sample(default_rng(1), 2000)
        # The heavy item must dominate (power 0.75 softens but keeps order).
        assert (samples == 0).mean() > 0.8

    def test_power_flattens(self):
        counts = np.array([1000.0, 1.0])
        sharp = UnigramTable(counts, power=1.0)
        flat = UnigramTable(counts, power=0.25)
        rng_a, rng_b = default_rng(2), default_rng(2)
        share_sharp = (sharp.sample(rng_a, 3000) == 0).mean()
        share_flat = (flat.sample(rng_b, 3000) == 0).mean()
        assert share_flat < share_sharp

    def test_empty_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            UnigramTable(np.array([]))

    def test_all_zero_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            UnigramTable(np.array([0.0, 0.0]))

    def test_deterministic(self):
        table = UnigramTable(np.array([2.0, 3.0, 4.0]))
        a = table.sample(default_rng(9), 50)
        b = table.sample(default_rng(9), 50)
        assert (a == b).all()


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_extremes_are_stable(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0, abs=1e-9)

    def test_vectorised(self):
        values = sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert values.shape == (3,)
        assert (np.diff(values) > 0).all()
