"""CLI tests for the ``metrics`` subcommand (in-process ``main()``
against a live threading server)."""

from __future__ import annotations

import json

import pytest

from repro.api.app import serve
from repro.cli import main
from repro.core.engine import CredenceEngine, EngineConfig
from repro.index.document import Document

QUERY = "covid outbreak"
DOC = "d5"

DOCS = [
    Document("d5", "The covid outbreak spread quickly. Experts dismissed "
                   "the covid outbreak rumours. Officials promised tests."),
    Document("d6", "City officials denied rumours about the outbreak "
                   "response. A press briefing is scheduled."),
    Document("d7", "Stock markets rallied as tech shares gained value."),
    Document("d8", "The flu season arrived early with many sick patients."),
]


@pytest.fixture(scope="module")
def live_server():
    engine = CredenceEngine(DOCS, EngineConfig(ranker="bm25", seed=5))
    server = serve(engine, port=0, workers=2)
    yield server
    server.stop()
    engine.service().shutdown()


class TestMetricsCli:
    def test_pretty_print(self, capsys, live_server):
        code = main(["metrics", "--url", live_server.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "uptime" in out
        assert "snapshot #" in out
        assert "cache hit rate" in out
        assert "item latency" in out

    def test_json_output_is_the_raw_snapshot(self, capsys, live_server):
        code = main(["metrics", "--url", live_server.url, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "counters" in payload
        assert "uptime_seconds" in payload
        assert "snapshot_seq" in payload

    def test_prometheus_format_passes_text_through(
        self, capsys, live_server
    ):
        code = main(
            ["metrics", "--url", live_server.url, "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# HELP ")
        assert "repro_uptime_seconds" in out
        assert "# TYPE repro_jobs_submitted_total counter" in out

    def test_counters_move_after_traffic(self, capsys, live_server):
        submit = main(
            [
                "jobs",
                "submit",
                "--url",
                live_server.url,
                "--query",
                QUERY,
                "--doc",
                DOC,
                "--wait",
            ]
        )
        assert submit == 0
        capsys.readouterr()
        code = main(["metrics", "--url", live_server.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs_submitted" in out
        assert "(all zero)" not in out

    def test_connection_refused_exits_cleanly(self, capsys):
        code = main(["metrics", "--url", "http://127.0.0.1:9"])
        assert code == 2
        assert "error" in capsys.readouterr().err
