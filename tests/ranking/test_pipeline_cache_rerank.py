"""Tests for the retrieve-rerank pipeline, caching, and substitution."""

import pytest

from repro.errors import ConfigurationError, RankingError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ranking.base import Ranker, Ranking
from repro.ranking.bm25 import Bm25Ranker
from repro.ranking.cache import CountingRanker, ScoreCache
from repro.ranking.pipeline import RetrieveRerankPipeline
from repro.ranking.rerank import (
    RankMovement,
    candidate_pool,
    movements,
    rank_with_substitution,
)
from repro.ranking.tfidf import TfIdfRanker


class _ReverseRanker(Ranker):
    """A reranker that inverts lexical order — for observing pipeline flow."""

    def __init__(self, index):
        super().__init__(index)
        self._inner = Bm25Ranker(index)

    def rank(self, query, k):
        return Ranking.from_scores(
            [
                (entry.doc_id, -entry.score)
                for entry in self._inner.rank(query, len(self.index))
            ]
        ).top(k)

    def score_text(self, query, body):
        return -self._inner.score_text(query, body)


class TestPipeline:
    def test_reranker_controls_final_order(self, tiny_index):
        pipeline = RetrieveRerankPipeline(
            Bm25Ranker(tiny_index), _ReverseRanker(tiny_index), depth=6
        )
        bm25_order = Bm25Ranker(tiny_index).rank("covid outbreak", 4).doc_ids
        pipeline_order = pipeline.rank("covid outbreak", 4).doc_ids
        assert pipeline_order != bm25_order

    def test_depth_bounds_candidates(self, tiny_index):
        pipeline = RetrieveRerankPipeline(
            Bm25Ranker(tiny_index), TfIdfRanker(tiny_index), depth=2
        )
        # With depth=2 only the two best first-stage docs can appear...
        first_stage_top2 = set(Bm25Ranker(tiny_index).rank("covid", 2).doc_ids)
        result = set(pipeline.rank("covid", 2).doc_ids)
        assert result <= first_stage_top2

    def test_k_larger_than_depth_widens_retrieval(self, tiny_index):
        pipeline = RetrieveRerankPipeline(
            Bm25Ranker(tiny_index), TfIdfRanker(tiny_index), depth=1
        )
        assert len(pipeline.rank("covid", 3)) == 3

    def test_score_text_delegates_to_reranker(self, tiny_index):
        reranker = TfIdfRanker(tiny_index)
        pipeline = RetrieveRerankPipeline(Bm25Ranker(tiny_index), reranker)
        assert pipeline.score_text("covid", "covid text") == pytest.approx(
            reranker.score_text("covid", "covid text")
        )

    def test_mismatched_indexes_rejected(self, tiny_index, tiny_docs):
        other = InvertedIndex.from_documents(tiny_docs)
        with pytest.raises(ConfigurationError):
            RetrieveRerankPipeline(Bm25Ranker(tiny_index), TfIdfRanker(other))

    def test_name_composes(self, tiny_index):
        pipeline = RetrieveRerankPipeline(
            Bm25Ranker(tiny_index), TfIdfRanker(tiny_index)
        )
        assert ">>" in pipeline.name


class TestCountingRanker:
    def test_counts(self, tiny_index):
        counter = CountingRanker(Bm25Ranker(tiny_index))
        counter.rank("covid", 3)
        counter.score_text("covid", "text")
        counter.score_text("covid", "text")
        assert counter.rank_calls == 1
        assert counter.score_calls == 2
        counter.reset()
        assert counter.score_calls == 0

    def test_transparent(self, tiny_index):
        inner = Bm25Ranker(tiny_index)
        counter = CountingRanker(inner)
        assert counter.rank("covid", 3).doc_ids == inner.rank("covid", 3).doc_ids


class TestScoreCache:
    def test_hit_avoids_inner_call(self, tiny_index):
        counter = CountingRanker(Bm25Ranker(tiny_index))
        cache = ScoreCache(counter)
        first = cache.score_text("covid", "some text")
        second = cache.score_text("covid", "some text")
        assert first == second
        assert counter.score_calls == 1
        assert cache.hits == 1

    def test_distinct_queries_not_conflated(self, tiny_index):
        cache = ScoreCache(Bm25Ranker(tiny_index))
        a = cache.score_text("covid", "covid text")
        b = cache.score_text("outbreak", "covid text")
        assert a != pytest.approx(b)

    def test_eviction_keeps_working(self, tiny_index):
        cache = ScoreCache(Bm25Ranker(tiny_index), max_entries=4)
        for i in range(10):
            cache.score_text("covid", f"text variant {i}")
        assert cache.score_text("covid", "text variant 9") is not None

    def test_hit_rate(self, tiny_index):
        cache = ScoreCache(Bm25Ranker(tiny_index))
        assert cache.hit_rate == 0.0
        cache.score_text("covid", "x")
        cache.score_text("covid", "x")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_corpus_mutation_invalidates(self, tiny_index):
        """Cached scores embed df/avgdl; a mutation must drop them.

        Scores the same (query, text) pair before and after an index
        add: the post-mutation score must equal an uncached ranker's
        (not the stale cached value).
        """
        from repro.index.document import Document

        cache = ScoreCache(Bm25Ranker(tiny_index))
        stale = cache.score_text("covid", "covid outbreak report")
        tiny_index.add(
            Document("cache-inval", "covid covid covid outbreak outbreak")
        )
        fresh = Bm25Ranker(tiny_index).score_text("covid", "covid outbreak report")
        assert fresh != pytest.approx(stale)  # the mutation moved df/avgdl
        assert cache.score_text("covid", "covid outbreak report") == fresh


class TestSubstitution:
    def test_substitution_changes_rank(self, tiny_index, tiny_docs):
        ranker = Bm25Ranker(tiny_index)
        replacement = Document("d1", "nothing about the topic at all")
        ranking = rank_with_substitution(ranker, "covid outbreak", tiny_docs, replacement)
        original = ranker.rank_candidates("covid outbreak", tiny_docs)
        assert ranking.rank_of("d1") > original.rank_of("d1")

    def test_unknown_replacement_rejected(self, tiny_index, tiny_docs):
        ranker = Bm25Ranker(tiny_index)
        with pytest.raises(RankingError):
            rank_with_substitution(
                ranker, "covid", tiny_docs, Document("ghost", "body")
            )

    def test_movements_directions(self):
        before = Ranking.from_scores([("a", 3.0), ("b", 2.0), ("c", 1.0)])
        after = Ranking.from_scores(
            [("b", 4.0), ("a", 3.0), ("c", 1.0), ("d", 0.5)]
        )
        report = {m.doc_id: m.direction for m in movements(before, after)}
        assert report == {
            "b": "raised",
            "a": "lowered",
            "c": "unchanged",
            "d": "revealed",
        }

    def test_movement_factory(self):
        assert RankMovement.of("x", None, 11).direction == "revealed"
        assert RankMovement.of("x", 3, 1).direction == "raised"
        assert RankMovement.of("x", 1, 3).direction == "lowered"
        assert RankMovement.of("x", 2, 2).direction == "unchanged"


class TestCandidatePool:
    def test_pool_has_k_plus_one(self, tiny_index):
        pool = candidate_pool(Bm25Ranker(tiny_index), "covid outbreak", k=3)
        assert len(pool) == 4

    def test_pool_padded_when_retrieval_dry(self, tiny_index):
        # Only one document matches "microchip"; pool must still reach k+1.
        pool = candidate_pool(Bm25Ranker(tiny_index), "microchip", k=3)
        assert len(pool) == 4
        assert pool[0].doc_id == "d5"

    def test_pool_capped_by_corpus(self, tiny_index):
        pool = candidate_pool(Bm25Ranker(tiny_index), "covid", k=100)
        assert len(pool) == len(tiny_index)
