"""Tests shared across lexical rankers (BM25 / TF-IDF / Dirichlet LM)."""

import pytest

from repro.errors import RankingError
from repro.ranking.bm25 import Bm25Ranker
from repro.ranking.lm import DirichletLmRanker
from repro.ranking.tfidf import TfIdfRanker

RANKER_TYPES = [Bm25Ranker, TfIdfRanker, DirichletLmRanker]


@pytest.fixture(params=RANKER_TYPES, ids=lambda t: t.__name__)
def ranker(request, tiny_index):
    return request.param(tiny_index)


class TestLexicalRankers:
    def test_rank_returns_valid_ranking(self, ranker):
        ranking = ranker.rank("covid outbreak", k=4)
        assert [e.rank for e in ranking] == list(range(1, len(ranking) + 1))

    def test_query_matching_docs_on_top(self, ranker):
        ranking = ranker.rank("microchip", k=3)
        assert ranking[0].doc_id == "d5"

    def test_score_text_matches_indexed_scoring(self, ranker, tiny_docs):
        # Scoring the document's own body must reproduce its ranked score.
        ranking = ranker.rank("covid outbreak", k=6)
        for entry in ranking:
            body = next(d.body for d in tiny_docs if d.doc_id == entry.doc_id)
            assert ranker.score_text("covid outbreak", body) == pytest.approx(
                entry.score, abs=1e-9
            )

    def test_score_text_accepts_unindexed_text(self, ranker):
        score = ranker.score_text("covid outbreak", "a fresh covid outbreak report")
        assert isinstance(score, float)

    def test_empty_query_scores_zero(self, ranker):
        assert ranker.score_text("", "covid text") == 0.0

    def test_rank_candidates_orders_by_score_text(self, ranker, tiny_docs):
        ranking = ranker.rank_candidates("covid outbreak", tiny_docs)
        scores = [ranker.score_text("covid outbreak", d.body) for d in tiny_docs]
        expected_best = tiny_docs[scores.index(max(scores))].doc_id
        assert ranking[0].doc_id == expected_best

    def test_rank_candidates_empty_rejected(self, ranker):
        with pytest.raises(RankingError):
            ranker.rank_candidates("covid", [])

    def test_removing_query_terms_lowers_score(self, ranker, tiny_docs):
        original = tiny_docs[0].body
        gutted = original.replace("covid", "").replace("outbreak", "")
        assert ranker.score_text("covid outbreak", gutted) < ranker.score_text(
            "covid outbreak", original
        )


class TestRankerNames:
    def test_bm25_name_includes_parameters(self, tiny_index):
        assert "k1=0.9" in Bm25Ranker(tiny_index).name

    def test_lm_name_includes_mu(self, tiny_index):
        assert "mu=1000" in DirichletLmRanker(tiny_index).name
