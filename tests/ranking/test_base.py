"""Tests for Ranking / RankedDocument / RankingFunction."""

import pytest

from repro.errors import RankingError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ranking.base import RankedDocument, Ranking, RankingFunction
from repro.ranking.bm25 import Bm25Ranker


def make_ranking(*doc_ids: str) -> Ranking:
    return Ranking(
        [
            RankedDocument(doc_id=doc_id, score=float(len(doc_ids) - i), rank=i + 1)
            for i, doc_id in enumerate(doc_ids)
        ]
    )


class TestRanking:
    def test_rank_of(self):
        ranking = make_ranking("a", "b", "c")
        assert ranking.rank_of("b") == 2
        assert ranking.rank_of("zz") is None

    def test_contiguous_ranks_enforced(self):
        with pytest.raises(RankingError):
            Ranking([RankedDocument("a", 1.0, 2)])

    def test_duplicate_docs_rejected(self):
        with pytest.raises(RankingError):
            Ranking(
                [
                    RankedDocument("a", 2.0, 1),
                    RankedDocument("a", 1.0, 2),
                ]
            )

    def test_from_scores_orders_descending(self):
        ranking = Ranking.from_scores([("a", 1.0), ("b", 3.0), ("c", 2.0)])
        assert ranking.doc_ids == ["b", "c", "a"]

    def test_from_scores_tie_break_is_input_order(self):
        ranking = Ranking.from_scores([("first", 1.0), ("second", 1.0)])
        assert ranking.doc_ids == ["first", "second"]

    def test_top(self):
        ranking = make_ranking("a", "b", "c")
        assert ranking.top(2).doc_ids == ["a", "b"]

    def test_entry_and_score(self):
        ranking = make_ranking("a", "b")
        assert ranking.entry("b").rank == 2
        assert ranking.score_of("a") == 2.0
        with pytest.raises(RankingError):
            ranking.entry("zz")

    def test_container_protocol(self):
        ranking = make_ranking("a", "b")
        assert "a" in ranking
        assert len(ranking) == 2
        assert ranking[0].doc_id == "a"

    def test_to_dicts(self):
        payload = make_ranking("a").to_dicts()
        assert payload == [{"doc_id": "a", "score": 1.0, "rank": 1}]


class TestRankingFunction:
    @pytest.fixture()
    def ranker(self, tiny_index):
        return Bm25Ranker(tiny_index)

    def test_rank_within_counts_calls(self, ranker, tiny_docs):
        function = RankingFunction(ranker)
        rank = function.rank_within("covid outbreak", "d1", tiny_docs)
        assert rank >= 1
        assert function.calls == len(tiny_docs)

    def test_missing_candidate_raises(self, ranker, tiny_docs):
        function = RankingFunction(ranker)
        with pytest.raises(RankingError):
            function.rank_within("covid", "not-there", tiny_docs)

    def test_last_ranking_exposed(self, ranker, tiny_docs):
        function = RankingFunction(ranker)
        function.rank_within("covid", "d1", tiny_docs)
        assert function.last_ranking is not None
        assert len(function.last_ranking) == len(tiny_docs)

    def test_reset(self, ranker, tiny_docs):
        function = RankingFunction(ranker)
        function.rank_within("covid", "d1", tiny_docs)
        function.reset()
        assert function.calls == 0
        assert function.last_ranking is None

    def test_substituted_document_changes_rank(self, ranker, tiny_docs):
        function = RankingFunction(ranker)
        baseline = function.rank_within("covid outbreak", "d1", tiny_docs)
        gutted = [
            Document("d1", "nothing relevant here") if d.doc_id == "d1" else d
            for d in tiny_docs
        ]
        perturbed = function.rank_within("covid outbreak", "d1", gutted)
        assert perturbed > baseline
