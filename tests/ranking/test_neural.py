"""Tests for the neural reranker (the monoT5 stand-in)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrainingError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ranking.features import FEATURE_NAMES, FeatureExtractor
from repro.ranking.neural import NeuralReranker, train_neural_ranker

QUERIES = ["covid outbreak", "flu season", "stock markets"]


@pytest.fixture(scope="module")
def trained(tiny_module_index):
    return train_neural_ranker(tiny_module_index, QUERIES, epochs=8, seed=3)


@pytest.fixture(scope="module")
def tiny_module_index():
    from tests.conftest import TINY_DOCS

    return InvertedIndex.from_documents(TINY_DOCS)


class TestFeatureExtractor:
    def test_dimension_matches_names(self, tiny_index):
        extractor = FeatureExtractor(tiny_index)
        assert extractor.dimension == len(FEATURE_NAMES)

    def test_extracts_finite_values(self, tiny_index):
        extractor = FeatureExtractor(tiny_index)
        vector = extractor.extract_array("covid outbreak", "covid outbreak report")
        assert vector.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(vector).all()

    def test_coverage_feature(self, tiny_index):
        extractor = FeatureExtractor(tiny_index)
        full = extractor.extract("covid outbreak", "covid outbreak here").as_dict()
        half = extractor.extract("covid outbreak", "covid only here").as_dict()
        assert full["coverage"] == pytest.approx(1.0)
        assert half["coverage"] == pytest.approx(0.5)

    def test_no_match_zero_lexical_features(self, tiny_index):
        extractor = FeatureExtractor(tiny_index)
        features = extractor.extract("covid", "totally unrelated prose").as_dict()
        assert features["bm25"] == 0.0
        assert features["matched_terms"] == 0.0

    def test_semantic_channel_plumbs_through(self, tiny_index):
        extractor = FeatureExtractor(tiny_index, semantic_scorer=lambda q, b: 0.42)
        assert extractor.extract("q", "b").as_dict()["semantic"] == 0.42

    def test_bigram_feature(self, tiny_index):
        extractor = FeatureExtractor(tiny_index)
        with_bigram = extractor.extract(
            "covid outbreak", "the covid outbreak grows"
        ).as_dict()
        without_bigram = extractor.extract(
            "covid outbreak", "outbreak somewhere covid elsewhere"
        ).as_dict()
        assert with_bigram["bigram_matches"] > without_bigram["bigram_matches"]


class TestTraining:
    def test_requires_documents(self):
        index = InvertedIndex()
        with pytest.raises(ConfigurationError):
            train_neural_ranker(index, QUERIES)

    def test_requires_queries(self, tiny_index):
        with pytest.raises(ConfigurationError):
            train_neural_ranker(tiny_index, [])

    def test_deterministic_under_seed(self, tiny_module_index):
        a = train_neural_ranker(tiny_module_index, QUERIES, epochs=3, seed=11)
        b = train_neural_ranker(tiny_module_index, QUERIES, epochs=3, seed=11)
        assert a.score_text("covid outbreak", "covid text") == pytest.approx(
            b.score_text("covid outbreak", "covid text")
        )

    def test_seeds_change_model(self, tiny_module_index):
        a = train_neural_ranker(tiny_module_index, QUERIES, epochs=3, seed=1)
        b = train_neural_ranker(tiny_module_index, QUERIES, epochs=3, seed=2)
        assert a.score_text("covid outbreak", "covid text") != pytest.approx(
            b.score_text("covid outbreak", "covid text")
        )


class TestTrainedBehaviour:
    def test_relevant_documents_outrank_irrelevant(self, trained):
        ranking = trained.rank("covid outbreak", k=6)
        positions = {e.doc_id: e.rank for e in ranking}
        assert positions["d1"] < positions["d4"]  # covid doc above finance doc

    def test_score_responds_to_term_removal(self, trained, tiny_module_index):
        body = tiny_module_index.document("d1").body
        gutted = body.replace("covid", "").replace("outbreak", "")
        assert trained.score_text("covid outbreak", gutted) < trained.score_text(
            "covid outbreak", body
        )

    def test_rank_is_permutation(self, trained):
        ranking = trained.rank("covid outbreak", k=6)
        assert sorted(e.rank for e in ranking) == list(range(1, len(ranking) + 1))

    def test_name_describes_architecture(self, trained):
        assert "NeuralReranker" in trained.name
