"""Scoring sessions must be indistinguishable from naive re-ranking.

The incremental :class:`ScoringSession` layer re-scores only the
perturbed document per candidate. These tests pin the contract that
makes that safe: for every built-in ranker (BM25, TF-IDF, the dense
Dirichlet LM path, neural, LTR) and the cache/pipeline wrappers, the
session produces byte-identical ranks, near-identical scores, and
identical explanation sets versus the pre-session naive path (a full
``rank_candidates`` pass per candidate), which is still reachable
through the generic fallback used for third-party rankers.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.core.greedy import GreedyDocumentExplainer
from repro.core.query_cf import CounterfactualQueryExplainer
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
from repro.ltr.models import LinearLtrModel
from repro.ltr.ranker import LtrRanker
from repro.ranking.base import Ranker
from repro.ranking.bm25 import Bm25Ranker
from repro.ranking.cache import ScoreCache
from repro.ranking.lm import DirichletLmRanker
from repro.ranking.neural import train_neural_ranker
from repro.ranking.pipeline import RetrieveRerankPipeline
from repro.ranking.rerank import candidate_pool
from repro.ranking.session import IncrementalScoringSession, NaiveScoringSession
from repro.ranking.tfidf import TfIdfRanker
from repro.text.sentences import split_sentences

QUERY = "covid outbreak hospital"
K = 5

_TOPICS = [
    "covid outbreak strained the hospital wards",
    "the city council debated transit funding",
    "researchers tracked the covid variant spread",
    "the festival drew record crowds downtown",
    "hospital staff reported outbreak fatigue",
    "markets rallied after the earnings report",
]

_FILLER = [
    "Volunteers repainted the riverside benches.",
    "A bakery introduced a rye sourdough loaf.",
    "The library catalogued donated manuscripts.",
    "Engineers surveyed the old tram bridge.",
    "Gardeners planted drought-resistant shrubs.",
]


def _corpus() -> list[Document]:
    documents = []
    for i in range(24):
        lead = _TOPICS[i % len(_TOPICS)]
        body = ". ".join(
            [
                f"{lead.capitalize()} in district {i}",
                _FILLER[i % len(_FILLER)].rstrip("."),
                f"{_TOPICS[(i + 2) % len(_TOPICS)].capitalize()} again",
                _FILLER[(i + 3) % len(_FILLER)].rstrip("."),
                f"Observers noted item {i} in the evening report",
            ]
        ) + "."
        documents.append(Document(f"doc-{i:02d}", body))
    return documents


class OpaqueRanker(Ranker):
    """A delegating wrapper that hides the inner ranker's session.

    Because it does not override ``scoring_session``, explainers driving
    it take the generic :class:`NaiveScoringSession` fallback — i.e. the
    exact pre-session code path — making it the reference behaviour any
    incremental session must reproduce.
    """

    def __init__(self, inner: Ranker):
        super().__init__(inner.index)
        self.inner = inner

    def rank(self, query, k):
        return self.inner.rank(query, k)

    def score_text(self, query, body):
        return self.inner.score_text(query, body)

    def rank_candidates(self, query, candidates):
        return self.inner.rank_candidates(query, candidates)


@pytest.fixture(scope="module")
def index():
    return InvertedIndex.from_documents(_corpus())


@pytest.fixture(scope="module")
def neural(index):
    return train_neural_ranker(
        index,
        [QUERY, "transit funding council", "festival crowds"],
        epochs=6,
        seed=5,
    )


@pytest.fixture(scope="module")
def rankers(index, neural):
    ltr_corpus = assign_priors(_corpus(), seed=7)
    ltr_index = InvertedIndex.from_documents(ltr_corpus)
    examples = synthetic_letor_dataset(
        ltr_corpus, [QUERY, "markets earnings report"], seed=11
    )
    return {
        "bm25": Bm25Ranker(index),
        "tfidf": TfIdfRanker(index),
        "lm": DirichletLmRanker(index),
        "neural": neural,
        "ltr": LtrRanker(ltr_index, LinearLtrModel.fit(examples)),
        "cached": ScoreCache(Bm25Ranker(index)),
        "pipeline": RetrieveRerankPipeline(Bm25Ranker(index), neural, depth=10),
    }


RANKER_NAMES = ("bm25", "tfidf", "lm", "neural", "ltr", "cached", "pipeline")


def _pool(ranker):
    return candidate_pool(ranker, QUERY, K)


def _naive_substituted(ranker, pool, doc_id, body):
    substituted = [
        document.with_body(body) if document.doc_id == doc_id else document
        for document in pool
    ]
    return ranker.rank_candidates(QUERY, substituted)


def _assert_rankings_match(session_ranking, naive_ranking):
    assert [e.doc_id for e in session_ranking] == [
        e.doc_id for e in naive_ranking
    ]
    assert [e.rank for e in session_ranking] == [e.rank for e in naive_ranking]
    for ours, theirs in zip(session_ranking, naive_ranking):
        assert ours.score == pytest.approx(theirs.score, rel=1e-12, abs=1e-12)


@pytest.mark.parametrize("name", RANKER_NAMES)
class TestSessionEquivalence:
    def test_baseline_matches_rank_candidates(self, rankers, name):
        ranker = rankers[name]
        pool = _pool(ranker)
        session = ranker.scoring_session(QUERY, pool)
        _assert_rankings_match(
            session.baseline(), ranker.rank_candidates(QUERY, pool)
        )

    def test_substitution_matches_naive(self, rankers, name):
        ranker = rankers[name]
        pool = _pool(ranker)
        session = ranker.scoring_session(QUERY, pool)
        bodies = [
            "Entirely unrelated gardening notes. Nothing topical here.",
            "Covid outbreak overwhelmed the hospital. Covid outbreak again.",
            pool[0].body,  # unchanged text must keep its rank
            "",  # degenerate: empty document
        ]
        for document, body in itertools.product(pool, bodies):
            naive = _naive_substituted(ranker, pool, document.doc_id, body)
            assert (
                session.rank_with_substitution(document.doc_id, body)
                == naive.rank_of(document.doc_id)
            ), (name, document.doc_id, body[:30])
            _assert_rankings_match(
                session.ranking_with_substitution(document.doc_id, body), naive
            )

    def test_sentence_removal_matches_naive(self, rankers, name):
        ranker = rankers[name]
        pool = _pool(ranker)
        session = ranker.scoring_session(QUERY, pool)
        target = pool[0]
        sentences = split_sentences(target.body)
        assert len(sentences) > 2
        removals = [
            set(combo)
            for size in (1, 2)
            for combo in itertools.combinations(range(len(sentences)), size)
        ]
        for removed in removals:
            survivors = " ".join(
                s.text for s in sentences if s.index not in removed
            )
            naive = _naive_substituted(ranker, pool, target.doc_id, survivors)
            assert (
                session.rank_without_sentences(target.doc_id, removed)
                == naive.rank_of(target.doc_id)
            ), (name, removed)

    def test_physical_scorings_are_incremental(self, rankers, name):
        ranker = rankers[name]
        pool = _pool(ranker)
        session = ranker.scoring_session(QUERY, pool)
        session.baseline()
        candidates = 7
        for i in range(candidates):
            session.rank_without_sentences(pool[0].doc_id, {i % 3})
        if isinstance(session, IncrementalScoringSession):
            # pool once + one scoring per candidate
            assert session.physical_scorings == len(pool) + candidates
        else:
            assert isinstance(session, NaiveScoringSession)
            assert session.physical_scorings == len(pool) * (1 + candidates)


class TestWrapperSessions:
    def test_score_cache_keeps_caching_for_opaque_inner(self, index):
        cached = ScoreCache(OpaqueRanker(Bm25Ranker(index)))
        pool = _pool(cached)
        session = cached.scoring_session(QUERY, pool)
        assert isinstance(session, NaiveScoringSession)
        assert session.ranker is cached  # pool re-scorings hit the cache
        session.baseline()
        session.rank_with_substitution(pool[0].doc_id, "covid outbreak note")
        assert cached.hits > 0

    def test_score_cache_delegates_incremental_sessions(self, index):
        cached = ScoreCache(Bm25Ranker(index))
        session = cached.scoring_session(QUERY, _pool(cached))
        assert isinstance(session, IncrementalScoringSession)


class TestSubstitutionMetadata:
    def test_replacement_with_new_metadata_is_honoured(self, rankers):
        from repro.ranking.rerank import rank_with_substitution

        ranker = rankers["ltr"]
        pool = _pool(ranker)
        original = pool[0]
        replacement = Document(
            original.doc_id,
            original.body,
            original.title,
            {**dict(original.metadata), "popularity": 0.0, "authority": 0.0},
        )
        via_function = rank_with_substitution(ranker, QUERY, pool, replacement)
        naive = ranker.rank_candidates(
            QUERY,
            [replacement if d.doc_id == original.doc_id else d for d in pool],
        )
        _assert_rankings_match(via_function, naive)


def _result_fingerprint(result):
    payload = result.to_dict()
    payload.pop("physical_scorings")  # the one field sessions improve
    return payload


@pytest.mark.parametrize("name", RANKER_NAMES)
class TestExplainerParity:
    """Explanation outputs must be identical to the pre-session path."""

    def test_document_cf(self, rankers, name):
        ranker = rankers[name]
        target = _pool(ranker)[0].doc_id
        fast = CounterfactualDocumentExplainer(ranker, max_evaluations=200)
        naive = CounterfactualDocumentExplainer(
            OpaqueRanker(ranker), max_evaluations=200
        )
        assert _result_fingerprint(
            fast.explain(QUERY, target, n=2, k=K)
        ) == _result_fingerprint(naive.explain(QUERY, target, n=2, k=K))

    def test_greedy(self, rankers, name):
        ranker = rankers[name]
        target = _pool(ranker)[0].doc_id
        fast = GreedyDocumentExplainer(ranker)
        naive = GreedyDocumentExplainer(OpaqueRanker(ranker))
        assert _result_fingerprint(
            fast.explain(QUERY, target, k=K)
        ) == _result_fingerprint(naive.explain(QUERY, target, k=K))

    def test_query_cf(self, rankers, name):
        ranker = rankers[name]
        ranking = ranker.rank(QUERY, K)
        target = ranking.doc_ids[-1]
        fast = CounterfactualQueryExplainer(ranker, max_evaluations=300)
        naive = CounterfactualQueryExplainer(
            OpaqueRanker(ranker), max_evaluations=300
        )
        fast_result = fast.explain(QUERY, target, n=1, k=K, threshold=1)
        naive_result = naive.explain(QUERY, target, n=1, k=K, threshold=1)
        assert _result_fingerprint(fast_result) == _result_fingerprint(
            naive_result
        )

    def test_validity_check_agrees(self, rankers, name):
        ranker = rankers[name]
        target = _pool(ranker)[0].doc_id
        fast = CounterfactualDocumentExplainer(ranker)
        naive = CounterfactualDocumentExplainer(OpaqueRanker(ranker))
        sentences = split_sentences(
            ranker.index.document(target).body
            if target in ranker.index
            else _pool(ranker)[0].body
        )
        for removed in ({0}, {0, 1}, {1, 2}):
            assert fast.is_valid(QUERY, target, removed, k=K) == naive.is_valid(
                QUERY, target, removed, k=K
            )
