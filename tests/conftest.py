"""Shared fixtures.

Expensive artefacts (the covid corpus engine, a trained neural ranker, a
Doc2Vec model) are session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.datasets.covid import covid_corpus, covid_training_queries
from repro.index.document import Document
from repro.index.inverted import InvertedIndex

TINY_DOCS = [
    Document(
        "d1",
        "The covid outbreak spread across the city. Hospitals filled quickly. "
        "Officials promised more tests.",
        metadata={"topic": "covid"},
    ),
    Document(
        "d2",
        "A new vaccine for covid was announced today by researchers. "
        "Trials begin next month.",
        metadata={"topic": "covid"},
    ),
    Document(
        "d3",
        "The flu season arrived early this year with many sick patients. "
        "Clinics extended their hours.",
        metadata={"topic": "flu"},
    ),
    Document(
        "d4",
        "Stock markets rallied as tech shares gained value. "
        "Investors cheered the earnings reports.",
        metadata={"topic": "finance"},
    ),
    Document(
        "d5",
        "Conspiracy theorists claim 5G towers caused the covid outbreak. "
        "A microchip plot supposedly tracks citizens. "
        "Experts dismissed the covid outbreak rumours.",
        metadata={"topic": "conspiracy"},
    ),
    Document(
        "d6",
        "City officials denied rumours about the outbreak response. "
        "A press briefing is scheduled for Monday.",
        metadata={"topic": "covid"},
    ),
]


@pytest.fixture()
def tiny_docs() -> list[Document]:
    return list(TINY_DOCS)


@pytest.fixture()
def tiny_index(tiny_docs) -> InvertedIndex:
    return InvertedIndex.from_documents(tiny_docs)


@pytest.fixture(scope="session")
def covid_documents() -> list[Document]:
    return covid_corpus()


@pytest.fixture(scope="session")
def bm25_engine(covid_documents) -> CredenceEngine:
    """A BM25 engine over the covid corpus (fast; read-only)."""
    config = EngineConfig(ranker="bm25", seed=5)
    return CredenceEngine(covid_documents, config)


@pytest.fixture(scope="session")
def neural_engine(covid_documents) -> CredenceEngine:
    """The demo neural pipeline engine (trained once per session)."""
    config = EngineConfig(
        ranker="neural",
        training_queries=tuple(covid_training_queries()),
        seed=5,
        neural_epochs=15,  # faster than the demo default; same behaviourally
    )
    return CredenceEngine(covid_documents, config)
