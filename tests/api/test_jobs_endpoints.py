"""REST tests for the async-job surface and the service-layer hardening:
``POST /jobs``, ``GET /jobs/{id}``, ``DELETE /jobs/{id}``,
``GET /metrics``, batch caps, and the request-body size cap."""

from __future__ import annotations

import time

import pytest

from repro.api.app import build_router, serve
from repro.api.client import HttpClient, InProcessClient
from repro.core.engine import CredenceEngine, EngineConfig

QUERY = "covid outbreak"
DOC = "d5"


@pytest.fixture()
def engine(tiny_docs) -> CredenceEngine:
    built = CredenceEngine(tiny_docs, EngineConfig(ranker="bm25", seed=5))
    yield built
    if built._service is not None:
        built._service.shutdown()


@pytest.fixture()
def client(engine) -> InProcessClient:
    return InProcessClient(build_router(engine))


def _await_job(client, job_id: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = client.get(f"/jobs/{job_id}").payload
        if payload["status"] not in ("pending", "running"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestJobRoutes:
    def test_submit_poll_result(self, client):
        response = client.post(
            "/jobs",
            {
                "requests": [
                    {"query": QUERY, "doc_id": DOC, "k": 5},
                    {
                        "query": QUERY,
                        "doc_id": DOC,
                        "strategy": "query/augmentation",
                        "k": 5,
                        "threshold": 2,
                    },
                ]
            },
        )
        assert response.status == 202
        assert response.payload["status"] in ("pending", "running", "done")
        assert response.payload["items_total"] == 2
        assert "responses" not in response.payload  # submit is a receipt

        payload = _await_job(client, response.payload["job_id"])
        assert payload["status"] == "done"
        assert payload["items"] == ["done", "done"]
        assert payload["items_done"] == 2
        assert all(
            item_response["elapsed_seconds"] >= 0.0
            for item_response in payload["responses"]
        )

    def test_single_request_shape(self, client):
        response = client.post(
            "/jobs", {"request": {"query": QUERY, "doc_id": DOC, "k": 5}}
        )
        assert response.status == 202
        assert response.payload["items_total"] == 1
        payload = _await_job(client, response.payload["job_id"])
        assert payload["status"] == "done"

    def test_both_shapes_rejected(self, client):
        response = client.post(
            "/jobs",
            {
                "request": {"query": QUERY, "doc_id": DOC},
                "requests": [{"query": QUERY, "doc_id": DOC}],
            },
        )
        assert response.status == 400

    def test_failure_isolation_in_job(self, client):
        response = client.post(
            "/jobs",
            {
                "requests": [
                    {"query": QUERY, "doc_id": DOC, "k": 5},
                    {"query": QUERY, "doc_id": "missing", "k": 5},
                ]
            },
        )
        payload = _await_job(client, response.payload["job_id"])
        assert payload["status"] == "done"
        assert payload["items"] == ["done", "error"]
        assert "missing" in payload["responses"][1]["error"]

    def test_unknown_job_is_404(self, client):
        assert client.get("/jobs/job-404").status == 404
        assert client.delete("/jobs/job-404").status == 404

    def test_cancel_route(self, client):
        response = client.post(
            "/jobs", {"request": {"query": QUERY, "doc_id": DOC, "k": 5}}
        )
        job_id = response.payload["job_id"]
        cancelled = client.delete(f"/jobs/{job_id}")
        assert cancelled.status == 200
        # tiny corpus: the job may finish before the cancel lands, or not
        # have started yet (cancel_requested flips; status follows later)
        assert cancelled.payload["status"] in (
            "pending", "running", "cancelled", "done",
        )
        assert (
            cancelled.payload["cancel_requested"]
            or cancelled.payload["status"] == "done"
        )
        final = _await_job(client, job_id)
        assert final["status"] in ("cancelled", "done")

    def test_invalid_item_is_clean_400(self, client):
        response = client.post(
            "/jobs", {"requests": [{"query": QUERY, "typo_field": 1}]}
        )
        assert response.status == 400


class TestMetricsRoute:
    def test_metrics_shape_and_cache_hits(self, client):
        body = {"query": QUERY, "doc_id": DOC, "k": 5}
        assert client.post("/explanations", body).status == 200
        assert client.post("/explanations", body).status == 200
        payload = client.get("/metrics").payload
        assert payload["store"]["hits"] >= 1
        assert payload["cache_hit_rate"] > 0.0
        assert payload["store"]["entries"] >= 1
        assert payload["workers"] >= 1
        assert "p95_seconds" in payload["item_latency"]


class TestBatchCaps:
    def test_oversized_batch_rejected(self, client):
        body = {
            "requests": [{"query": QUERY, "doc_id": DOC}] * 101
        }
        response = client.post("/explanations/batch", body)
        assert response.status == 400
        assert "<= 100" in response.payload["detail"]
        assert client.post("/jobs", body).status == 400

    def test_configurable_cap(self, engine):
        client = InProcessClient(build_router(engine, max_batch_items=2))
        body = {"requests": [{"query": QUERY, "doc_id": DOC, "k": 5}] * 3}
        assert client.post("/explanations/batch", body).status == 400
        assert client.post("/jobs", body).status == 400
        small = {"requests": [{"query": QUERY, "doc_id": DOC, "k": 5}] * 2}
        assert client.post("/explanations/batch", small).status == 200

    def test_batch_route_runs_through_the_pool_and_store(self, client, engine):
        body = {"requests": [{"query": QUERY, "doc_id": DOC, "k": 5}] * 2}
        response = client.post("/explanations/batch", body)
        assert response.status == 200
        assert response.payload["count"] == 2
        assert engine.service().metrics.counter("jobs_submitted") >= 1


class TestBodySizeCap:
    def test_oversized_body_is_clean_400_over_http(self, engine):
        server = serve(engine, port=0, max_body_bytes=10_000)
        try:
            client = HttpClient(server.url)
            response = client.post(
                "/explanations",
                {"query": "x" * 50_000, "doc_id": DOC},
            )
            assert response.status == 400
            assert "byte" in response.payload["detail"]
            # the connection/service still works afterwards
            ok = client.post(
                "/explanations", {"query": QUERY, "doc_id": DOC, "k": 5}
            )
            assert ok.status == 200
        finally:
            server.stop()
