"""Tests for the live HTTP server (sockets, threading, JSON wire format)."""

import pytest

from repro.api.app import serve
from repro.api.client import HttpClient
from repro.datasets.covid import FAKE_NEWS_DOC_ID

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def live(module_engine):
    server = serve(module_engine, port=0)  # ephemeral port
    try:
        yield HttpClient(server.url)
    finally:
        server.stop()


@pytest.fixture(scope="module")
def module_engine():
    from repro.core.engine import CredenceEngine, EngineConfig
    from repro.datasets.covid import covid_corpus

    return CredenceEngine(covid_corpus(), EngineConfig(ranker="bm25", seed=5))


class TestLiveServer:
    def test_health_over_http(self, live):
        response = live.get("/health")
        assert response.status == 200
        assert response.payload["status"] == "ok"

    def test_rank_over_http(self, live):
        response = live.post("/rank", {"query": QUERY, "k": 5})
        assert response.status == 200
        assert len(response.payload["ranking"]) == 5

    def test_error_status_over_http(self, live):
        response = live.post("/rank", {"query": ""})
        assert response.status == 400
        assert response.payload["error"] == "BadRequestError"

    def test_not_found_over_http(self, live):
        assert live.get("/missing/route").status == 404

    def test_builder_over_http(self, live):
        response = live.post(
            "/builder/rerank",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "k": 10,
                "perturbations": [{"type": "remove_term", "term": "covid"}],
            },
        )
        assert response.status == 200
        assert "rank_after" in response.payload

    def test_concurrent_requests(self, live):
        import concurrent.futures

        def fetch(_):
            return live.post("/rank", {"query": QUERY, "k": 3}).status

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            statuses = list(pool.map(fetch, range(8)))
        assert statuses == [200] * 8
