"""Streaming surface tests: ``POST /explanations/stream`` (NDJSON
progress then result) and ``GET /jobs/{id}/progress`` — in-process, so
they exercise the route logic, the progress sink plumbing, and the
chunk shapes without a socket."""

from __future__ import annotations

import pytest

from repro.api.client import InProcessClient
from repro.api.endpoints import register_endpoints
from repro.api.http import Router, StreamingResponse
from repro.core.engine import CredenceEngine, EngineConfig
from repro.service.scheduler import ExplanationService


@pytest.fixture()
def engine(tiny_docs):
    return CredenceEngine(tiny_docs, EngineConfig(ranker="bm25", seed=5))


@pytest.fixture()
def service(engine):
    service = ExplanationService(engine, workers=1)
    yield service
    service.shutdown()


@pytest.fixture()
def client(engine, service):
    return InProcessClient(register_endpoints(Router(), engine, service=service))


def _explain_body(**overrides) -> dict:
    body = {
        "query": "covid outbreak",
        "doc_id": "d5",
        "strategy": "document/sentence-removal",
        "k": 5,
    }
    body.update(overrides)
    return body


class TestExplainStream:
    def test_stream_ends_with_result_chunk(self, client):
        chunks = list(client.post_stream("/explanations/stream", _explain_body()))
        assert chunks, "stream produced nothing"
        final = chunks[-1]
        assert final["event"] == "result"
        assert final["response"]["doc_id"] == "d5"
        assert "explanations" in final["response"]
        # Everything before the result is progress, in-order.
        for chunk in chunks[:-1]:
            assert chunk["event"] == "progress"
            assert chunk["candidates_evaluated"] >= 0
            assert "strategy" in chunk

    def test_progress_chunks_carry_search_state(self, client):
        # The anytime strategy emits per-candidate progress; ask for it
        # explicitly so at least one progress chunk is all but certain.
        chunks = list(
            client.post_stream(
                "/explanations/stream",
                _explain_body(strategy="document/sentence-removal"),
            )
        )
        progress = [c for c in chunks if c["event"] == "progress"]
        for snapshot in progress:
            assert set(snapshot) >= {
                "event",
                "strategy",
                "candidates_evaluated",
                "explanations_found",
            }

    def test_stream_result_matches_sync_route(self, client):
        streamed = list(
            client.post_stream("/explanations/stream", _explain_body())
        )[-1]["response"]
        synced = client.post("/explanations", _explain_body()).payload
        assert streamed == synced

    def test_error_is_streamed_as_error_event(self, client):
        chunks = list(
            client.post_stream(
                "/explanations/stream", _explain_body(doc_id="ghost")
            )
        )
        assert chunks[-1]["event"] == "error"
        assert chunks[-1]["error"]["type"] == "RankingError"

    def test_malformed_body_is_rejected_not_streamed(self, client):
        chunks = list(client.post_stream("/explanations/stream", {}))
        assert len(chunks) == 1
        assert chunks[0]["event"] == "rejected"
        assert chunks[0]["status"] == 400

    def test_admission_refusal_is_a_rejected_chunk(self, engine, service):
        service.configure_admission(rate_limit=0.001, rate_burst=1.0)
        client = InProcessClient(
            register_endpoints(Router(), engine, service=service)
        )
        assert client.post("/explanations", _explain_body()).status == 200
        chunks = list(
            client.post_stream("/explanations/stream", _explain_body())
        )
        assert len(chunks) == 1
        assert chunks[0]["event"] == "rejected"
        assert chunks[0]["status"] == 429
        assert "retry-after" in {k.lower() for k in chunks[0]["headers"]}

    def test_route_returns_streaming_response_type(self, engine, service):
        router = register_endpoints(Router(), engine, service=service)
        from repro.api.http import Request

        response = router.dispatch(
            Request(method="POST", path="/explanations/stream", body=_explain_body())
        )
        assert isinstance(response, StreamingResponse)
        assert response.status == 200


class TestJobProgressRoute:
    def test_progress_shape_tracks_items(self, client):
        accepted = client.post(
            "/jobs",
            {"requests": [_explain_body(), _explain_body(doc_id="d4")]},
        )
        assert accepted.status == 202
        job_id = accepted.payload["job_id"]
        # Wait for the job to finish, then read its final progress.
        deadline_status = None
        for _ in range(200):
            deadline_status = client.get(f"/jobs/{job_id}").payload["status"]
            if deadline_status in ("done", "failed"):
                break
            import time

            time.sleep(0.01)
        assert deadline_status == "done"
        progress = client.get(f"/jobs/{job_id}/progress").payload
        assert progress["job_id"] == job_id
        assert progress["priority"] == "batch"
        assert len(progress["progress"]) == 2
        for snapshot in progress["progress"]:
            # Each executed item left its last search snapshot behind.
            assert snapshot is None or "candidates_evaluated" in snapshot

    def test_unknown_job_is_404(self, client):
        assert client.get("/jobs/ghost/progress").status == 404
