"""Tests for the HTTP routing substrate."""

import pytest

from repro.api.http import HttpResponse, Request, Router
from repro.errors import BadRequestError


@pytest.fixture()
def router():
    r = Router()

    @r.get("/items/{item_id}")
    def get_item(request: Request):
        return {"item": request.path_params["item_id"]}

    @r.post("/items")
    def create_item(request: Request):
        return HttpResponse(201, {"created": request.body})

    @r.get("/boom")
    def boom(_: Request):
        raise BadRequestError("expected failure")

    @r.get("/crash")
    def crash(_: Request):
        raise ValueError("unexpected but mapped")

    return r


class TestRouting:
    def test_path_params_extracted(self, router):
        response = router.dispatch(Request("GET", "/items/42"))
        assert response.status == 200
        assert response.payload == {"item": "42"}

    def test_post_with_body(self, router):
        response = router.dispatch(Request("POST", "/items", body={"a": 1}))
        assert response.status == 201
        assert response.payload == {"created": {"a": 1}}

    def test_unknown_path_404(self, router):
        response = router.dispatch(Request("GET", "/nope"))
        assert response.status == 404
        assert response.payload["error"] == "NotFoundError"

    def test_wrong_method_405(self, router):
        response = router.dispatch(Request("POST", "/items/42"))
        assert response.status == 405

    def test_api_error_mapped(self, router):
        response = router.dispatch(Request("GET", "/boom"))
        assert response.status == 400
        assert response.payload["detail"] == "expected failure"

    def test_value_error_becomes_bad_request(self, router):
        response = router.dispatch(Request("GET", "/crash"))
        assert response.status == 400

    def test_pattern_does_not_match_extra_segments(self, router):
        response = router.dispatch(Request("GET", "/items/1/extra"))
        assert response.status == 404
