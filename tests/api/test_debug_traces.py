"""The REST observability surface: request ids, ``/debug/traces``, the
``profile`` debug block, and Prometheus exposition."""

from __future__ import annotations

import time

import pytest

from repro.api.app import build_router
from repro.api.client import InProcessClient
from repro.api.http import TextResponse
from repro.core.engine import CredenceEngine, EngineConfig
from repro.index.document import Document
from repro.obs import PROMETHEUS_CONTENT_TYPE, Tracer

QUERY = "covid outbreak"
DOC = "d5"

DOCS = [
    Document("d5", "The covid outbreak spread quickly. Experts dismissed "
                   "the covid outbreak rumours. Officials promised tests."),
    Document("d6", "City officials denied rumours about the outbreak "
                   "response. A press briefing is scheduled."),
    Document("d7", "Stock markets rallied as tech shares gained value."),
    Document("d8", "The flu season arrived early with many sick patients."),
]

EXPLAIN_BODY = {
    "query": QUERY,
    "doc_id": DOC,
    "strategy": "document/sentence-removal",
    "n": 1,
    "k": 4,
}


@pytest.fixture()
def engine():
    engine = CredenceEngine(DOCS, EngineConfig(ranker="bm25", seed=5))
    yield engine
    engine.service().shutdown()


@pytest.fixture()
def client(engine):
    return InProcessClient(build_router(engine))


class TestRequestIdContract:
    def test_client_supplied_id_is_echoed(self, client):
        response = client.get("/health", headers={"X-Request-Id": "my-id-1"})
        assert response.headers["X-Request-Id"] == "my-id-1"

    def test_missing_id_is_generated(self, client):
        rid = client.get("/health").headers["X-Request-Id"]
        assert len(rid) == 16
        int(rid, 16)

    def test_each_request_gets_a_fresh_id(self, client):
        first = client.get("/health").headers["X-Request-Id"]
        second = client.get("/health").headers["X-Request-Id"]
        assert first != second

    def test_404_and_405_carry_the_header(self, client):
        assert "X-Request-Id" in client.get("/no-such-route").headers
        assert "X-Request-Id" in client.delete("/health").headers

    def test_disabled_tracer_adds_no_header(self, engine):
        router = build_router(engine, tracer=Tracer(enabled=False))
        response = InProcessClient(router).get("/health")
        assert "X-Request-Id" not in response.headers


class TestDebugTraces:
    def test_listing_shows_recent_requests_newest_first(self, client):
        client.get("/health", headers={"X-Request-Id": "older"})
        client.get("/strategies", headers={"X-Request-Id": "newer"})
        listing = client.get("/debug/traces")
        assert listing.status == 200
        assert listing.payload["enabled"] is True
        ids = [t["request_id"] for t in listing.payload["traces"]]
        assert ids.index("newer") < ids.index("older")

    def test_detail_contains_the_span_tree(self, client):
        client.post(
            "/explanations",
            EXPLAIN_BODY,
            headers={"X-Request-Id": "traced-explain"},
        )
        detail = client.get("/debug/traces/traced-explain")
        assert detail.status == 200
        names = [s["name"] for s in detail.payload["spans"]]
        for expected in (
            "admission/decide",
            "store/lookup",
            "service/compute",
            "engine/explain",
            "search/run",
        ):
            assert expected in names, names
        # the search span carries the kernel accounting
        search = next(
            s for s in detail.payload["spans"] if s["name"] == "search/run"
        )
        assert search["attributes"]["candidates_evaluated"] >= 1
        assert "budget_spent" in search["attributes"]
        # compute parents onto the trace's span tree
        compute = next(
            s for s in detail.payload["spans"] if s["name"] == "service/compute"
        )
        assert compute["attributes"]["strategy"] == "document/sentence-removal"
        assert detail.payload["counters"].get("sessions/opened", 0) >= 1

    def test_unknown_request_id_is_404(self, client):
        assert client.get("/debug/traces/ghost").status == 404

    def test_disabled_tracer_reports_disabled(self, engine):
        router = build_router(engine, tracer=Tracer(enabled=False))
        listing = InProcessClient(router).get("/debug/traces")
        assert listing.payload == {
            "enabled": False,
            "count": 0,
            "traces": [],
        }

    def test_slow_ring_via_query_param(self, engine):
        router = build_router(
            engine, tracer=Tracer(slow_threshold_ms=0.0)
        )
        slow_client = InProcessClient(router)
        slow_client.get("/health", headers={"X-Request-Id": "slowpoke"})
        listing = slow_client.get(
            "/debug/traces", query_params={"slow": "1"}
        )
        assert listing.payload["slow_threshold_ms"] == 0.0
        ids = [t["request_id"] for t in listing.payload["traces"]]
        assert "slowpoke" in ids

    def test_async_job_spans_land_in_the_submit_trace(self, client):
        submitted = client.post(
            "/jobs",
            {"requests": [EXPLAIN_BODY]},
            headers={"X-Request-Id": "job-trace"},
        )
        assert submitted.status == 202
        job_id = submitted.payload["job_id"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            status = client.get(f"/jobs/{job_id}").payload["status"]
            if status not in ("pending", "running"):
                break
            time.sleep(0.02)
        detail = client.get("/debug/traces/job-trace")
        names = [s["name"] for s in detail.payload["spans"]]
        # Spans appended by the pool worker after the 202 went out are
        # visible because the ring renders live traces at read time.
        assert "queue/wait" in names
        assert "item/execute" in names


class TestProfileBlock:
    def test_profile_true_adds_debug_block(self, client):
        response = client.post(
            "/explanations", {**EXPLAIN_BODY, "profile": True}
        )
        assert response.status == 200
        debug = response.payload["debug"]
        assert debug["enabled"] is True
        assert debug["total_ms"] >= 0.0
        stage_names = [s["name"] for s in debug["stages"]]
        assert "engine/explain" in stage_names

    def test_profile_false_or_absent_means_no_block(self, client):
        assert "debug" not in client.post("/explanations", EXPLAIN_BODY).payload
        assert "debug" not in client.post(
            "/explanations", {**EXPLAIN_BODY, "profile": False}
        ).payload

    def test_profile_does_not_change_the_result(self, client):
        plain = client.post("/explanations", EXPLAIN_BODY).payload
        profiled = client.post(
            "/explanations", {**EXPLAIN_BODY, "profile": True}
        ).payload
        profiled.pop("debug")
        # Identical including elapsed_seconds: the profile flag never
        # reaches the request, so the second call is a store hit.
        assert profiled == plain

    def test_profile_must_be_boolean(self, client):
        response = client.post(
            "/explanations", {**EXPLAIN_BODY, "profile": "yes"}
        )
        assert response.status == 400

    def test_profile_with_tracing_off_reports_disabled(self, engine):
        router = build_router(engine, tracer=Tracer(enabled=False))
        response = InProcessClient(router).post(
            "/explanations", {**EXPLAIN_BODY, "profile": True}
        )
        assert response.payload["debug"] == {"enabled": False}


class TestPrometheusEndpoint:
    def test_prometheus_format_returns_exposition_text(self, client):
        client.post("/explanations", EXPLAIN_BODY)
        response = client.get(
            "/metrics", query_params={"format": "prometheus"}
        )
        assert isinstance(response, TextResponse)
        assert response.status == 200
        assert response.content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_uptime_seconds gauge" in response.text
        assert "repro_requests_admitted_total 1" in response.text

    def test_json_remains_the_default(self, client):
        response = client.get("/metrics")
        assert response.status == 200
        assert "counters" in response.payload

    def test_unknown_format_is_400(self, client):
        response = client.get("/metrics", query_params={"format": "xml"})
        assert response.status == 400
