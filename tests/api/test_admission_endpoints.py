"""REST admission tests: typed refusals become 429/503 + Retry-After,
clients are isolated by ``X-Client-Id``, and the retrying
:class:`HttpClient` honours all of it — exercised through an injected
transport, no socket needed."""

from __future__ import annotations

import urllib.error

import pytest

from repro.api.app import build_router
from repro.api.client import (
    DEFAULT_RETRY_POLICY,
    HttpClient,
    InProcessClient,
    RetryPolicy,
)
from repro.api.endpoints import register_endpoints
from repro.api.http import HttpResponse, Router
from repro.core.engine import CredenceEngine, EngineConfig
from repro.service.admission import CircuitBreaker
from repro.service.scheduler import ExplanationService


@pytest.fixture()
def engine(tiny_docs):
    return CredenceEngine(tiny_docs, EngineConfig(ranker="bm25", seed=5))


def _client(engine, service: ExplanationService) -> InProcessClient:
    router = register_endpoints(Router(), engine, service=service)
    return InProcessClient(router)


def _explain_body(doc_id: str = "d5") -> dict:
    return {
        "query": "covid outbreak",
        "doc_id": doc_id,
        "strategy": "document/sentence-removal",
        "k": 5,
    }


class TestRateLimiting:
    def test_second_request_is_429_with_retry_after(self, engine):
        service = ExplanationService(engine, workers=1).configure_admission(
            rate_limit=0.001, rate_burst=1.0
        )
        try:
            client = _client(engine, service)
            ok = client.post("/explanations", _explain_body())
            assert ok.status == 200
            refused = client.post("/explanations", _explain_body())
            assert refused.status == 429
            assert refused.payload["error"] == "TooManyRequestsError"
            assert int(refused.headers["Retry-After"]) >= 1
            assert service.metrics.counter("requests_rate_limited") == 1
        finally:
            service.shutdown()

    def test_clients_are_isolated_by_header(self, engine):
        service = ExplanationService(engine, workers=1).configure_admission(
            rate_limit=0.001, rate_burst=1.0
        )
        try:
            client = _client(engine, service)
            alice = {"X-Client-Id": "alice"}
            bob = {"X-Client-Id": "bob"}
            assert client.post(
                "/explanations", _explain_body(), headers=alice
            ).status == 200
            assert client.post(
                "/explanations", _explain_body(), headers=alice
            ).status == 429
            # Bob's bucket is untouched by Alice's burn.
            assert client.post(
                "/explanations", _explain_body(), headers=bob
            ).status == 200
        finally:
            service.shutdown()


class TestLoadShedding:
    def test_oversized_job_is_shed_with_429(self, engine):
        service = ExplanationService(engine, workers=1).configure_admission(
            max_queue_depth=1
        )
        try:
            client = _client(engine, service)
            body = {"requests": [_explain_body(), _explain_body("d4")]}
            refused = client.post("/jobs", body)
            assert refused.status == 429
            assert "Retry-After" in refused.headers
            assert service.metrics.counter("requests_shed") == 1
            # A one-item job fits the bound.
            accepted = client.post(
                "/jobs", {"requests": [_explain_body()]}
            )
            assert accepted.status == 202
        finally:
            service.shutdown()

    def test_sync_explain_is_never_depth_shed(self, engine):
        # enqueue_items=0: sync requests run in the caller's thread.
        service = ExplanationService(engine, workers=1).configure_admission(
            max_queue_depth=1
        )
        try:
            client = _client(engine, service)
            assert client.post("/explanations", _explain_body()).status == 200
        finally:
            service.shutdown()


class TestBreakerAndDraining:
    def test_open_breaker_is_503(self, engine):
        breaker = CircuitBreaker(
            failure_threshold=0.5, min_samples=1, cooldown_seconds=60.0
        )
        breaker.record_failure()
        service = ExplanationService(engine, workers=1).configure_admission(
            breaker=breaker
        )
        try:
            client = _client(engine, service)
            refused = client.post("/explanations", _explain_body())
            assert refused.status == 503
            assert refused.payload["error"] == "ServiceUnavailableError"
            assert "Retry-After" in refused.headers
        finally:
            service.shutdown()

    def test_draining_service_is_503(self, engine):
        service = ExplanationService(engine, workers=1)
        service.drain(wait=True)
        client = _client(engine, service)
        refused = client.post("/explanations", _explain_body())
        assert refused.status == 503
        assert service.metrics.counter("requests_rejected_draining") == 1


class TestPriorityField:
    def test_invalid_priority_is_400(self, engine):
        service = ExplanationService(engine, workers=1)
        try:
            client = _client(engine, service)
            body = {
                "requests": [_explain_body()],
                "priority": "urgent",
            }
            response = client.post("/jobs", body)
            assert response.status == 400
        finally:
            service.shutdown()

    def test_named_priority_lands_on_the_job(self, engine):
        service = ExplanationService(engine, workers=1)
        try:
            client = _client(engine, service)
            body = {
                "requests": [_explain_body()],
                "priority": "interactive",
            }
            accepted = client.post("/jobs", body)
            assert accepted.status == 202
            job_id = accepted.payload["job_id"]
            progress = client.get(f"/jobs/{job_id}/progress")
            assert progress.status == 200
            assert progress.payload["priority"] == "interactive"
        finally:
            service.shutdown()


class TestMetricsRoute:
    def test_metrics_exposes_admission_and_breaker_state(self, engine):
        service = ExplanationService(engine, workers=1).configure_admission(
            rate_limit=5.0, max_queue_depth=8
        )
        try:
            client = _client(engine, service)
            payload = client.get("/metrics").payload
            assert payload["admission"]["max_queue_depth"] == 8
            assert payload["admission"]["circuit_breaker"] == "closed"
            assert payload["draining"] is False
        finally:
            service.shutdown()


# -- client retry behaviour (injected transport, no socket) -----------------


class _ScriptedTransport:
    """Replays a fixed sequence of responses/exceptions and records calls."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def __call__(self, method, path, body=None, headers=None):
        self.calls.append((method, path))
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _http_client(transport, retry=None) -> tuple[HttpClient, list[float]]:
    sleeps: list[float] = []
    client = HttpClient(
        "http://test",
        retry=retry,
        sleep=sleeps.append,
        rng=lambda: 1.0,  # deterministic full-jitter upper bound
        transport=transport,
    )
    return client, sleeps


class TestRetryPolicy:
    def test_defaults(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.retry_statuses == frozenset({429, 503})
        assert not DEFAULT_RETRY_POLICY.retry_non_idempotent

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=0.3
        )
        rng = lambda: 1.0  # noqa: E731
        assert policy.delay_seconds(0, rng=rng) == pytest.approx(0.1)
        assert policy.delay_seconds(1, rng=rng) == pytest.approx(0.2)
        assert policy.delay_seconds(5, rng=rng) == pytest.approx(0.3)

    def test_server_retry_after_wins_but_is_capped(self):
        policy = RetryPolicy(max_delay_seconds=5.0)
        assert policy.delay_seconds(0, retry_after=2.0) == 2.0
        assert policy.delay_seconds(0, retry_after=60.0) == 5.0


class TestHttpClientRetries:
    def test_get_retries_on_429_honouring_retry_after(self):
        transport = _ScriptedTransport(
            [
                HttpResponse(429, {}, headers={"retry-after": "2"}),
                HttpResponse(200, {"ok": True}),
            ]
        )
        client, sleeps = _http_client(transport)
        response = client.get("/metrics")
        assert response.status == 200
        assert len(transport.calls) == 2
        assert sleeps == [2.0]

    def test_attempts_are_bounded(self):
        transport = _ScriptedTransport(
            [HttpResponse(503, {})] * 5
        )
        client, sleeps = _http_client(
            transport, retry=RetryPolicy(max_attempts=3)
        )
        response = client.get("/health")
        assert response.status == 503  # gave up, surfaced the last answer
        assert len(transport.calls) == 3
        assert len(sleeps) == 2

    def test_post_is_not_retried_by_default(self):
        transport = _ScriptedTransport([HttpResponse(429, {})])
        client, sleeps = _http_client(transport)
        response = client.post("/explanations", _explain_body())
        assert response.status == 429
        assert len(transport.calls) == 1
        assert sleeps == []

    def test_post_retries_when_opted_in(self):
        transport = _ScriptedTransport(
            [HttpResponse(429, {}), HttpResponse(200, {"ok": True})]
        )
        client, _ = _http_client(
            transport, retry=RetryPolicy(retry_non_idempotent=True)
        )
        assert client.post("/explanations", _explain_body()).status == 200
        assert len(transport.calls) == 2

    def test_connection_errors_retry_for_get(self):
        transport = _ScriptedTransport(
            [
                urllib.error.URLError("refused"),
                HttpResponse(200, {"ok": True}),
            ]
        )
        client, sleeps = _http_client(transport)
        assert client.get("/health").status == 200
        assert len(sleeps) == 1

    def test_connection_errors_reraise_after_exhaustion(self):
        transport = _ScriptedTransport(
            [urllib.error.URLError("refused")] * 3
        )
        client, _ = _http_client(transport, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(urllib.error.URLError):
            client.get("/health")
        assert len(transport.calls) == 3
