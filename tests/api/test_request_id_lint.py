"""Lint: every REST route participates in request-id propagation.

The ``X-Request-Id`` contract lives in ``Router.dispatch`` — *below*
every route — so no endpoint can opt out. This test makes that
structural claim executable: it enumerates the router's registered
routes, demands a sample request for each one (adding a route without
extending the table fails loudly), dispatches them all, and asserts the
header comes back on every response — success, client error, and
streaming alike.
"""

from __future__ import annotations

import pytest

from repro.api.app import build_router
from repro.api.http import Request, StreamingResponse
from repro.core.engine import CredenceEngine, EngineConfig
from repro.index.document import Document

QUERY = "covid outbreak"
DOC = "d5"

DOCS = [
    Document("d5", "The covid outbreak spread quickly. Experts dismissed "
                   "the covid outbreak rumours. Officials promised tests."),
    Document("d6", "City officials denied rumours about the outbreak "
                   "response. A press briefing is scheduled."),
    Document("d7", "Stock markets rallied as tech shares gained value."),
    Document("d8", "The flu season arrived early with many sick patients."),
]

_EXPLAIN = {"query": QUERY, "doc_id": DOC, "n": 1, "k": 4}

#: One sample request per registered route, keyed by the route's
#: (method, compiled pattern). The request does not have to succeed —
#: the contract covers refusals too — it only has to *reach* the route.
SAMPLE_REQUESTS: dict[tuple[str, str], Request] = {
    (method, pattern): Request(method=method, path=path, body=body)
    for method, pattern, path, body in [
        ("GET", "^/health$", "/health", None),
        ("GET", "^/strategies$", "/strategies", None),
        (
            "GET",
            "^/documents/(?P<doc_id>[^/]+)$",
            f"/documents/{DOC}",
            None,
        ),
        ("POST", "^/rank$", "/rank", {"query": QUERY, "k": 2}),
        ("GET", "^/index$", "/index", None),
        # deliberately invalid body: a 400 must carry the header too
        ("POST", "^/index/save$", "/index/save", {}),
        (
            "POST",
            "^/index/documents$",
            "/index/documents",
            {"documents": [{"doc_id": "new-1", "body": "fresh outbreak news"}]},
        ),
        (
            "DELETE",
            "^/index/documents/(?P<doc_id>[^/]+)$",
            "/index/documents/new-1",
            None,
        ),
        ("POST", "^/explanations$", "/explanations", dict(_EXPLAIN)),
        (
            "POST",
            "^/explanations/stream$",
            "/explanations/stream",
            dict(_EXPLAIN),
        ),
        (
            "POST",
            "^/explanations/batch$",
            "/explanations/batch",
            {"query": QUERY, "doc_ids": [DOC], "n": 1, "k": 4},
        ),
        ("POST", "^/jobs$", "/jobs", {"requests": [dict(_EXPLAIN)]}),
        ("GET", "^/jobs/(?P<job_id>[^/]+)$", "/jobs/ghost", None),
        (
            "GET",
            "^/jobs/(?P<job_id>[^/]+)/progress$",
            "/jobs/ghost/progress",
            None,
        ),
        ("DELETE", "^/jobs/(?P<job_id>[^/]+)$", "/jobs/ghost", None),
        ("GET", "^/metrics$", "/metrics", None),
        ("GET", "^/debug/traces$", "/debug/traces", None),
        (
            "GET",
            "^/debug/traces/(?P<request_id>[^/]+)$",
            "/debug/traces/ghost",
            None,
        ),
        (
            "POST",
            "^/explanations/document$",
            "/explanations/document",
            dict(_EXPLAIN),
        ),
        (
            "POST",
            "^/explanations/query$",
            "/explanations/query",
            {**_EXPLAIN, "threshold": 2},
        ),
        (
            "POST",
            "^/explanations/instance$",
            "/explanations/instance",
            {**_EXPLAIN, "samples": 5},
        ),
        (
            "POST",
            "^/builder/rerank$",
            "/builder/rerank",
            {"query": QUERY, "doc_id": DOC, "k": 4},
        ),
        ("POST", "^/topics$", "/topics", {"num_topics": 2}),
    ]
}


@pytest.fixture(scope="module")
def router():
    engine = CredenceEngine(DOCS, EngineConfig(ranker="bm25", seed=5))
    router = build_router(engine)
    yield router
    engine.service().shutdown()


def test_sample_table_covers_the_route_table_exactly(router):
    registered = {
        (route.method, route.pattern.pattern) for route in router._routes
    }
    missing = registered - set(SAMPLE_REQUESTS)
    stale = set(SAMPLE_REQUESTS) - registered
    assert not missing, (
        "routes with no request-id lint sample (add one to "
        f"SAMPLE_REQUESTS): {sorted(missing)}"
    )
    assert not stale, f"samples for unregistered routes: {sorted(stale)}"


def test_every_route_response_carries_a_request_id(router):
    for (method, pattern), request in sorted(SAMPLE_REQUESTS.items()):
        response = router.dispatch(request)
        assert "X-Request-Id" in response.headers, (method, pattern)
        if isinstance(response, StreamingResponse):
            list(response.chunks)  # drain so pool work finishes cleanly


def test_every_route_response_echoes_a_client_id(router):
    for (method, pattern), request in sorted(SAMPLE_REQUESTS.items()):
        tagged = Request(
            method=request.method,
            path=request.path,
            body=request.body,
            headers={"X-Request-Id": "lint-echo"},
        )
        response = router.dispatch(tagged)
        assert response.headers["X-Request-Id"] == "lint-echo", (
            method,
            pattern,
        )
        if isinstance(response, StreamingResponse):
            list(response.chunks)
