"""Integration tests for the unified explanation routes:
``POST /explanations``, ``POST /explanations/batch``, ``GET /strategies``,
and legacy-route equivalence."""

import pytest

from repro.api.app import build_router
from repro.api.client import InProcessClient
from repro.datasets.covid import FAKE_NEWS_DOC_ID

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def module_engine():
    from repro.core.engine import CredenceEngine, EngineConfig
    from repro.datasets.covid import covid_corpus

    return CredenceEngine(covid_corpus(), EngineConfig(ranker="bm25", seed=5))


@pytest.fixture(scope="module")
def client(module_engine):
    return InProcessClient(build_router(module_engine))


class TestStrategiesEndpoint:
    def test_lists_strategies_with_availability(self, client):
        response = client.get("/strategies")
        assert response.status == 200
        records = {
            record["name"]: record
            for record in response.payload["strategies"]
        }
        assert records["document/sentence-removal"]["available"] is True
        assert records["features/ltr"]["available"] is False
        assert records["query/augmentation"]["description"]

    def test_health_reports_available_strategies(self, client):
        payload = client.get("/health").payload
        assert "document/sentence-removal" in payload["strategies"]
        assert "features/ltr" not in payload["strategies"]


class TestUnifiedExplanations:
    @pytest.mark.parametrize(
        "strategy",
        [
            "document/sentence-removal",
            "document/greedy",
            "query/augmentation",
            "instance/doc2vec",
            "instance/cosine",
        ],
    )
    def test_each_strategy_reachable(self, client, strategy):
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "strategy": strategy,
                "samples": 30,
            },
        )
        assert response.status == 200
        payload = response.payload
        assert payload["strategy"] == strategy
        assert payload["explanations"]
        assert payload["elapsed_seconds"] >= 0.0

    def test_default_strategy(self, client):
        response = client.post(
            "/explanations", {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID}
        )
        assert response.status == 200
        assert response.payload["strategy"] == "document/sentence-removal"

    def test_instance_strategy_attaches_bodies(self, client):
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "strategy": "instance/cosine",
                "n": 2,
                "samples": 30,
            },
        )
        assert response.status == 200
        for explanation in response.payload["explanations"]:
            assert explanation["counterfactual_body"]

    def test_unknown_strategy_400(self, client):
        response = client.post(
            "/explanations",
            {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "strategy": "magic"},
        )
        assert response.status == 400
        assert "unknown explanation strategy" in response.payload["detail"]

    def test_unavailable_strategy_400(self, client):
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "strategy": "features/ltr",
            },
        )
        assert response.status == 400
        assert "unavailable" in response.payload["detail"]

    def test_unranked_document_400(self, client):
        response = client.post(
            "/explanations", {"query": QUERY, "doc_id": "markets-0002"}
        )
        assert response.status == 400

    def test_unknown_field_rejected_not_ignored(self, client):
        # The legacy instance-route shape must not silently run the
        # default strategy on the unified route.
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "method": "cosine_sampled",
            },
        )
        assert response.status == 400
        assert "unknown request field" in response.payload["detail"]
        assert "method" in response.payload["detail"]

    def test_invalid_shapes_400(self, client):
        assert client.post("/explanations", {"query": QUERY}).status == 400
        assert (
            client.post(
                "/explanations",
                {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "strategy": 3},
            ).status
            == 400
        )
        assert (
            client.post(
                "/explanations",
                {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 0},
            ).status
            == 400
        )


class TestBatchEndpoint:
    def test_batch_preserves_order_and_isolates_errors(self, client):
        response = client.post(
            "/explanations/batch",
            {
                "requests": [
                    {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID},
                    {"query": QUERY, "doc_id": "ghost-doc"},
                    {
                        "query": QUERY,
                        "doc_id": FAKE_NEWS_DOC_ID,
                        "strategy": "instance/cosine",
                        "samples": 30,
                    },
                ]
            },
        )
        assert response.status == 200
        payload = response.payload
        assert payload["count"] == 3
        first, second, third = payload["responses"]
        assert first["strategy"] == "document/sentence-removal"
        assert first["explanations"]
        assert "error" in second and "RankingError" in second["error"]
        assert third["strategy"] == "instance/cosine"
        assert all(
            "counterfactual_body" in e for e in third["explanations"]
        )

    def test_batch_requires_requests(self, client):
        assert client.post("/explanations/batch", {}).status == 400
        assert (
            client.post("/explanations/batch", {"requests": []}).status == 400
        )

    def test_batch_item_cap(self, client):
        item = {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID}
        response = client.post(
            "/explanations/batch", {"requests": [item] * 101}
        )
        assert response.status == 400


class TestLegacyRouteEquivalence:
    def test_document_route_matches_unified(self, client):
        legacy = client.post(
            "/explanations/document",
            {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 1, "k": 10},
        )
        unified = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "strategy": "document/sentence-removal",
                "n": 1,
                "k": 10,
            },
        )
        assert legacy.status == unified.status == 200
        assert legacy.payload["explanations"] == unified.payload["explanations"]

    def test_instance_route_accepts_legacy_method_names(self, client):
        legacy = client.post(
            "/explanations/instance",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "method": "cosine_sampled",
                "samples": 30,
            },
        )
        unified = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "strategy": "cosine_sampled",
                "samples": 30,
            },
        )
        assert legacy.status == unified.status == 200
        assert unified.payload["strategy"] == "instance/cosine"
        assert legacy.payload["explanations"] == unified.payload["explanations"]


class TestSearchOptions:
    """The search-kernel options thread through the REST surface."""

    def test_beam_search_accepted(self, client):
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "search": "beam",
                "beam_width": 4,
                "budget": 5000,
            },
        )
        assert response.status == 200
        assert response.payload["search_strategy"] == "beam"
        assert response.payload["explanations"]

    def test_anytime_with_deadline(self, client):
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "search": "anytime",
                "deadline_ms": 500,
            },
        )
        assert response.status == 200
        assert response.payload["search_strategy"] == "anytime"

    def test_unknown_search_is_a_clean_400(self, client):
        response = client.post(
            "/explanations",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "search": "simulated-annealing",
            },
        )
        assert response.status == 400
        assert "search" in response.payload["detail"]

    def test_invalid_search_numbers_are_a_clean_400(self, client):
        for body_patch in (
            {"beam_width": 0},
            {"budget": 0},
            {"deadline_ms": -1},
            {"deadline_ms": "fast"},
        ):
            response = client.post(
                "/explanations",
                {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, **body_patch},
            )
            assert response.status == 400, body_patch

    def test_batch_items_accept_search_options(self, client):
        response = client.post(
            "/explanations/batch",
            {
                "requests": [
                    {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID},
                    {
                        "query": QUERY,
                        "doc_id": FAKE_NEWS_DOC_ID,
                        "search": "greedy",
                    },
                ]
            },
        )
        assert response.status == 200
        strategies = [
            item["search_strategy"] for item in response.payload["responses"]
        ]
        assert strategies == ["exhaustive", "greedy"]

    def test_search_options_distinguish_cached_results(self, client):
        """Requests differing only in search options never share a store
        entry — the responses carry their own search strategies."""
        base = {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID}
        first = client.post("/explanations", base).payload
        second = client.post(
            "/explanations", {**base, "search": "greedy"}
        ).payload
        assert first["search_strategy"] == "exhaustive"
        assert second["search_strategy"] == "greedy"

    def test_oversized_budget_and_deadline_are_a_clean_400(self, client):
        """One request must not pin a worker indefinitely: per-request
        ceilings on the search-kernel bounds."""
        for body_patch in (
            {"budget": 10_000_000},
            {"deadline_ms": 3_600_000},
        ):
            response = client.post(
                "/explanations",
                {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, **body_patch},
            )
            assert response.status == 400, body_patch
