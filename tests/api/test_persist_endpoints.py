"""REST coverage for the persistence surface.

``POST /index/save``, the ``storage`` block in ``GET /index``, and the
400-not-500 contract for read-only (replica/packed) engines.
"""

import pytest

from repro.api.app import build_router
from repro.api.client import InProcessClient
from repro.core.engine import CredenceEngine, EngineConfig
from repro.index.storage import detect_format, save_index
from tests.core.test_search_equivalence import _corpus


@pytest.fixture()
def live_client():
    engine = CredenceEngine(_corpus(), EngineConfig(ranker="bm25", seed=5))
    return InProcessClient(build_router(engine)), engine


@pytest.fixture()
def packed_client(tmp_path):
    live = CredenceEngine(_corpus(), EngineConfig(ranker="bm25", seed=5))
    path = tmp_path / "corpus.idx"
    save_index(live.index, path, format="v3")
    engine = CredenceEngine.load(path, config=EngineConfig(ranker="bm25", seed=5))
    return InProcessClient(build_router(engine)), engine


class TestIndexSaveRoute:
    def test_save_v3_default(self, live_client, tmp_path):
        client, engine = live_client
        path = tmp_path / "saved.idx"
        response = client.post("/index/save", {"path": str(path)})
        assert response.status == 201
        assert response.payload == {"saved_to": str(path), "format": "v3"}
        assert detect_format(path) == "v3"

    def test_save_legacy_format(self, live_client, tmp_path):
        client, _ = live_client
        path = tmp_path / "saved.json"
        response = client.post(
            "/index/save", {"path": str(path), "format": "v2"}
        )
        assert response.status == 201
        assert detect_format(path) == "v1"  # plain index → v1 JSON

    def test_unknown_format_is_400(self, live_client, tmp_path):
        client, _ = live_client
        response = client.post(
            "/index/save",
            {"path": str(tmp_path / "x.idx"), "format": "v9"},
        )
        assert response.status == 400

    def test_unwritable_path_is_400(self, live_client, tmp_path):
        client, _ = live_client
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("plain file")
        response = client.post(
            "/index/save", {"path": str(blocker / "x.idx")}
        )
        assert response.status == 400

    def test_read_only_engine_is_400(self, packed_client, tmp_path):
        client, _ = packed_client
        response = client.post(
            "/index/save", {"path": str(tmp_path / "copy.idx")}
        )
        assert response.status == 400
        assert "compact" in response.payload["detail"]


class TestIndexInfoStorage:
    def test_live_engine_has_no_storage_block(self, live_client):
        client, _ = live_client
        assert "storage" not in client.get("/index").payload

    def test_packed_engine_reports_storage(self, packed_client):
        client, engine = packed_client
        payload = client.get("/index").payload
        assert payload["storage"]["format"] == "v3"
        assert payload["storage"]["generation"] == 1
        assert payload["storage"]["bytes_on_disk"] > 0
        assert payload["version"] == engine.index.version

    def test_mutating_read_only_index_is_400(self, packed_client):
        client, _ = packed_client
        response = client.post(
            "/index/documents",
            {"documents": [{"doc_id": "x", "body": "new covid doc"}]},
        )
        assert response.status == 400
        assert "read-only" in response.payload["detail"]
        assert client.delete("/index/documents/doc-00").status == 400
