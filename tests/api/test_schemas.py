"""Tests for request validation schemas."""

import pytest

from repro.api.schemas import (
    BuilderRequest,
    DocumentExplanationRequest,
    InstanceExplanationRequest,
    QueryExplanationRequest,
    RankRequest,
    TopicsRequest,
    parse_perturbation,
)
from repro.core.perturbations import RemoveSentences, RemoveTerm, ReplaceTerm
from repro.errors import BadRequestError


class TestRankRequest:
    def test_parses_and_defaults(self):
        request = RankRequest.parse({"query": "covid"})
        assert request.k == 10

    def test_rejects_empty_query(self):
        with pytest.raises(BadRequestError, match="query"):
            RankRequest.parse({"query": "  "})

    def test_rejects_non_object(self):
        with pytest.raises(BadRequestError):
            RankRequest.parse(["not", "an", "object"])

    def test_rejects_bool_as_int(self):
        with pytest.raises(BadRequestError):
            RankRequest.parse({"query": "q", "k": True})

    def test_rejects_zero_k(self):
        with pytest.raises(BadRequestError):
            RankRequest.parse({"query": "q", "k": 0})


class TestExplanationRequests:
    def test_document_request(self):
        request = DocumentExplanationRequest.parse(
            {"query": "q", "doc_id": "d", "n": 2, "k": 5}
        )
        assert (request.n, request.k) == (2, 5)

    def test_document_request_caps_n(self):
        with pytest.raises(BadRequestError):
            DocumentExplanationRequest.parse(
                {"query": "q", "doc_id": "d", "n": 101}
            )

    def test_query_request_threshold_within_k(self):
        with pytest.raises(BadRequestError, match="threshold"):
            QueryExplanationRequest.parse(
                {"query": "q", "doc_id": "d", "k": 5, "threshold": 6}
            )

    def test_instance_request_method_validated(self):
        with pytest.raises(BadRequestError, match="method"):
            InstanceExplanationRequest.parse(
                {"query": "q", "doc_id": "d", "method": "magic"}
            )

    def test_instance_request_defaults(self):
        request = InstanceExplanationRequest.parse({"query": "q", "doc_id": "d"})
        assert request.method == "doc2vec_nearest"
        assert request.samples == 50


class TestPerturbationParsing:
    def test_replace_term(self):
        perturbation = parse_perturbation(
            {"type": "replace_term", "term": "covid", "replacement": "flu"}
        )
        assert perturbation == ReplaceTerm("covid", "flu")

    def test_remove_term(self):
        assert parse_perturbation({"type": "remove_term", "term": "x"}) == RemoveTerm("x")

    def test_remove_sentences(self):
        perturbation = parse_perturbation(
            {"type": "remove_sentences", "indices": [0, 4]}
        )
        assert perturbation == RemoveSentences((0, 4))

    def test_remove_sentences_validates_indices(self):
        with pytest.raises(BadRequestError):
            parse_perturbation({"type": "remove_sentences", "indices": [-1]})
        with pytest.raises(BadRequestError):
            parse_perturbation({"type": "remove_sentences", "indices": [True]})

    def test_unknown_type(self):
        with pytest.raises(BadRequestError, match="unknown perturbation"):
            parse_perturbation({"type": "teleport"})


class TestBuilderRequest:
    def test_requires_exactly_one_edit_source(self):
        with pytest.raises(BadRequestError):
            BuilderRequest.parse({"query": "q", "doc_id": "d"})
        with pytest.raises(BadRequestError):
            BuilderRequest.parse(
                {
                    "query": "q",
                    "doc_id": "d",
                    "edited_body": "text",
                    "perturbations": [{"type": "remove_term", "term": "x"}],
                }
            )

    def test_parses_perturbation_list(self):
        request = BuilderRequest.parse(
            {
                "query": "q",
                "doc_id": "d",
                "perturbations": [
                    {"type": "replace_term", "term": "a", "replacement": "b"}
                ],
            }
        )
        assert request.perturbations == (ReplaceTerm("a", "b"),)

    def test_empty_perturbation_list_rejected(self):
        with pytest.raises(BadRequestError):
            BuilderRequest.parse({"query": "q", "doc_id": "d", "perturbations": []})

    def test_edited_body_variant(self):
        request = BuilderRequest.parse(
            {"query": "q", "doc_id": "d", "edited_body": "new text"}
        )
        assert request.edited_body == "new text"
        assert request.perturbations is None


class TestTopicsRequest:
    def test_defaults(self):
        request = TopicsRequest.parse({"query": "q"})
        assert request.num_topics == 5
        assert request.terms_per_topic == 10
