"""Integration tests: every REST endpoint through the in-process client."""

import pytest

from repro.api.app import build_router
from repro.api.client import InProcessClient
from repro.datasets.covid import FAKE_NEWS_DOC_ID

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def client(module_engine):
    return InProcessClient(build_router(module_engine))


@pytest.fixture(scope="module")
def module_engine():
    from repro.core.engine import CredenceEngine, EngineConfig
    from repro.datasets.covid import covid_corpus

    return CredenceEngine(covid_corpus(), EngineConfig(ranker="bm25", seed=5))


class TestHealthAndDocuments:
    def test_health(self, client):
        response = client.get("/health")
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["documents"] > 0

    def test_get_document(self, client):
        response = client.get(f"/documents/{FAKE_NEWS_DOC_ID}")
        assert response.status == 200
        assert response.payload["doc_id"] == FAKE_NEWS_DOC_ID
        assert "5G" in response.payload["body"]

    def test_get_missing_document(self, client):
        assert client.get("/documents/ghost").status == 404


class TestRankEndpoint:
    def test_rank_shape(self, client):
        response = client.post("/rank", {"query": QUERY, "k": 10})
        assert response.status == 200
        ranking = response.payload["ranking"]
        assert len(ranking) == 10
        assert [entry["rank"] for entry in ranking] == list(range(1, 11))

    def test_rank_rejects_bad_payload(self, client):
        assert client.post("/rank", {"k": 10}).status == 400
        assert client.post("/rank", {"query": "x", "k": -1}).status == 400


class TestExplanationEndpoints:
    def test_document_explanations(self, client):
        response = client.post(
            "/explanations/document",
            {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 1, "k": 10},
        )
        assert response.status == 200
        explanation = response.payload["explanations"][0]
        assert explanation["new_rank"] > 10
        assert explanation["removed_sentences"]

    def test_document_explanations_unranked_doc_400(self, client):
        response = client.post(
            "/explanations/document",
            {"query": QUERY, "doc_id": "markets-0002", "n": 1, "k": 10},
        )
        assert response.status == 400

    def test_query_explanations(self, client):
        response = client.post(
            "/explanations/query",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "n": 3,
                "k": 10,
                "threshold": 2,
            },
        )
        assert response.status == 200
        explanations = response.payload["explanations"]
        assert len(explanations) == 3
        assert all(e["new_rank"] <= 2 for e in explanations)

    def test_instance_explanations_cosine(self, client):
        response = client.post(
            "/explanations/instance",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "n": 2,
                "k": 10,
                "method": "cosine_sampled",
                "samples": 30,
            },
        )
        assert response.status == 200
        explanations = response.payload["explanations"]
        assert len(explanations) == 2
        assert all("counterfactual_body" in e for e in explanations)

    def test_instance_explanations_doc2vec(self, client):
        response = client.post(
            "/explanations/instance",
            {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 1, "k": 10},
        )
        assert response.status == 200
        assert response.payload["explanations"][0]["method"] == "doc2vec_nearest"


class TestBuilderEndpoint:
    def test_scripted_perturbations(self, client):
        response = client.post(
            "/builder/rerank",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "k": 10,
                "perturbations": [
                    {"type": "replace_term", "term": "covid", "replacement": "flu"},
                    {"type": "remove_term", "term": "outbreak"},
                ],
            },
        )
        assert response.status == 200
        payload = response.payload
        assert payload["is_valid_counterfactual"] is True
        assert payload["rank_after"] == 11
        directions = {m["direction"] for m in payload["movements"]}
        assert "revealed" in directions

    def test_free_text_edit(self, client):
        response = client.post(
            "/builder/rerank",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "k": 10,
                "edited_body": "nothing to see here",
            },
        )
        assert response.status == 200
        assert response.payload["is_valid_counterfactual"] is True

    def test_invalid_payload_rejected(self, client):
        response = client.post(
            "/builder/rerank", {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "k": 10}
        )
        assert response.status == 400


class TestTopicsEndpoint:
    def test_topics(self, client):
        response = client.post("/topics", {"query": QUERY, "k": 10, "num_topics": 3})
        assert response.status == 200
        topics = response.payload["topics"]
        assert len(topics) == 3
        assert all(topic["terms"] for topic in topics)


class TestIndexManagement:
    """GET /index, POST /index/documents, DELETE /index/documents/{id}."""

    @pytest.fixture()
    def fresh_client(self):
        from repro.core.engine import CredenceEngine, EngineConfig
        from repro.datasets.covid import covid_corpus

        engine = CredenceEngine(
            covid_corpus(),
            EngineConfig(ranker="bm25", seed=5),
            shards=2,
        )
        return InProcessClient(build_router(engine)), engine

    def test_index_info_reports_shard_layout(self, fresh_client):
        client, engine = fresh_client
        response = client.get("/index")
        assert response.status == 200
        payload = response.payload
        assert payload["sharded"] is True
        assert payload["shards"] == 2
        assert payload["router"] == "hash"
        assert sum(payload["shard_documents"]) == payload["documents"]
        assert payload["version"] == engine.index.version

    def test_ingest_and_remove_roundtrip(self, fresh_client):
        client, engine = fresh_client
        before = client.get("/index").payload
        response = client.post(
            "/index/documents",
            {
                "documents": [
                    {"doc_id": "ingest-1", "body": "a covid outbreak story"},
                    {"doc_id": "ingest-2", "body": "markets rallied today",
                     "title": "Markets"},
                ],
                "workers": 2,
            },
        )
        assert response.status == 201
        assert response.payload["added"] == 2
        assert response.payload["documents"] == before["documents"] + 2
        assert response.payload["version"] > before["version"]
        assert client.get("/documents/ingest-2").payload["title"] == "Markets"

        removed = client.delete("/index/documents/ingest-1")
        assert removed.status == 200
        assert removed.payload["removed"] == "ingest-1"
        assert removed.payload["documents"] == before["documents"] + 1
        assert client.get("/documents/ingest-1").status == 404

    def test_ingest_duplicate_is_400(self, fresh_client):
        client, _ = fresh_client
        response = client.post(
            "/index/documents",
            {"documents": [{"doc_id": FAKE_NEWS_DOC_ID, "body": "dup"}]},
        )
        assert response.status == 400
        assert "duplicate" in response.payload["detail"]

    def test_ingest_validation(self, fresh_client):
        client, _ = fresh_client
        assert client.post("/index/documents", {"documents": []}).status == 400
        assert (
            client.post("/index/documents", {"documents": [{"body": "x"}]}).status
            == 400
        )
        assert (
            client.post(
                "/index/documents",
                {"documents": [{"doc_id": "a", "body": "x"}], "nope": 1},
            ).status
            == 400
        )
        assert (
            client.post(
                "/index/documents",
                {"documents": [{"doc_id": "a", "body": "x"}], "workers": 0},
            ).status
            == 400
        )

    def test_remove_unknown_is_404(self, fresh_client):
        client, _ = fresh_client
        assert client.delete("/index/documents/ghost").status == 404

    def test_ingest_cap_is_enforced(self):
        from repro.core.engine import CredenceEngine, EngineConfig
        from repro.datasets.covid import covid_corpus

        engine = CredenceEngine(
            covid_corpus(), EngineConfig(ranker="bm25", seed=5)
        )
        client = InProcessClient(build_router(engine, max_ingest_items=1))
        response = client.post(
            "/index/documents",
            {
                "documents": [
                    {"doc_id": "a", "body": "x"},
                    {"doc_id": "b", "body": "y"},
                ]
            },
        )
        assert response.status == 400
        assert "<= 1" in response.payload["detail"]
