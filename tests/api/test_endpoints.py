"""Integration tests: every REST endpoint through the in-process client."""

import pytest

from repro.api.app import build_router
from repro.api.client import InProcessClient
from repro.datasets.covid import FAKE_NEWS_DOC_ID

QUERY = "covid outbreak"


@pytest.fixture(scope="module")
def client(module_engine):
    return InProcessClient(build_router(module_engine))


@pytest.fixture(scope="module")
def module_engine():
    from repro.core.engine import CredenceEngine, EngineConfig
    from repro.datasets.covid import covid_corpus

    return CredenceEngine(covid_corpus(), EngineConfig(ranker="bm25", seed=5))


class TestHealthAndDocuments:
    def test_health(self, client):
        response = client.get("/health")
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["documents"] > 0

    def test_get_document(self, client):
        response = client.get(f"/documents/{FAKE_NEWS_DOC_ID}")
        assert response.status == 200
        assert response.payload["doc_id"] == FAKE_NEWS_DOC_ID
        assert "5G" in response.payload["body"]

    def test_get_missing_document(self, client):
        assert client.get("/documents/ghost").status == 404


class TestRankEndpoint:
    def test_rank_shape(self, client):
        response = client.post("/rank", {"query": QUERY, "k": 10})
        assert response.status == 200
        ranking = response.payload["ranking"]
        assert len(ranking) == 10
        assert [entry["rank"] for entry in ranking] == list(range(1, 11))

    def test_rank_rejects_bad_payload(self, client):
        assert client.post("/rank", {"k": 10}).status == 400
        assert client.post("/rank", {"query": "x", "k": -1}).status == 400


class TestExplanationEndpoints:
    def test_document_explanations(self, client):
        response = client.post(
            "/explanations/document",
            {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 1, "k": 10},
        )
        assert response.status == 200
        explanation = response.payload["explanations"][0]
        assert explanation["new_rank"] > 10
        assert explanation["removed_sentences"]

    def test_document_explanations_unranked_doc_400(self, client):
        response = client.post(
            "/explanations/document",
            {"query": QUERY, "doc_id": "markets-0002", "n": 1, "k": 10},
        )
        assert response.status == 400

    def test_query_explanations(self, client):
        response = client.post(
            "/explanations/query",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "n": 3,
                "k": 10,
                "threshold": 2,
            },
        )
        assert response.status == 200
        explanations = response.payload["explanations"]
        assert len(explanations) == 3
        assert all(e["new_rank"] <= 2 for e in explanations)

    def test_instance_explanations_cosine(self, client):
        response = client.post(
            "/explanations/instance",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "n": 2,
                "k": 10,
                "method": "cosine_sampled",
                "samples": 30,
            },
        )
        assert response.status == 200
        explanations = response.payload["explanations"]
        assert len(explanations) == 2
        assert all("counterfactual_body" in e for e in explanations)

    def test_instance_explanations_doc2vec(self, client):
        response = client.post(
            "/explanations/instance",
            {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "n": 1, "k": 10},
        )
        assert response.status == 200
        assert response.payload["explanations"][0]["method"] == "doc2vec_nearest"


class TestBuilderEndpoint:
    def test_scripted_perturbations(self, client):
        response = client.post(
            "/builder/rerank",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "k": 10,
                "perturbations": [
                    {"type": "replace_term", "term": "covid", "replacement": "flu"},
                    {"type": "remove_term", "term": "outbreak"},
                ],
            },
        )
        assert response.status == 200
        payload = response.payload
        assert payload["is_valid_counterfactual"] is True
        assert payload["rank_after"] == 11
        directions = {m["direction"] for m in payload["movements"]}
        assert "revealed" in directions

    def test_free_text_edit(self, client):
        response = client.post(
            "/builder/rerank",
            {
                "query": QUERY,
                "doc_id": FAKE_NEWS_DOC_ID,
                "k": 10,
                "edited_body": "nothing to see here",
            },
        )
        assert response.status == 200
        assert response.payload["is_valid_counterfactual"] is True

    def test_invalid_payload_rejected(self, client):
        response = client.post(
            "/builder/rerank", {"query": QUERY, "doc_id": FAKE_NEWS_DOC_ID, "k": 10}
        )
        assert response.status == 400


class TestTopicsEndpoint:
    def test_topics(self, client):
        response = client.post("/topics", {"query": QUERY, "k": 10, "num_topics": 3})
        assert response.status == 200
        topics = response.payload["topics"]
        assert len(topics) == 3
        assert all(topic["terms"] for topic in topics)
