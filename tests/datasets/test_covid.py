"""Tests for the synthetic COVID-19 Articles corpus — the scenario anchors."""

import pytest

from repro.datasets.covid import (
    DEMO_QUERY,
    FAKE_NEWS_DOC_ID,
    NEAR_COPY_DOC_ID,
    covid_corpus,
    covid_training_queries,
)
from repro.errors import ConfigurationError
from repro.text.analyzer import default_analyzer
from repro.text.sentences import split_sentences


class TestCorpusStructure:
    def test_deterministic(self):
        first = covid_corpus()
        second = covid_corpus()
        assert [d.doc_id for d in first] == [d.doc_id for d in second]
        assert [d.body for d in first] == [d.body for d in second]

    def test_anchor_documents_present(self):
        ids = {d.doc_id for d in covid_corpus()}
        assert FAKE_NEWS_DOC_ID in ids
        assert NEAR_COPY_DOC_ID in ids
        assert "covid-genuine-01" in ids
        assert "flu-outbreak-01" in ids

    def test_unique_ids(self):
        ids = [d.doc_id for d in covid_corpus()]
        assert len(ids) == len(set(ids))

    def test_filler_size_controls_corpus(self):
        small = covid_corpus(filler_size=0)
        large = covid_corpus(filler_size=30)
        assert len(large) - len(small) == 30

    def test_negative_filler_rejected(self):
        with pytest.raises(ConfigurationError):
            covid_corpus(filler_size=-1)

    def test_fake_news_metadata(self):
        corpus = {d.doc_id: d for d in covid_corpus()}
        assert corpus[FAKE_NEWS_DOC_ID].metadata["fake_news"] is True
        assert corpus["covid-genuine-01"].metadata["fake_news"] is False


class TestScenarioProperties:
    """The structural facts the demo scenario (§III) depends on."""

    def test_fake_article_first_and_last_sentences_carry_query_terms(self):
        corpus = {d.doc_id: d for d in covid_corpus()}
        analyzer = default_analyzer()
        query_terms = set(analyzer.analyze(DEMO_QUERY))
        sentences = split_sentences(corpus[FAKE_NEWS_DOC_ID].body)
        first_terms = set(analyzer.analyze(sentences[0].text))
        last_terms = set(analyzer.analyze(sentences[-1].text))
        assert query_terms <= first_terms
        assert query_terms <= last_terms

    def test_conspiracy_terms_exclusive_to_fake_article(self):
        analyzer = default_analyzer()
        for document in covid_corpus():
            terms = analyzer.analyze_unique(document.body)
            if document.doc_id in (FAKE_NEWS_DOC_ID, NEAR_COPY_DOC_ID):
                assert "5g" in terms
                assert "microchip" in terms
            elif document.metadata.get("topic") == "covid":
                assert "5g" not in terms
                assert "microchip" not in terms

    def test_near_copy_lacks_query_terms(self):
        corpus = {d.doc_id: d for d in covid_corpus()}
        analyzer = default_analyzer()
        near_copy_terms = analyzer.analyze_unique(corpus[NEAR_COPY_DOC_ID].body)
        assert "covid" not in near_copy_terms
        assert "outbreak" not in near_copy_terms

    def test_near_copy_shares_most_content_with_fake_article(self):
        corpus = {d.doc_id: d for d in covid_corpus()}
        analyzer = default_analyzer()
        fake_terms = analyzer.analyze_unique(corpus[FAKE_NEWS_DOC_ID].body)
        copy_terms = analyzer.analyze_unique(corpus[NEAR_COPY_DOC_ID].body)
        overlap = len(fake_terms & copy_terms) / len(fake_terms | copy_terms)
        assert overlap > 0.6

    def test_peripheral_articles_mention_outbreak_without_covid(self):
        analyzer = default_analyzer()
        peripherals = [
            d for d in covid_corpus() if d.metadata.get("topic") == "outbreak-peripheral"
        ]
        assert peripherals
        for document in peripherals:
            terms = analyzer.analyze_unique(document.body)
            assert "outbreak" in terms
            assert "covid" not in terms


class TestTrainingQueries:
    def test_non_empty_and_include_demo_query(self):
        queries = covid_training_queries()
        assert DEMO_QUERY in queries
        assert len(queries) >= 5
