"""Tests for the streaming corpus generator, loader, and bulk ingest."""

import itertools
import json

import pytest

from repro.datasets.stream import (
    COVID_SEED_TERMS,
    IngestReport,
    TREC_COVID_ENV,
    ZipfianVocabulary,
    load_trec_covid,
    sample_stream_queries,
    stream_corpus,
    stream_ingest,
)
from repro.index.inverted import InvertedIndex
from repro.index.sharding import ShardedIndex
from repro.text.analyzer import default_analyzer


class TestZipfianVocabulary:
    def test_build_produces_unique_terms(self):
        vocab = ZipfianVocabulary.build(500)
        assert len(vocab) == 500
        assert len(set(vocab.terms)) == 500

    def test_head_terms_occupy_top_ranks(self):
        vocab = ZipfianVocabulary.build(100, head_terms=("virus", "vaccine"))
        assert vocab.terms[0] == "virus"
        assert vocab.terms[1] == "vaccine"
        assert len(set(vocab.terms)) == 100

    def test_pseudo_words_survive_stemming(self):
        # The Zipf curve is only meaningful if the analyzer does not
        # merge distinct vocabulary ranks; the syllable alphabet avoids
        # every Porter suffix pattern.
        analyzer = default_analyzer()
        vocab = ZipfianVocabulary.build(2000)
        for term in vocab.terms[COVID_SEED_TERMS.__len__():][:500]:
            assert analyzer.analyze(term) == [term]

    def test_sampling_is_zipf_shaped(self):
        import numpy as np

        vocab = ZipfianVocabulary.build(1000, exponent=1.1)
        rng = np.random.default_rng(3)
        ranks = vocab.sample_indices(rng, 200_000)
        counts = np.bincount(ranks, minlength=len(vocab))
        assert counts[0] > counts[10] > counts[100] > counts[900]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(Exception):
            ZipfianVocabulary.build(0)


class TestStreamCorpus:
    def test_deterministic_for_seed(self):
        first = list(stream_corpus(50, seed=9, vocabulary_size=300))
        second = list(stream_corpus(50, seed=9, vocabulary_size=300))
        assert [d.doc_id for d in first] == [d.doc_id for d in second]
        assert [d.body for d in first] == [d.body for d in second]

    def test_different_seeds_differ(self):
        first = list(stream_corpus(20, seed=1, vocabulary_size=300))
        second = list(stream_corpus(20, seed=2, vocabulary_size=300))
        assert [d.body for d in first] != [d.body for d in second]

    def test_prefix_independent_of_consumer_chunking(self):
        # Taking 10 then 10 more must see the same documents as taking
        # 20 at once: the stream's rng advances in fixed internal
        # batches, never per consumer read.
        stream = stream_corpus(3000, seed=4, vocabulary_size=300)
        head = list(itertools.islice(stream, 1500))
        tail = list(itertools.islice(stream, 1500))
        whole = list(stream_corpus(3000, seed=4, vocabulary_size=300))
        assert [d.body for d in head + tail] == [d.body for d in whole]

    def test_doc_ids_are_unique_and_ordered(self):
        docs = list(stream_corpus(30, seed=0, vocabulary_size=300))
        ids = [d.doc_id for d in docs]
        assert ids == sorted(ids)
        assert len(set(ids)) == 30
        assert ids[0] == "zipf-0000000"

    def test_priors_attached_when_requested(self):
        docs = list(
            stream_corpus(10, seed=0, vocabulary_size=300, with_priors=True)
        )
        for doc in docs:
            for key in ("popularity", "freshness", "authority"):
                assert 0.0 <= doc.metadata[key] <= 1.0

    def test_no_priors_by_default(self):
        (doc,) = stream_corpus(1, seed=0, vocabulary_size=300)
        assert "popularity" not in doc.metadata

    def test_bodies_index_cleanly(self):
        docs = list(stream_corpus(40, seed=5, vocabulary_size=300))
        index = InvertedIndex.from_documents(docs)
        assert len(index) == 40
        assert index.stats().unique_terms > 50


class TestSampleStreamQueries:
    def test_deterministic_and_in_band(self):
        vocab = ZipfianVocabulary.build(4000)
        first = sample_stream_queries(8, vocabulary=vocab, seed=2)
        second = sample_stream_queries(8, vocabulary=vocab, seed=2)
        assert first == second
        band = set(vocab.terms[32:2049])
        for query in first:
            assert query
            assert all(term in band for term in query.split())

    def test_band_clamped_to_vocabulary(self):
        vocab = ZipfianVocabulary.build(200)
        queries = sample_stream_queries(3, vocabulary=vocab, seed=0)
        assert len(queries) == 3


class TestLoadTrecCovid:
    def test_fallback_stream_is_covid_flavoured(self, monkeypatch):
        monkeypatch.delenv(TREC_COVID_ENV, raising=False)
        docs = list(load_trec_covid(limit=30))
        assert len(docs) == 30
        corpus_text = " ".join(d.body for d in docs).lower()
        assert any(term in corpus_text for term in COVID_SEED_TERMS)

    def test_missing_explicit_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(load_trec_covid(tmp_path / "absent.csv", limit=5))

    def test_csv_dump_streams_and_dedupes(self, tmp_path):
        dump = tmp_path / "metadata.csv"
        dump.write_text(
            "cord_uid,title,abstract\n"
            "a1,First,Covid vaccine trial results.\n"
            "a2,Empty,\n"
            "a1,Duplicate,Should be skipped.\n"
            "a3,Third,Hospital capacity study.\n",
            encoding="utf-8",
        )
        docs = list(load_trec_covid(dump))
        assert [d.doc_id for d in docs] == ["a1", "a3"]
        assert docs[0].metadata["source"] == "trec-covid"

    def test_jsonl_dump_with_limit(self, tmp_path):
        dump = tmp_path / "corpus.jsonl"
        records = [
            {"doc_id": f"j{i}", "title": f"t{i}", "abstract": f"body {i}"}
            for i in range(5)
        ]
        dump.write_text(
            "\n".join(json.dumps(r) for r in records), encoding="utf-8"
        )
        docs = list(load_trec_covid(dump, limit=3))
        assert [d.doc_id for d in docs] == ["j0", "j1", "j2"]

    def test_env_variable_names_dump(self, tmp_path, monkeypatch):
        dump = tmp_path / "corpus.jsonl"
        dump.write_text(
            json.dumps({"doc_id": "e1", "abstract": "env sourced"}),
            encoding="utf-8",
        )
        monkeypatch.setenv(TREC_COVID_ENV, str(dump))
        docs = list(load_trec_covid())
        assert [d.doc_id for d in docs] == ["e1"]


class TestStreamIngest:
    def test_chunked_ingest_matches_direct_build(self):
        docs = list(stream_corpus(120, seed=6, vocabulary_size=300))
        direct = InvertedIndex.from_documents(docs)
        streamed = InvertedIndex()
        report = stream_ingest(
            streamed, stream_corpus(120, seed=6, vocabulary_size=300),
            chunk_size=50,
        )
        assert isinstance(report, IngestReport)
        assert report.documents == 120
        assert report.chunks == 3
        assert len(streamed) == len(direct)
        assert streamed.stats().total_terms == direct.stats().total_terms

    def test_sharded_ingest_and_report_fields(self):
        index = ShardedIndex(shard_count=2)
        progress_counts = []
        report = stream_ingest(
            index,
            stream_corpus(80, seed=6, vocabulary_size=300),
            chunk_size=32,
            progress=lambda count, _: progress_counts.append(count),
        )
        assert len(index) == 80
        assert progress_counts == [32, 64, 80]
        assert report.docs_per_second > 0
        # ru_maxrss and VmRSS round independently; allow 1 MiB of jitter.
        assert report.rss_before_mb >= 0
        assert report.peak_rss_mb >= report.rss_before_mb - 1.0
        payload = report.to_dict()
        assert payload["documents"] == 80
        assert payload["chunk_size"] == 32

    def test_duplicate_ids_fail_before_mutating_later_chunks(self):
        index = InvertedIndex()
        docs = list(stream_corpus(10, seed=6, vocabulary_size=300))
        with pytest.raises(ValueError):
            stream_ingest(index, docs + docs[:1], chunk_size=100)
