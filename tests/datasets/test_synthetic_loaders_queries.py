"""Tests for the generic corpus generator, JSONL loaders, and query sampling."""

import pytest

from repro.datasets.loaders import load_jsonl, save_jsonl
from repro.datasets.queries import sample_queries
from repro.datasets.synthetic import DEFAULT_TOPICS, TopicSpec, synthetic_corpus
from repro.errors import ConfigurationError


class TestSyntheticCorpus:
    def test_size(self):
        assert len(synthetic_corpus(size=25, seed=1)) == 25

    def test_deterministic(self):
        a = synthetic_corpus(size=10, seed=3)
        b = synthetic_corpus(size=10, seed=3)
        assert [d.body for d in a] == [d.body for d in b]

    def test_seeds_differ(self):
        a = synthetic_corpus(size=10, seed=1)
        b = synthetic_corpus(size=10, seed=2)
        assert [d.body for d in a] != [d.body for d in b]

    def test_topics_rotate(self):
        corpus = synthetic_corpus(size=10, seed=1)
        topics = {d.metadata["topic"] for d in corpus}
        assert len(topics) == min(10, len(DEFAULT_TOPICS))

    def test_home_topic_vocabulary_present(self):
        corpus = synthetic_corpus(size=10, seed=4)
        for document in corpus:
            topic = next(
                t for t in DEFAULT_TOPICS if t.name == document.metadata["topic"]
            )
            body = document.body.lower()
            assert any(term in body for term in topic.vocabulary)

    def test_sentence_count_range(self):
        from repro.text.sentences import split_sentences

        corpus = synthetic_corpus(size=20, sentences_per_doc=(2, 4), seed=5)
        for document in corpus:
            assert 2 <= len(split_sentences(document.body)) <= 4

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            synthetic_corpus(size=0)
        with pytest.raises(ConfigurationError):
            synthetic_corpus(sentences_per_doc=(5, 2))
        with pytest.raises(ConfigurationError):
            TopicSpec("thin", ("a", "b"))


class TestJsonlLoaders:
    def test_roundtrip(self, tiny_docs, tmp_path):
        path = tmp_path / "corpus.jsonl"
        count = save_jsonl(tiny_docs, path)
        assert count == len(tiny_docs)
        loaded = load_jsonl(path)
        assert loaded == tiny_docs

    def test_blank_lines_skipped(self, tiny_docs, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(tiny_docs[:2], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"doc_id": "a", "body": "x"}\nnot json\n')
        with pytest.raises(ValueError, match="broken.jsonl:2"):
            load_jsonl(path)

    def test_parent_directory_created(self, tiny_docs, tmp_path):
        nested = tmp_path / "a" / "b" / "c.jsonl"
        save_jsonl(tiny_docs, nested)
        assert nested.exists()


class TestSampleQueries:
    def test_count_and_determinism(self, covid_documents):
        a = sample_queries(covid_documents, count=5, seed=1)
        b = sample_queries(covid_documents, count=5, seed=1)
        assert a == b
        assert len(a) == 5

    def test_queries_hit_the_corpus(self, covid_documents):
        from repro.index.inverted import InvertedIndex
        from repro.index.searcher import IndexSearcher

        index = InvertedIndex.from_documents(covid_documents)
        searcher = IndexSearcher(index)
        for query in sample_queries(covid_documents, count=8, seed=2):
            assert searcher.search(query, k=1), f"query {query!r} matches nothing"

    def test_term_range_respected(self, covid_documents):
        queries = sample_queries(
            covid_documents, count=6, terms_per_query=(2, 2), seed=3
        )
        assert all(len(q.split()) == 2 for q in queries)
