"""Failure injection: corrupt inputs, degenerate corpora, misbehaving rankers.

Production systems meet broken data; these tests pin down that the
library fails loudly (library-typed errors) or degrades gracefully
(empty explanation sets), never silently corrupts results.
"""

import json

import pytest

from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.core.engine import CredenceEngine, EngineConfig
from repro.errors import IndexFormatError, IndexStateError, RankingError, ReproError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.storage import load_index, save_index
from repro.ranking.base import Ranker, Ranking
from repro.ranking.bm25 import Bm25Ranker


class TestDegenerateCorpora:
    def test_single_document_corpus(self):
        engine = CredenceEngine(
            [Document("only", "covid outbreak text here.")],
            EngineConfig(ranker="bm25"),
        )
        ranking = engine.rank("covid", k=10)
        assert len(ranking) == 1
        # No k+1 slot exists: a counterfactual can never be valid.
        result = engine.explain_document("covid", "only", n=1, k=1)
        assert len(result) == 0

    def test_empty_body_documents_indexable(self):
        index = InvertedIndex.from_documents(
            [Document("empty", "   "), Document("full", "covid outbreak news.")]
        )
        assert index.document_length("empty") == 0
        hits = IndexSearcher(index).search("covid", k=2)
        assert [h.doc_id for h in hits] == ["full"]

    def test_stopword_only_query(self, tiny_index):
        assert IndexSearcher(tiny_index).search("the of and", k=3) == []

    def test_unicode_heavy_corpus(self):
        index = InvertedIndex.from_documents(
            [
                Document("u1", "Überraschung beim Ausbruch der Grippe — café schließt."),
                Document("u2", "The outbreak of flu closed the café."),
            ]
        )
        hits = IndexSearcher(index).search("café", k=2)
        assert {h.doc_id for h in hits} == {"u1", "u2"}  # accents folded

    def test_identical_documents_rank_deterministically(self):
        documents = [Document(f"copy-{i}", "same covid text.") for i in range(4)]
        ranker = Bm25Ranker(InvertedIndex.from_documents(documents))
        first = ranker.rank("covid", 4).doc_ids
        second = ranker.rank("covid", 4).doc_ids
        assert first == second == [f"copy-{i}" for i in range(4)]


class TestCorruptPersistence:
    def test_truncated_index_file(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        # Corruption surfaces as the library-typed IndexFormatError (a
        # ReproError and a ValueError), never a raw JSONDecodeError.
        with pytest.raises(IndexFormatError):
            load_index(path)
        with pytest.raises(ReproError):
            load_index(path)

    def test_missing_required_field(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"format_version": 1, "documents": []}))
        with pytest.raises(KeyError):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "absent.json")


class _ConstantRanker(Ranker):
    """A pathological ranker that scores everything identically."""

    def rank(self, query, k):
        scored = [(doc.doc_id, 0.0) for doc in self.index]
        return Ranking.from_scores(scored).top(min(k, len(scored)))

    def score_text(self, query, body):
        return 0.0


class _NanRanker(Ranker):
    """A broken ranker emitting NaN scores."""

    def rank(self, query, k):
        return self.rank_candidates(query, list(self.index)).top(k)

    def score_text(self, query, body):
        return float("nan")


class TestMisbehavingRankers:
    def test_constant_ranker_yields_no_counterfactual(self, tiny_index):
        """If nothing the explainer does can change ranks, it must return
        empty (search exhausted), not loop or crash."""
        explainer = CounterfactualDocumentExplainer(
            _ConstantRanker(tiny_index), max_evaluations=100
        )
        result = explainer.explain("covid outbreak", "d1", n=1, k=3)
        assert len(result) == 0
        assert result.search_exhausted or result.budget_exhausted

    def test_nan_ranker_still_produces_contiguous_ranking(self, tiny_index):
        ranking = _NanRanker(tiny_index).rank("covid", 3)
        assert [entry.rank for entry in ranking] == [1, 2, 3]

    def test_empty_index_search_raises_typed_error(self):
        with pytest.raises(IndexStateError):
            IndexSearcher(InvertedIndex()).search("anything")

    def test_library_errors_are_catchable_at_base(self, bm25_engine):
        with pytest.raises(ReproError):
            bm25_engine.explain_document("covid outbreak", "no-such-doc", n=1, k=10)


class TestApiRobustness:
    @pytest.fixture()
    def client(self, bm25_engine):
        from repro.api.app import build_router
        from repro.api.client import InProcessClient

        return InProcessClient(build_router(bm25_engine))

    def test_null_body(self, client):
        assert client.post("/rank", None).status == 400

    def test_array_body(self, client):
        assert client.post("/rank", [1, 2, 3]).status == 400

    def test_giant_k_handled(self, client):
        response = client.post("/rank", {"query": "covid outbreak", "k": 10_000})
        assert response.status == 200
        assert len(response.payload["ranking"]) <= 100  # capped by corpus

    def test_nonsense_query_returns_empty_ranking(self, client):
        response = client.post("/rank", {"query": "zzzz qqqq xxxx", "k": 5})
        assert response.status == 200
        assert response.payload["ranking"] == []

    def test_explaining_non_relevant_doc_maps_to_400(self, client):
        response = client.post(
            "/explanations/document",
            {"query": "covid outbreak", "doc_id": "markets-0002", "n": 1, "k": 10},
        )
        assert response.status == 400
        assert "not in the top" in response.payload["detail"]
