"""End-to-end reproduction of the demonstration plan (§III, Figs. 2–5)
under the neural retrieve-rerank pipeline — the paper's actual setup."""

import pytest

from repro.core.perturbations import RemoveTerm, ReplaceTerm
from repro.datasets.covid import DEMO_QUERY, FAKE_NEWS_DOC_ID, NEAR_COPY_DOC_ID

K = 10


class TestScenarioSetup:
    def test_fake_article_is_relevant(self, neural_engine):
        ranking = neural_engine.rank(DEMO_QUERY, k=K)
        rank = ranking.rank_of(FAKE_NEWS_DOC_ID)
        assert rank is not None and rank <= K

    def test_near_copy_is_non_relevant(self, neural_engine):
        ranking = neural_engine.rank(DEMO_QUERY, k=K)
        assert NEAR_COPY_DOC_ID not in ranking

    def test_genuine_coverage_dominates_top_ranks(self, neural_engine):
        ranking = neural_engine.rank(DEMO_QUERY, k=K)
        top_three = ranking.doc_ids[:3]
        genuine = [d for d in top_three if d.startswith("covid-genuine")]
        assert len(genuine) >= 2


class TestFig2DocumentCounterfactual:
    def test_sentence_removal_demotes_beyond_k(self, neural_engine):
        result = neural_engine.explain_document(DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K)
        assert len(result) == 1
        explanation = result[0]
        assert explanation.new_rank == K + 1  # "rank of 11 surpasses k = 10"

    def test_removed_sentences_mention_both_query_terms(self, neural_engine):
        explanation = neural_engine.explain_document(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K
        )[0]
        analyzer = neural_engine.index.analyzer
        for sentence in explanation.removed_sentences:
            terms = set(analyzer.analyze(sentence.text))
            assert {"covid", "outbreak"} <= terms

    def test_combined_importance_is_four(self, neural_engine):
        """Both sentences score 2; their combination scores 4 (Fig. 2)."""
        explanation = neural_engine.explain_document(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K
        )[0]
        assert explanation.importance == 4.0


class TestFig3QueryCounterfactual:
    def test_seven_explanations_with_threshold_two(self, neural_engine):
        result = neural_engine.explain_query(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=7, k=K, threshold=2
        )
        assert len(result) == 7
        assert all(e.new_rank <= 2 for e in result)

    def test_conspiracy_terms_lead_the_explanations(self, neural_engine):
        result = neural_engine.explain_query(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=7, k=K, threshold=2
        )
        first_terms = set(result[0].added_terms)
        assert first_terms & {"5g", "microchip"}

    def test_augmentations_preserve_original_query(self, neural_engine):
        result = neural_engine.explain_query(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=3, k=K, threshold=2
        )
        assert all(e.augmented_query.startswith(DEMO_QUERY) for e in result)

    def test_rank_one_reachable(self, neural_engine):
        """Fig. 3 reports rank 1/10 for 'covid outbreak 5G microchip'."""
        result = neural_engine.explain_query(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K, threshold=1
        )
        assert result[0].new_rank == 1


class TestFig4InstanceCounterfactual:
    def test_doc2vec_nearest_finds_near_copy(self, neural_engine):
        result = neural_engine.explain_instance_doc2vec(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K
        )
        explanation = result[0]
        assert explanation.counterfactual_doc_id == NEAR_COPY_DOC_ID
        assert explanation.similarity_percent >= 75.0  # paper reports 75%

    def test_cosine_sampled_finds_near_copy_with_full_coverage(self, neural_engine):
        result = neural_engine.explain_instance_cosine(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K, samples=500
        )
        assert result[0].counterfactual_doc_id == NEAR_COPY_DOC_ID

    def test_instance_absent_from_original_ranking(self, neural_engine):
        ranking = neural_engine.rank(DEMO_QUERY, k=K)
        result = neural_engine.explain_instance_doc2vec(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, n=3, k=K
        )
        for explanation in result:
            assert explanation.counterfactual_doc_id not in ranking


class TestFig5Builder:
    FIG5_EDITS = [
        ReplaceTerm("covid-19", "flu"),
        ReplaceTerm("covid", "flu"),
        RemoveTerm("outbreak"),
    ]

    def test_flu_substitution_is_valid_counterfactual(self, neural_engine):
        result = neural_engine.build_counterfactual(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, perturbations=self.FIG5_EDITS, k=K
        )
        assert result.is_valid_counterfactual  # the green check-mark
        assert result.rank_after == K + 1  # "lowered from 3 to 11 (i.e., k+1)"

    def test_revealed_document_flagged(self, neural_engine):
        result = neural_engine.build_counterfactual(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, perturbations=self.FIG5_EDITS, k=K
        )
        assert result.revealed_doc_id is not None  # the orange plus icon

    def test_arrows_cover_every_displayed_document(self, neural_engine):
        result = neural_engine.build_counterfactual(
            DEMO_QUERY, FAKE_NEWS_DOC_ID, perturbations=self.FIG5_EDITS, k=K
        )
        assert len(result.movements) == K + 1
        directions = {m.direction for m in result.movements}
        assert directions <= {"raised", "lowered", "unchanged", "revealed"}


class TestBlackBoxGenerality:
    """The explainers must work unchanged over any ranker (§II-A)."""

    @pytest.mark.parametrize("ranker_name", ["bm25", "tfidf", "lm"])
    def test_document_cf_across_rankers(self, covid_documents, ranker_name):
        from repro.core.engine import CredenceEngine, EngineConfig

        engine = CredenceEngine(
            covid_documents, EngineConfig(ranker=ranker_name, seed=5)
        )
        ranking = engine.rank(DEMO_QUERY, k=K)
        if FAKE_NEWS_DOC_ID not in ranking:
            pytest.skip(f"{ranker_name} does not rank the fake article top-{K}")
        result = engine.explain_document(DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1, k=K)
        assert len(result) == 1
        assert result[0].new_rank > K
