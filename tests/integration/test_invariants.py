"""Property-based invariants of the counterfactual search over arbitrary
synthetic corpora and multiple black-box rankers.

These are the library's strongest guarantees:

* every returned explanation is *valid* (independently re-checked);
* the first explanation per request is *minimal* (no valid strict subset);
* rankings are permutations with contiguous ranks;
* the engine is deterministic under a seed.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.document_cf import CounterfactualDocumentExplainer
from repro.core.query_cf import CounterfactualQueryExplainer
from repro.datasets.synthetic import synthetic_corpus
from repro.index.inverted import InvertedIndex
from repro.ranking.bm25 import Bm25Ranker
from repro.ranking.lm import DirichletLmRanker
from repro.ranking.tfidf import TfIdfRanker

RANKERS = {
    "bm25": Bm25Ranker,
    "tfidf": TfIdfRanker,
    "lm": DirichletLmRanker,
}

_INDEX_CACHE: dict[int, InvertedIndex] = {}


def corpus_index(seed: int) -> InvertedIndex:
    if seed not in _INDEX_CACHE:
        _INDEX_CACHE[seed] = InvertedIndex.from_documents(
            synthetic_corpus(size=30, seed=seed)
        )
    return _INDEX_CACHE[seed]


QUERIES = [
    "virus hospital patients",
    "markets stocks investors",
    "storm rainfall forecast",
    "software platform users",
]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 3),
    query=st.sampled_from(QUERIES),
    ranker_name=st.sampled_from(sorted(RANKERS)),
    k=st.integers(3, 8),
)
def test_rankings_are_contiguous_permutations(seed, query, ranker_name, k):
    ranker = RANKERS[ranker_name](corpus_index(seed))
    ranking = ranker.rank(query, k)
    ranks = [entry.rank for entry in ranking]
    assert ranks == list(range(1, len(ranking) + 1))
    assert len(set(ranking.doc_ids)) == len(ranking)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2),
    query=st.sampled_from(QUERIES),
    ranker_name=st.sampled_from(sorted(RANKERS)),
)
def test_document_cf_valid_and_minimal(seed, query, ranker_name):
    """For whichever top-ranked document, the first sentence-removal
    explanation must be independently valid and subset-minimal."""
    k = 5
    ranker = RANKERS[ranker_name](corpus_index(seed))
    ranking = ranker.rank(query, k)
    if len(ranking) == 0:
        return
    doc_id = ranking.doc_ids[0]
    explainer = CounterfactualDocumentExplainer(ranker, max_evaluations=300)
    result = explainer.explain(query, doc_id, n=1, k=k)
    if len(result) == 0:
        return  # no counterfactual within budget — nothing to verify
    explanation = result[0]
    removed = set(explanation.removed_indices)
    assert explainer.is_valid(query, doc_id, removed, k=k)
    for size in range(1, len(removed)):
        for subset in itertools.combinations(removed, size):
            assert not explainer.is_valid(query, doc_id, set(subset), k=k)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2),
    query=st.sampled_from(QUERIES),
    ranker_name=st.sampled_from(sorted(RANKERS)),
)
def test_query_cf_valid_and_minimal(seed, query, ranker_name):
    k, threshold = 6, 1
    ranker = RANKERS[ranker_name](corpus_index(seed))
    ranking = ranker.rank(query, k)
    if len(ranking) < 3:
        return
    doc_id = ranking.doc_ids[2]  # explain a mid-ranked document
    explainer = CounterfactualQueryExplainer(ranker, max_evaluations=300)
    result = explainer.explain(query, doc_id, n=1, k=k, threshold=threshold)
    if len(result) == 0:
        return
    explanation = result[0]
    verified = explainer.rank_under_augmentation(
        query, doc_id, explanation.added_terms, k=k
    )
    assert verified is not None and verified <= threshold
    for size in range(1, len(explanation.added_terms)):
        for subset in itertools.combinations(explanation.added_terms, size):
            rank = explainer.rank_under_augmentation(query, doc_id, subset, k=k)
            assert rank is None or rank > threshold


def test_engine_fully_deterministic_under_seed():
    from repro.core.engine import CredenceEngine, EngineConfig
    from repro.datasets.covid import covid_corpus, covid_training_queries

    def build():
        return CredenceEngine(
            covid_corpus(),
            EngineConfig(
                ranker="neural",
                training_queries=tuple(covid_training_queries()),
                seed=21,
                neural_epochs=4,
            ),
        )

    first = build().rank("covid outbreak", k=10)
    second = build().rank("covid outbreak", k=10)
    assert first.doc_ids == second.doc_ids
    assert [e.score for e in first] == pytest.approx([e.score for e in second])
