"""Property-based round-trip invariants for the v3 integer codecs.

The example-based persist suites pin known values; these generate
arbitrary integers and strictly-increasing sequences (hypothesis when
installed, seeded random otherwise) and assert the invariants the packed
format actually relies on: decode(encode(x)) == x, offsets advance
exactly over the consumed bytes, and concatenated encodings decode
independently.
"""

import pytest

from property_support import given, increasing_ints, integers
from repro.errors import IndexFormatError
from repro.index.persist.varint import (
    read_deltas,
    read_uvarint,
    write_deltas,
    write_uvarint,
)


class TestUvarintRoundTrip:
    @given(value=integers(min_value=0, max_value=2**63 - 1))
    def test_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @given(value=integers(min_value=0, max_value=2**63 - 1))
    def test_encoding_length_matches_bit_width(self, value):
        out = bytearray()
        write_uvarint(out, value)
        expected = max(1, -(-value.bit_length() // 7))  # ceil(bits / 7)
        assert len(out) == expected

    @given(
        first=integers(min_value=0, max_value=2**48),
        second=integers(min_value=0, max_value=2**48),
    )
    def test_concatenated_values_decode_independently(self, first, second):
        out = bytearray()
        write_uvarint(out, first)
        write_uvarint(out, second)
        buffer = bytes(out)
        decoded_first, offset = read_uvarint(buffer, 0)
        decoded_second, end = read_uvarint(buffer, offset)
        assert (decoded_first, decoded_second) == (first, second)
        assert end == len(buffer)

    @given(value=integers(min_value=0, max_value=2**63 - 1))
    def test_truncated_buffer_raises(self, value):
        # Dropping the terminator byte must never decode silently: either
        # the buffer ends mid-integer or it is empty — both are format
        # errors, whatever the value.
        out = bytearray()
        write_uvarint(out, value)
        with pytest.raises(IndexFormatError):
            read_uvarint(bytes(out[:-1]), 0)

    @given(value=integers(min_value=0, max_value=2**63 - 1))
    def test_decode_from_memoryview(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, _ = read_uvarint(memoryview(bytes(out)), 0)
        assert decoded == value


class TestDeltaRoundTrip:
    @given(values=increasing_ints(min_size=1, max_size=64))
    def test_round_trip(self, values):
        out = bytearray()
        write_deltas(out, values)
        decoded, offset = read_deltas(bytes(out), 0, len(values))
        assert decoded == values
        assert offset == len(out)

    @given(values=increasing_ints(min_size=2, max_size=48))
    def test_gap_encoding_is_compact(self, values):
        # The whole point of delta coding: encoded size tracks the gaps,
        # not the absolute magnitudes of the tail values.
        out = bytearray()
        write_deltas(out, values)
        absolute = bytearray()
        for value in values:
            write_uvarint(absolute, value)
        assert len(out) <= len(absolute)

    @given(values=increasing_ints(min_size=2, max_size=32))
    def test_non_increasing_rejected(self, values):
        broken = [values[0], values[0], *values[1:]]
        with pytest.raises(ValueError):
            write_deltas(bytearray(), broken)

    def test_empty_sequence_round_trips(self):
        out = bytearray()
        write_deltas(out, [])
        assert out == bytearray()
        decoded, offset = read_deltas(b"", 0, 0)
        assert decoded == []
        assert offset == 0
