"""Crash injection for the v3 commit protocol.

The contract: the SQLite transaction in
:meth:`Manifest.commit_generation` is the *only* commit point. A save
interrupted anywhere before it leaves the previous generation fully
loadable; segments of the failed save are orphans, swept by the next
successful save's garbage collection.
"""

import pytest

from repro.errors import IndexFormatError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.persist import Manifest, save_v3
from repro.index.persist import writer as writer_module
from repro.index.sharding import ShardedIndex
from repro.index.storage import load_index


class _CrashBeforeCommit(RuntimeError):
    """Injected failure standing in for a crash / power loss."""


def _documents(n=8):
    return [
        Document(f"doc-{i}", f"covid outbreak report number {i} in ward {i % 3}.")
        for i in range(n)
    ]


@pytest.fixture()
def crash_before_commit(monkeypatch):
    """Make the next ``save_v3`` die after segments, before the commit."""

    def explode(self, record):
        raise _CrashBeforeCommit("interrupted before the commit point")

    monkeypatch.setattr(Manifest, "commit_generation", explode)


def _seg_files(path):
    return sorted(p.name for p in path.parent.glob(f"{path.name}-g*.s*.seg"))


class TestInterruptedSave:
    @pytest.mark.parametrize("shards", [None, 3], ids=["plain", "sharded"])
    def test_old_generation_survives(self, tmp_path, monkeypatch, shards):
        documents = _documents()
        if shards:
            index = ShardedIndex.from_documents(documents, shards)
        else:
            index = InvertedIndex.from_documents(documents)
        path = tmp_path / "corpus.idx"
        save_v3(index, path)
        committed_files = _seg_files(path)

        index.add(Document("doc-new", "a brand new covid outbreak report."))
        original = Manifest.commit_generation
        monkeypatch.setattr(
            Manifest,
            "commit_generation",
            lambda self, record: (_ for _ in ()).throw(
                _CrashBeforeCommit("crash")
            ),
        )
        with pytest.raises(_CrashBeforeCommit):
            save_v3(index, path)
        monkeypatch.setattr(Manifest, "commit_generation", original)

        # The manifest still points at generation 1; attaching serves
        # the pre-crash corpus, without the interrupted document.
        loaded = load_index(path)
        try:
            assert loaded.storage_info()["generation"] == 1
            assert len(loaded) == len(documents)
            assert "doc-new" not in loaded
        finally:
            loaded.close()
        # The failed save's segments linger as orphans for now...
        assert set(_seg_files(path)) > set(committed_files)

        # ...until the next successful save garbage-collects them.
        record = save_v3(index, path)
        survivors = _seg_files(path)
        assert survivors == sorted(s.filename for s in record.segments)
        loaded = load_index(path)
        try:
            assert "doc-new" in loaded
            assert loaded.storage_info()["generation"] == record.generation
        finally:
            loaded.close()

    def test_crash_on_first_save_leaves_no_index(
        self, tmp_path, crash_before_commit
    ):
        path = tmp_path / "corpus.idx"
        with pytest.raises(_CrashBeforeCommit):
            save_v3(InvertedIndex.from_documents(_documents()), path)
        # A manifest exists but holds no committed generation: loading
        # reports a clean library-typed error, not a crash artefact.
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_crash_during_segment_write(self, tmp_path, monkeypatch):
        """Dying mid-segment (before any fsync/rename) is also safe."""
        index = InvertedIndex.from_documents(_documents())
        path = tmp_path / "corpus.idx"
        save_v3(index, path)

        calls = {"n": 0}
        original = writer_module.write_segment

        def explode(snapshot, seg_path):
            calls["n"] += 1
            raise _CrashBeforeCommit("disk died mid-write")

        monkeypatch.setattr(writer_module, "write_segment", explode)
        index.add(Document("doc-new", "one more covid report."))
        with pytest.raises(_CrashBeforeCommit):
            save_v3(index, path)
        assert calls["n"] == 1
        monkeypatch.setattr(writer_module, "write_segment", original)

        loaded = load_index(path)
        try:
            assert loaded.storage_info()["generation"] == 1
            assert "doc-new" not in loaded
        finally:
            loaded.close()


class TestCorruptSegments:
    def test_truncated_segment_rejected_on_attach(self, tmp_path):
        path = tmp_path / "corpus.idx"
        record = save_v3(InvertedIndex.from_documents(_documents()), path)
        segment_path = path.with_name(record.segments[0].filename)
        data = segment_path.read_bytes()
        segment_path.write_bytes(data[: len(data) - 64])
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_missing_segment_rejected_on_attach(self, tmp_path):
        path = tmp_path / "corpus.idx"
        record = save_v3(InvertedIndex.from_documents(_documents()), path)
        path.with_name(record.segments[0].filename).unlink()
        with pytest.raises(IndexFormatError):
            load_index(path)
