"""Tests for the Document record."""

import pytest

from repro.index.document import Document


class TestDocument:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            Document("", "body")

    def test_with_body_preserves_identity(self):
        original = Document("d1", "old", title="T", metadata={"x": 1})
        perturbed = original.with_body("new")
        assert perturbed.doc_id == "d1"
        assert perturbed.body == "new"
        assert perturbed.title == "T"
        assert perturbed.metadata == {"x": 1}

    def test_with_body_does_not_mutate_original(self):
        original = Document("d1", "old")
        original.with_body("new")
        assert original.body == "old"

    def test_dict_roundtrip(self):
        original = Document("d1", "body text", title="T", metadata={"k": "v"})
        assert Document.from_dict(original.to_dict()) == original

    def test_from_dict_defaults(self):
        document = Document.from_dict({"doc_id": "d", "body": "b"})
        assert document.title == ""
        assert document.metadata == {}

    def test_frozen(self):
        document = Document("d1", "body")
        with pytest.raises(AttributeError):
            document.body = "changed"
