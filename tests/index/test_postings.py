"""Tests for postings lists."""

import pytest

from repro.index.postings import Posting, PostingsList


class TestPosting:
    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            Posting("d1", 0)

    def test_rejects_position_frequency_mismatch(self):
        with pytest.raises(ValueError):
            Posting("d1", 2, positions=(1,))

    def test_positions_optional(self):
        assert Posting("d1", 3).positions == ()


class TestPostingsList:
    def test_add_and_counters(self):
        postings = PostingsList("covid")
        postings.add(Posting("d1", 2, (0, 5)))
        postings.add(Posting("d2", 1, (3,)))
        assert postings.document_frequency == 2
        assert postings.collection_frequency == 3

    def test_duplicate_doc_rejected(self):
        postings = PostingsList("covid")
        postings.add(Posting("d1", 1, (0,)))
        with pytest.raises(ValueError):
            postings.add(Posting("d1", 1, (1,)))

    def test_remove(self):
        postings = PostingsList("covid")
        postings.add(Posting("d1", 1, (0,)))
        assert postings.remove("d1") is True
        assert postings.remove("d1") is False
        assert postings.document_frequency == 0

    def test_get_and_contains(self):
        postings = PostingsList("t")
        posting = Posting("d1", 1, (2,))
        postings.add(posting)
        assert postings.get("d1") == posting
        assert postings.get("d2") is None
        assert "d1" in postings
        assert "d2" not in postings

    def test_iteration(self):
        postings = PostingsList("t")
        postings.add(Posting("d1", 1, (0,)))
        postings.add(Posting("d2", 2, (1, 2)))
        assert [p.doc_id for p in postings] == ["d1", "d2"]
