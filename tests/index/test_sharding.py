"""The sharded corpus backend: routers, merged views, bulk ingestion,
persistence, and surface parity with a single inverted index."""

import json

import pytest

from repro.errors import ConfigurationError, DocumentNotFoundError
from repro.datasets.synthetic import synthetic_corpus
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.sharding import (
    AnalysisMemo,
    HashRouter,
    MergedStats,
    RoundRobinRouter,
    ShardedIndex,
    build_router,
)
from repro.index.similarity import (
    Bm25Similarity,
    DirichletSimilarity,
    TfIdfSimilarity,
)
from repro.index.storage import load_index, save_index
from repro.text.analyzer import default_analyzer

QUERY = "virus vaccine hospital market storm"


@pytest.fixture(scope="module")
def corpus():
    return synthetic_corpus(120, seed=7)


@pytest.fixture(scope="module")
def single(corpus):
    return InvertedIndex.from_documents(corpus)


@pytest.fixture(scope="module")
def sharded(corpus):
    return ShardedIndex.from_documents(corpus, shard_count=4, workers=2)


class TestRouters:
    def test_hash_router_is_deterministic_across_instances(self):
        a, b = HashRouter(4), HashRouter(4)
        for doc_id in ("health-0001", "finance-0002", "x"):
            assert a.route(doc_id) == b.route(doc_id)
            assert 0 <= a.route(doc_id) < 4

    def test_round_robin_cycles(self):
        router = RoundRobinRouter(3)
        assert [router.route(f"d{i}") for i in range(7)] == [
            0, 1, 2, 0, 1, 2, 0,
        ]

    def test_build_router_names(self):
        assert isinstance(build_router("hash", 2), HashRouter)
        assert isinstance(build_router("round-robin", 2), RoundRobinRouter)
        with pytest.raises(ConfigurationError):
            build_router("modulo", 2)

    def test_router_shard_count_must_match(self):
        with pytest.raises(ConfigurationError):
            ShardedIndex(shard_count=4, router=HashRouter(2))

    def test_round_robin_balances_exactly(self, corpus):
        index = ShardedIndex.from_documents(
            corpus, shard_count=4, router=RoundRobinRouter(4)
        )
        assert index.shard_sizes() == [30, 30, 30, 30]


class TestMergedStats:
    def test_add_remove_roundtrip(self):
        stats = MergedStats()
        stats.add_document(["a", "b", "a", "c"])
        stats.add_document(["b", "d"])
        assert stats.document_frequency("a") == 1
        assert stats.collection_frequency("a") == 2
        assert stats.document_frequency("b") == 2
        assert stats.total_terms == 6
        assert stats.terms() == ["a", "b", "c", "d"]
        stats.remove_document({"a": 2, "b": 1, "c": 1}, 4)
        assert stats.document_frequency("a") == 0
        assert stats.terms() == ["b", "d"]
        assert stats.stats().document_count == 1

    def test_reintroduced_term_appends_like_postings_dict(self):
        stats = MergedStats()
        stats.add_document(["a", "b"])
        stats.remove_document({"a": 1, "b": 1}, 2)
        stats.add_document(["b", "a"])
        assert stats.terms() == ["b", "a"]


class TestSurfaceParity:
    """Every read on the sharded index matches the single index exactly."""

    def test_stats_and_lengths(self, single, sharded):
        assert single.stats() == sharded.stats()
        assert len(single) == len(sharded)
        assert (
            single.average_document_length == sharded.average_document_length
        )

    def test_global_insertion_order(self, single, sharded):
        assert single.doc_ids == sharded.doc_ids
        assert [d.doc_id for d in single] == [d.doc_id for d in sharded]

    def test_terms_order(self, single, sharded):
        assert list(single.terms()) == list(sharded.terms())

    def test_per_term_statistics(self, single, sharded):
        for term in list(single.terms()):
            assert single.document_frequency(term) == sharded.document_frequency(term)
            assert single.collection_frequency(term) == sharded.collection_frequency(term)

    def test_per_document_accessors(self, single, sharded, corpus):
        for document in corpus[:20]:
            doc_id = document.doc_id
            assert doc_id in sharded
            assert sharded.document(doc_id).body == single.document(doc_id).body
            assert sharded.document_length(doc_id) == single.document_length(doc_id)
            assert sharded.term_vector(doc_id) == single.term_vector(doc_id)
            assert sharded.term_frequencies(doc_id) == single.term_frequencies(doc_id)

    def test_merged_postings(self, single, sharded):
        terms = [t for t in single.terms() if single.document_frequency(t) > 3]
        assert len(terms) >= 3
        for term in terms[:5]:
            merged = sharded.postings(term)
            reference = single.postings(term)
            assert merged is not None and reference is not None
            assert merged.document_frequency == reference.document_frequency
            assert merged.collection_frequency == reference.collection_frequency
            assert len(merged) == len(reference)
            by_doc = {posting.doc_id: posting for posting in reference}
            for posting in merged:
                assert posting == by_doc[posting.doc_id]
                assert posting.doc_id in merged
                assert merged.get(posting.doc_id) == posting
        assert sharded.postings("zzz-unindexed") is None
        assert sharded.postings(terms[0]).get("no-such-doc") is None

    def test_missing_document_raises(self, sharded):
        with pytest.raises(DocumentNotFoundError):
            sharded.document("ghost")
        with pytest.raises(DocumentNotFoundError):
            sharded.document_length("ghost")
        with pytest.raises(DocumentNotFoundError):
            sharded.remove("ghost")
        with pytest.raises(DocumentNotFoundError):
            sharded.shard_of("ghost")


class TestRetrievalEquivalence:
    @pytest.mark.parametrize(
        "similarity",
        [Bm25Similarity(), TfIdfSimilarity(), DirichletSimilarity()],
        ids=["bm25", "tfidf", "lm"],
    )
    def test_scores_and_topk_byte_identical(self, single, sharded, similarity):
        a = IndexSearcher(single, similarity)
        b = IndexSearcher(sharded, similarity)
        assert a.score_all(QUERY) == b.score_all(QUERY)
        assert a.search(QUERY, 10) == b.search(QUERY, 10)

    def test_phrase_and_boolean(self, single, sharded):
        a, b = IndexSearcher(single), IndexSearcher(sharded)
        assert a.search_phrase("officials said") == b.search_phrase("officials said")
        assert a.search_boolean(QUERY, mode="or") == b.search_boolean(QUERY, mode="or")
        assert a.search_boolean("virus market", mode="and") == b.search_boolean(
            "virus market", mode="and"
        )


class TestMutation:
    def _pair(self, corpus):
        return (
            InvertedIndex.from_documents(corpus),
            ShardedIndex.from_documents(corpus, shard_count=3),
        )

    def test_add_duplicate_raises(self, corpus):
        index = ShardedIndex.from_documents(corpus[:5], shard_count=2)
        with pytest.raises(ValueError, match="duplicate document id"):
            index.add(corpus[0])

    def test_remove_and_readd_keeps_parity(self, corpus):
        single, sharded = self._pair(corpus[:40])
        victim = corpus[7]
        assert sharded.remove(victim.doc_id).doc_id == victim.doc_id
        single.remove(victim.doc_id)
        single.add(victim)
        sharded.add(victim)
        assert single.doc_ids == sharded.doc_ids
        assert list(single.terms()) == list(sharded.terms())
        assert single.stats() == sharded.stats()

    def test_replace_keeps_shard_and_parity(self, corpus):
        single, sharded = self._pair(corpus[:40])
        victim = corpus[3]
        shard_before = sharded.shard_of(victim.doc_id)
        edited = victim.with_body("An entirely new virus outbreak story.")
        single.replace(edited)
        previous = sharded.replace(edited)
        assert previous.body == victim.body
        assert sharded.shard_of(victim.doc_id) == shard_before
        assert sharded.document(victim.doc_id).body == edited.body
        assert single.stats() == sharded.stats()
        assert list(single.terms()) == list(sharded.terms())

    def test_version_advances_on_every_mutation(self, corpus):
        index = ShardedIndex.from_documents(corpus[:10], shard_count=2)
        version = index.version
        index.add(Document("fresh-doc", "a virus story"))
        assert index.version > version
        version = index.version
        index.remove("fresh-doc")
        assert index.version > version


class TestBulkIngestion:
    def test_parallel_matches_serial_and_incremental(self, corpus):
        one_by_one = ShardedIndex(shard_count=4)
        for document in corpus:
            one_by_one.add(document)
        serial = ShardedIndex.from_documents(corpus, shard_count=4, workers=None)
        parallel = ShardedIndex.from_documents(corpus, shard_count=4, workers=4)
        for built in (serial, parallel):
            assert built.doc_ids == one_by_one.doc_ids
            assert list(built.terms()) == list(one_by_one.terms())
            assert built.stats() == one_by_one.stats()
            assert built.shard_sizes() == one_by_one.shard_sizes()

    def test_duplicate_in_batch_fails_before_mutation(self, corpus):
        index = ShardedIndex(shard_count=2)
        batch = [corpus[0], corpus[1], corpus[0]]
        with pytest.raises(ValueError, match="duplicate document id"):
            index.add_documents(batch)
        assert len(index) == 0

    def test_duplicate_against_corpus_fails_before_mutation(self, corpus):
        index = ShardedIndex.from_documents(corpus[:5], shard_count=2)
        with pytest.raises(ValueError, match="duplicate document id"):
            index.add_documents([corpus[10], corpus[2]])
        assert len(index) == 5

    def test_failing_batch_rolls_back(self, corpus, monkeypatch):
        index = ShardedIndex.from_documents(corpus[:10], shard_count=2)
        boom = RuntimeError("analysis exploded")

        original = AnalysisMemo.analyze
        calls = {"n": 0}

        def failing_analyze(self, text):
            calls["n"] += 1
            if calls["n"] > 3:
                raise boom
            return original(self, text)

        monkeypatch.setattr(AnalysisMemo, "analyze", failing_analyze)
        with pytest.raises(RuntimeError, match="analysis exploded"):
            index.add_documents(corpus[10:30], workers=2)
        monkeypatch.setattr(AnalysisMemo, "analyze", original)
        assert len(index) == 10
        assert index.doc_ids == [d.doc_id for d in corpus[:10]]
        # The index is still fully usable after the rollback.
        index.add_documents(corpus[10:30])
        assert len(index) == 30

    def test_empty_batch_is_a_noop(self):
        index = ShardedIndex(shard_count=2)
        version = index.version
        assert index.add_documents([]) == 0
        assert index.version == version

    def test_single_index_bulk_matches_loop(self, corpus):
        loop = InvertedIndex.from_documents(corpus)
        bulk = InvertedIndex()
        assert bulk.add_documents(corpus) == len(corpus)
        assert loop.doc_ids == bulk.doc_ids
        assert list(loop.terms()) == list(bulk.terms())
        assert loop.stats() == bulk.stats()
        with pytest.raises(ValueError, match="duplicate document id"):
            bulk.add_documents([corpus[0]])


class TestAnalysisMemo:
    def test_memoized_analysis_is_byte_identical(self, corpus):
        analyzer = default_analyzer()
        memo = AnalysisMemo(analyzer)
        for document in corpus[:50]:
            assert memo.analyze(document.body) == analyzer.analyze(document.body)
        assert len(memo) > 0

    def test_filtered_tokens_are_cached_as_none(self):
        memo = AnalysisMemo(default_analyzer())
        assert memo.analyze("the the the") == []
        assert len(memo) == 1


class TestPersistence:
    def test_v2_roundtrip_hash_router(self, tmp_path, corpus, sharded):
        path = tmp_path / "corpus.json"
        save_index(sharded, path)
        manifest = json.loads(path.read_text())
        assert manifest["format_version"] == 2
        assert manifest["shard_count"] == 4
        assert len(list(tmp_path.glob("corpus.shard-*.json"))) == 4
        loaded = load_index(path)
        assert isinstance(loaded, ShardedIndex)
        assert loaded.doc_ids == sharded.doc_ids
        assert loaded.shard_sizes() == sharded.shard_sizes()
        assert loaded.stats() == sharded.stats()
        assert list(loaded.terms()) == list(sharded.terms())
        assert loaded.analyzer.to_config() == sharded.analyzer.to_config()

    def test_v2_roundtrip_preserves_round_robin_placements(self, tmp_path, corpus):
        index = ShardedIndex.from_documents(
            corpus[:17], shard_count=3, router=RoundRobinRouter(3)
        )
        path = tmp_path / "rr.json"
        save_index(index, path)
        loaded = load_index(path)
        for doc_id in index.doc_ids:
            assert loaded.shard_of(doc_id) == index.shard_of(doc_id)
        # The restored router resumes the cycle where the saved one left off.
        loaded.add(Document("rr-next", "a fresh virus story"))
        index.add(Document("rr-next", "a fresh virus story"))
        assert loaded.shard_of("rr-next") == index.shard_of("rr-next")

    def test_round_robin_cursor_survives_removals(self, tmp_path, corpus):
        # The cycle position cannot be derived from surviving documents:
        # after a removal the persisted cursor must drive the next add.
        index = ShardedIndex.from_documents(
            corpus[:3], shard_count=2, router=RoundRobinRouter(2)
        )
        index.remove(corpus[1].doc_id)
        path = tmp_path / "rr-removed.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.router.cursor == index.router.cursor
        loaded.add(Document("after-reload", "a fresh virus story"))
        index.add(Document("after-reload", "a fresh virus story"))
        assert loaded.shard_of("after-reload") == index.shard_of("after-reload")

    def test_round_robin_cursor_validation(self):
        router = RoundRobinRouter(3)
        with pytest.raises(ConfigurationError):
            router.cursor = 3

    def test_resaving_narrower_removes_stale_shard_files(self, tmp_path, corpus):
        path = tmp_path / "corpus.json"
        save_index(ShardedIndex.from_documents(corpus, shard_count=4), path)
        save_index(ShardedIndex.from_documents(corpus, shard_count=2), path)
        assert len(list(tmp_path.glob("corpus.shard-*.json"))) == 2
        assert load_index(path).shard_count == 2

    def test_v1_single_index_still_roundtrips(self, tmp_path, single):
        path = tmp_path / "single.json"
        save_index(single, path)
        assert json.loads(path.read_text())["format_version"] == 1
        loaded = load_index(path)
        assert isinstance(loaded, InvertedIndex)
        assert loaded.doc_ids == single.doc_ids

    def test_save_concurrent_with_mutation_is_consistent(self, tmp_path, corpus):
        """A save racing corpus mutation must capture one coherent state.

        The manifest and shard files come from a single atomic snapshot;
        a torn save would make load_index silently drop (or fail on) the
        documents that mutated mid-save.
        """
        import threading

        index = ShardedIndex.from_documents(corpus[:20], shard_count=3)
        stop = threading.Event()

        def mutate():
            position = 0
            while not stop.is_set():
                doc_id = f"churn-{position}"
                index.add(Document(doc_id, "a rolling virus story"))
                if position >= 3:
                    index.remove(f"churn-{position - 3}")
                position += 1

        writer = threading.Thread(target=mutate, daemon=True)
        writer.start()
        try:
            for round_number in range(10):
                path = tmp_path / f"race-{round_number}.json"
                save_index(index, path)
                loaded = load_index(path)  # must never raise / drop docs
                assert len(loaded) >= 20
                assert list(loaded.terms())  # coherent merged stats
        finally:
            stop.set()
            writer.join(timeout=10)

    def test_export_state_snapshot_is_coherent(self, corpus):
        index = ShardedIndex.from_documents(corpus[:15], shard_count=3)
        placements, shard_documents, version, cursor = index.export_state()
        assert [doc_id for doc_id, _ in placements] == index.doc_ids
        assert version == index.version
        assert cursor is None  # hash router carries no cycle state
        by_shard = [len(docs) for docs in shard_documents]
        assert by_shard == index.shard_sizes()
        for doc_id, shard in placements:
            assert doc_id in {d.doc_id for d in shard_documents[shard]}

    def test_interrupted_resave_leaves_previous_save_loadable(
        self, tmp_path, corpus, monkeypatch
    ):
        """Crash safety: the manifest rename is the commit point.

        A re-save that dies after writing its shard files but before the
        manifest must leave the *previous* save fully loadable — its
        generation-named shard files are never overwritten.
        """
        import repro.index.storage as storage

        path = tmp_path / "corpus.json"
        index = ShardedIndex.from_documents(corpus[:10], shard_count=2)
        save_index(index, path)
        first_doc_ids = index.doc_ids

        index.add_documents(corpus[10:20])
        original = storage._write_json

        def dying_write(target, payload):
            if target == path:  # the manifest write = the commit point
                raise OSError("disk full")
            original(target, payload)

        monkeypatch.setattr(storage, "_write_json", dying_write)
        with pytest.raises(OSError, match="disk full"):
            save_index(index, path)
        monkeypatch.setattr(storage, "_write_json", original)

        loaded = load_index(path)  # the old manifest + its own shard files
        assert loaded.doc_ids == first_doc_ids
        # And a subsequent successful save commits the new state + GCs.
        save_index(index, path)
        assert load_index(path).doc_ids == index.doc_ids
        referenced = set(
            json.loads(path.read_text())["shard_files"]
        )
        on_disk = {p.name for p in tmp_path.glob("corpus.shard-*.json")}
        assert on_disk == referenced

    def test_corrupt_manifest_placement_raises(self, tmp_path, corpus):
        path = tmp_path / "corpus.json"
        save_index(ShardedIndex.from_documents(corpus[:5], shard_count=2), path)
        manifest = json.loads(path.read_text())
        manifest["placements"].append(["ghost-doc", 1])
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="ghost-doc"):
            load_index(path)
