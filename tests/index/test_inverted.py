"""Tests for the inverted index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DocumentNotFoundError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex


class TestIndexBuild:
    def test_from_documents(self, tiny_docs):
        index = InvertedIndex.from_documents(tiny_docs)
        assert len(index) == len(tiny_docs)

    def test_duplicate_id_rejected(self):
        index = InvertedIndex()
        index.add(Document("d1", "text"))
        with pytest.raises(ValueError):
            index.add(Document("d1", "other"))

    def test_document_lookup(self, tiny_index, tiny_docs):
        assert tiny_index.document("d1") == tiny_docs[0]

    def test_missing_document_raises(self, tiny_index):
        with pytest.raises(DocumentNotFoundError):
            tiny_index.document("nope")

    def test_contains_and_iter(self, tiny_index):
        assert "d1" in tiny_index
        assert "zz" not in tiny_index
        assert {d.doc_id for d in tiny_index} == set(tiny_index.doc_ids)


class TestStatistics:
    def test_document_frequency(self, tiny_index):
        # 'covid' appears in d1, d2, d5 of the tiny corpus.
        assert tiny_index.document_frequency("covid") == 3

    def test_collection_frequency_counts_occurrences(self, tiny_index):
        assert tiny_index.collection_frequency("covid") >= tiny_index.document_frequency("covid")

    def test_unknown_term_zero(self, tiny_index):
        assert tiny_index.document_frequency("zzzz") == 0
        assert tiny_index.collection_frequency("zzzz") == 0

    def test_term_frequency(self, tiny_index):
        assert tiny_index.term_frequency("covid", "d5") == 2
        assert tiny_index.term_frequency("covid", "d4") == 0

    def test_document_length_positive(self, tiny_index):
        assert tiny_index.document_length("d1") > 0

    def test_term_vector_is_copy(self, tiny_index):
        vector = tiny_index.term_vector("d1")
        vector["covid"] = 999
        assert tiny_index.term_frequency("covid", "d1") != 999

    def test_stats_totals(self, tiny_index):
        stats = tiny_index.stats()
        assert stats.document_count == 6
        assert stats.total_terms == sum(
            tiny_index.document_length(d) for d in tiny_index.doc_ids
        )
        assert stats.average_document_length == pytest.approx(
            stats.total_terms / stats.document_count
        )

    def test_empty_index_stats(self):
        stats = InvertedIndex().stats()
        assert stats.document_count == 0
        assert stats.average_document_length == 0.0


class TestPositions:
    def test_positions_recorded(self, tiny_index):
        posting = tiny_index.postings("covid").get("d1")
        assert posting.frequency == len(posting.positions)

    def test_positions_index_term_sequence(self, tiny_index):
        terms = tiny_index.analyzer.analyze(tiny_index.document("d1").body)
        posting = tiny_index.postings("covid").get("d1")
        for position in posting.positions:
            assert terms[position] == "covid"


class TestMutation:
    def test_remove_restores_stats(self, tiny_docs):
        index = InvertedIndex.from_documents(tiny_docs)
        before = index.stats()
        index.add(Document("extra", "covid covid covid everywhere"))
        index.remove("extra")
        after = index.stats()
        assert before == after

    def test_remove_missing_raises(self, tiny_index):
        with pytest.raises(DocumentNotFoundError):
            tiny_index.remove("missing")

    def test_remove_drops_empty_postings(self):
        index = InvertedIndex()
        index.add(Document("only", "unicorns"))
        index.remove("only")
        assert index.postings("unicorn") is None

    def test_replace_swaps_body(self, tiny_docs):
        index = InvertedIndex.from_documents(tiny_docs)
        previous = index.replace(Document("d4", "entirely new finance text"))
        assert previous.doc_id == "d4"
        assert "entir" in [t for t in index.terms()] or index.document_frequency("entir") == 1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.text(alphabet="abcde ", min_size=1, max_size=30), min_size=1, max_size=8))
    def test_add_remove_roundtrip_property(self, bodies):
        base = [Document(f"base{i}", body or "x") for i, body in enumerate(bodies[:-1])]
        index = InvertedIndex.from_documents(base)
        snapshot = {
            term: index.collection_frequency(term) for term in index.terms()
        }
        index.add(Document("volatile", bodies[-1] or "y"))
        index.remove("volatile")
        assert {
            term: index.collection_frequency(term) for term in index.terms()
        } == snapshot
