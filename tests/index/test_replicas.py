"""Read-only replicas: N processes over one on-disk v3 index.

Two layers of coverage:

* **In-process** — `ReplicaIndex` refresh semantics, the generation
  watcher, delegation, and the read-only contract.
* **Multi-process** — a writer committing new generations while two
  independent reader processes attach the same index files and serve
  queries; readers must agree with each other and with the committed
  corpus at every step.
"""

import multiprocessing
import time

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.errors import ReadOnlyIndexError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.persist import GenerationWatcher, ReplicaIndex, save_v3
from repro.index.sharding import ShardedIndex
from tests.core.test_search_equivalence import _corpus

QUERY = "covid outbreak hospital"
K = 5


def _seed_index(path, shards=None):
    documents = _corpus()
    if shards:
        index = ShardedIndex.from_documents(documents, shards)
    else:
        index = InvertedIndex.from_documents(documents)
    save_v3(index, path)
    return index


class TestReplicaIndex:
    def test_delegates_read_surface(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)
        replica = ReplicaIndex(path)
        try:
            assert len(replica) == len(index)
            assert replica.doc_ids == [d.doc_id for d in index]
            assert "doc-00" in replica
            assert replica.document("doc-00").body == index.document("doc-00").body
            assert list(replica.terms()) == list(index.terms())
            assert replica.storage_info()["replica"] is True
            assert replica.generation == 1
        finally:
            replica.close()

    def test_mutations_raise(self, tmp_path):
        path = tmp_path / "corpus.idx"
        _seed_index(path)
        replica = ReplicaIndex(path)
        try:
            with pytest.raises(ReadOnlyIndexError):
                replica.add(Document("doc-z", "new text"))
            with pytest.raises(ReadOnlyIndexError):
                replica.remove("doc-00")
        finally:
            replica.close()

    def test_refresh_picks_up_commit(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)
        replica = ReplicaIndex(path)
        try:
            assert replica.refresh() is False  # nothing new yet
            version_before = replica.version
            index.add(
                Document("doc-new", "covid outbreak hospital overload again.")
            )
            save_v3(index, path)
            assert replica.refresh() is True
            assert replica.generation == 2
            assert "doc-new" in replica
            # The content fingerprint moved with the commit, so every
            # version-keyed cache above the index invalidates.
            assert replica.version != version_before
            assert replica.refresh() is False  # idempotent
        finally:
            replica.close()

    def test_two_replicas_same_process_agree(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path, shards=3)
        first = ReplicaIndex(path)
        second = ReplicaIndex(path)
        try:
            assert first.version == second.version
            engine_a = CredenceEngine.from_index(
                first, config=EngineConfig(ranker="bm25", seed=5)
            )
            engine_b = CredenceEngine.from_index(
                second, config=EngineConfig(ranker="bm25", seed=5)
            )
            assert (
                engine_a.rank(QUERY, K).to_dicts()
                == engine_b.rank(QUERY, K).to_dicts()
            )
            index.add(Document("doc-new", "covid hospital outbreak news."))
            save_v3(index, path)
            assert first.refresh() and second.refresh()
            assert first.version == second.version
            assert (
                engine_a.rank(QUERY, K).to_dicts()
                == engine_b.rank(QUERY, K).to_dicts()
            )
        finally:
            first.close()
            second.close()

    def test_watcher_refreshes_in_background(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)
        replica = ReplicaIndex(path)
        refreshed = []
        try:
            watcher = replica.watch(
                interval=0.05, on_refresh=refreshed.append
            )
            assert isinstance(watcher, GenerationWatcher)
            assert replica.watch(interval=0.05) is watcher  # memoised
            index.add(Document("doc-new", "late breaking covid report."))
            save_v3(index, path)
            deadline = time.monotonic() + 5.0
            while replica.generation < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert replica.generation == 2
            assert refreshed == [2]
        finally:
            replica.close()
        assert not replica._watcher.is_alive()


# -- multi-process: one writer, two readers ----------------------------------


def _reader_main(path, barriers, results, slot):
    """Attach the shared index; rank before and after the writer commits."""
    replica = ReplicaIndex(str(path))
    try:
        engine = CredenceEngine.from_index(
            replica, config=EngineConfig(ranker="bm25", seed=5)
        )
        results[f"{slot}-gen1"] = (
            replica.generation,
            replica.version,
            tuple(engine.rank(QUERY, K).doc_ids),
        )
        barriers["ranked_gen1"].wait(timeout=30)
        barriers["committed_gen2"].wait(timeout=30)
        deadline = time.monotonic() + 10.0
        while not replica.refresh() and time.monotonic() < deadline:
            time.sleep(0.05)
        results[f"{slot}-gen2"] = (
            replica.generation,
            replica.version,
            tuple(engine.rank(QUERY, K).doc_ids),
        )
    finally:
        replica.close()


class TestMultiProcessReplicas:
    def test_two_readers_follow_one_writer(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)

        context = multiprocessing.get_context("fork")
        manager = context.Manager()
        results = manager.dict()
        barriers = {
            "ranked_gen1": context.Barrier(3),
            "committed_gen2": context.Barrier(3),
        }
        readers = [
            context.Process(
                target=_reader_main, args=(path, barriers, results, slot)
            )
            for slot in ("reader-a", "reader-b")
        ]
        for reader in readers:
            reader.start()
        try:
            # Both readers have served generation 1; now the writer
            # commits generation 2 while they stay attached.
            barriers["ranked_gen1"].wait(timeout=30)
            index.add(
                Document(
                    "doc-new",
                    "covid outbreak hospital capacity doubled overnight.",
                )
            )
            save_v3(index, path)
            barriers["committed_gen2"].wait(timeout=30)
            for reader in readers:
                reader.join(timeout=60)
                assert reader.exitcode == 0
        finally:
            for reader in readers:
                if reader.is_alive():
                    reader.terminate()
                    reader.join(timeout=10)

        a1, b1 = results["reader-a-gen1"], results["reader-b-gen1"]
        a2, b2 = results["reader-a-gen2"], results["reader-b-gen2"]
        manager.shutdown()
        # Identical generation, fingerprint, and ranking in both readers,
        # before and after the commit.
        assert a1 == b1
        assert a2 == b2
        assert a1[0] == 1 and a2[0] == 2
        assert a1[1] != a2[1]  # fingerprint moved with the commit
        # The new generation actually changed what gets served: the
        # reference engine over the final corpus agrees with the readers.
        reference = CredenceEngine.from_index(
            index, config=EngineConfig(ranker="bm25", seed=5)
        )
        assert tuple(reference.rank(QUERY, K).doc_ids) == a2[2]
