"""Save→load equivalence: persistence must be invisible to results.

The acceptance contract of the persistence subsystem: ranks, scores,
and every explainer's full ``to_dict()`` payload are **byte-identical**
between a live engine and an engine reloaded from disk — across every
on-disk format (v1/v2 JSON, v3 packed attach, v3 hydrated), both corpus
layouts (plain and sharded), the BM25 / TF-IDF / LM ranker families,
and the LTR feature ranker.
"""

import json

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.index.storage import load_index, save_index
from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
from repro.ltr.feature_cf import FeatureCounterfactualExplainer
from repro.ltr.models import LinearLtrModel
from repro.ltr.ranker import LtrRanker
from repro.ranking.rerank import candidate_pool
from tests.core.test_search_equivalence import _corpus
from tests.index.test_sharded_equivalence import (
    K,
    QUERY,
    STRATEGIES,
    _canonical,
)

LEXICAL_RANKERS = ("bm25", "tfidf", "lm")

#: (shards, save format, load mode) — every persistence path a corpus
#: can round-trip through. ``format=None`` is the legacy default
#: (v1 for plain, v2 for sharded).
ROUND_TRIPS = (
    (None, None, "auto"),
    (4, None, "auto"),
    (None, "v3", "auto"),
    (4, "v3", "auto"),
    (None, "v3", "memory"),
    (4, "v3", "memory"),
)

ROUND_TRIP_IDS = (
    "plain-v1",
    "sharded-v2",
    "plain-v3-attach",
    "sharded-v3-attach",
    "plain-v3-hydrate",
    "sharded-v3-hydrate",
)


def _live_engine(ranker: str, shards: int | None) -> CredenceEngine:
    return CredenceEngine(
        _corpus(),
        EngineConfig(ranker=ranker, seed=5),
        shards=shards,
        ingest_workers=2 if shards else None,
    )


def _reloaded_engine(live: CredenceEngine, tmp_path, format, mode, ranker):
    path = tmp_path / "corpus.idx"
    save_index(live.index, path, format=format)
    return CredenceEngine.load(
        path, config=EngineConfig(ranker=ranker, seed=5), mode=mode
    )


@pytest.fixture(params=ROUND_TRIPS, ids=ROUND_TRIP_IDS)
def engine_pair(request, tmp_path_factory):
    shards, format, mode = request.param
    tmp_path = tmp_path_factory.mktemp("persist-eq")
    live = _live_engine("bm25", shards)
    return live, _reloaded_engine(live, tmp_path, format, mode, "bm25")


class TestRankingEquivalence:
    @pytest.mark.parametrize("ranker", LEXICAL_RANKERS)
    @pytest.mark.parametrize(
        "shards,format,mode", ROUND_TRIPS, ids=ROUND_TRIP_IDS
    )
    def test_topk_byte_identical(
        self, tmp_path, ranker, shards, format, mode
    ):
        live = _live_engine(ranker, shards)
        reloaded = _reloaded_engine(live, tmp_path, format, mode, ranker)
        assert (
            reloaded.rank(QUERY, K).to_dicts()
            == live.rank(QUERY, K).to_dicts()
        )

    def test_full_corpus_scores_identical(self, engine_pair):
        live, reloaded = engine_pair
        k = len(_corpus())
        reference = live.rank(QUERY, k).to_dicts()
        assert reloaded.rank(QUERY, k).to_dicts() == reference


class TestExplainerEquivalence:
    @pytest.mark.parametrize(
        "strategy,knobs", STRATEGIES, ids=[name for name, _ in STRATEGIES]
    )
    def test_strategy_byte_identical(self, engine_pair, strategy, knobs):
        live, reloaded = engine_pair
        target = live.rank(QUERY, K).doc_ids[0]
        request = ExplainRequest(QUERY, target, strategy=strategy, k=K, **knobs)
        reference = _canonical(live.explain(request).result.to_dict())
        assert (
            _canonical(reloaded.explain(request).result.to_dict())
            == reference
        )


class TestLtrEquivalence:
    """The sixth strategy (features/ltr) over live vs. reloaded corpora."""

    @pytest.fixture(scope="class")
    def ltr_setup(self):
        corpus = assign_priors(_corpus(), seed=7)
        examples = synthetic_letor_dataset(
            corpus, [QUERY, "markets earnings report"], seed=11
        )
        model = LinearLtrModel.fit(examples)
        return corpus, model

    def _explain(self, index, model):
        ranker = LtrRanker(index, model)
        explainer = FeatureCounterfactualExplainer(ranker)
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        ranking = ranker.rank(QUERY, K).to_dicts()
        result = explainer.explain(QUERY, target, n=2, k=K)
        return ranking, _canonical(result.to_dict())

    @pytest.mark.parametrize(
        "shards,format,mode", ROUND_TRIPS, ids=ROUND_TRIP_IDS
    )
    def test_feature_cf_byte_identical(
        self, ltr_setup, tmp_path, shards, format, mode
    ):
        corpus, model = ltr_setup
        live = _live_engine("bm25", shards)
        # LTR priors ride in document metadata, so rebuild the live index
        # over the prior-annotated corpus before persisting it.
        from repro.index.inverted import InvertedIndex
        from repro.index.sharding import ShardedIndex

        if shards:
            index = ShardedIndex.from_documents(corpus, shards, workers=2)
        else:
            index = InvertedIndex.from_documents(corpus)
        path = tmp_path / "ltr.idx"
        save_index(index, path, format=format)
        reloaded = load_index(path, mode=mode)
        assert self._explain(reloaded, model) == self._explain(index, model)


class TestResultStoreKeys:
    """``index.version`` survives save→load, so ResultStore keys do."""

    @pytest.mark.parametrize("shards", [None, 4], ids=["plain", "sharded"])
    def test_version_stable_across_processes(self, tmp_path, shards):
        live = _live_engine("bm25", shards)
        path = tmp_path / "corpus.idx"
        save_index(live.index, path, format="v3")
        first = load_index(path)
        second = load_index(path)
        try:
            # Two independent attaches (≈ two replica processes) agree.
            assert first.version == second.version
        finally:
            first.close()
            second.close()

    def test_cached_explanations_replayable_after_restart(self, tmp_path):
        live = _live_engine("bm25", None)
        path = tmp_path / "corpus.idx"
        save_index(live.index, path, format="v3")
        restarted = CredenceEngine.load(
            path, config=EngineConfig(ranker="bm25", seed=5)
        )
        request = ExplainRequest(
            QUERY,
            live.rank(QUERY, K).doc_ids[0],
            strategy="document/sentence-removal",
            k=K,
        )
        live.service().explain(request)
        before = live.service().metrics_snapshot()
        assert before["store"]["entries"] == 1
        # Same request on the restarted engine: the store key embeds
        # index.version, which the v3 fingerprint keeps stable, so the
        # second call is answered from the restarted engine's store.
        restarted.service().explain(request)
        restarted.service().explain(request)
        after = restarted.service().metrics_snapshot()
        assert after["store"]["hits"] == 1
        assert after["store"]["entries"] == 1
