"""Unit tests for the v3 packed persistence format.

Covers the layers bottom-up: the varint codec, segment write/read
round-trips, the SQLite manifest and its commit protocol, format
auto-detection, and the read-only contract of attached packed views.
"""

import sqlite3

import pytest

from repro.errors import IndexFormatError, ReadOnlyIndexError, ReproError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.persist import (
    Manifest,
    PackedIndex,
    PackedShardedIndex,
    Segment,
    attach_packed,
    is_v3_manifest,
    save_v3,
    segment_filename,
    write_segment,
)
from repro.index.persist.manifest import (
    decode_merged_terms,
    decode_placements,
    encode_merged_terms,
    encode_placements,
)
from repro.index.persist.varint import (
    read_deltas,
    read_uvarint,
    write_deltas,
    write_uvarint,
)
from repro.index.sharding import ShardedIndex
from repro.index.storage import detect_format, load_index, save_index


def _documents():
    return [
        Document("doc-a", "Covid outbreak overwhelmed the hospital wards."),
        Document(
            "doc-b",
            "Markets rallied; earnings beat the report again and again.",
            title="Earnings",
            metadata={"source": "wire", "year": 2021},
        ),
        Document("doc-c", "Hospital staff reported a second covid outbreak."),
        Document("doc-d", "   "),  # empty after analysis
        Document("doc-e", "Café schließt: outbreak of flu in the café."),
    ]


def _index():
    return InvertedIndex.from_documents(_documents())


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 2**21, 2**35, 2**63 - 1]
    )
    def test_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_compactness(self):
        out = bytearray()
        write_uvarint(out, 127)
        assert len(out) == 1
        out = bytearray()
        write_uvarint(out, 128)
        assert len(out) == 2

    def test_truncated_raises(self):
        out = bytearray()
        write_uvarint(out, 2**21)
        with pytest.raises(IndexFormatError):
            read_uvarint(bytes(out[:-1]), 0)

    def test_deltas_round_trip(self):
        values = [3, 4, 10, 11, 500, 501]
        out = bytearray()
        write_deltas(out, values)
        decoded, offset = read_deltas(bytes(out), 0, len(values))
        assert list(decoded) == values
        assert offset == len(out)


class TestSegment:
    def test_round_trip_preserves_everything(self, tmp_path):
        index = _index()
        path = tmp_path / "one.seg"
        size, crc = write_segment(index.export_snapshot(), path)
        assert size == path.stat().st_size
        segment = Segment(path)
        try:
            # Documents in insertion order, with titles and metadata.
            ids = [segment.doc_id(i) for i in range(len(index))]
            assert ids == [d.doc_id for d in index]
            title, body, metadata, freqs = segment.record(
                segment.doc_ordinal("doc-b")
            )
            original = index.document("doc-b")
            assert (title, body, metadata) == (
                original.title,
                original.body,
                original.metadata,
            )
            # Term-frequency pairs replay the first-occurrence order.
            vector = index.term_frequencies("doc-b")
            assert [
                (segment.term(ordinal), freq) for ordinal, freq in freqs
            ] == list(vector.items())
            # Postings with positions survive byte-exactly.
            for term in index.terms():
                ordinal = segment.term_ordinal(term)
                entries = segment.postings_entries(ordinal)
                postings = index.postings(term)
                assert segment.postings_count(ordinal) == len(entries)
                assert [
                    (segment.doc_id(doc), freq, positions)
                    for doc, freq, positions in entries
                ] == [
                    (p.doc_id, p.frequency, p.positions) for p in postings
                ]
            # Empty-after-analysis documents keep zero length.
            assert segment.doc_length(segment.doc_ordinal("doc-d")) == 0
        finally:
            segment.close()

    def test_unknown_lookups(self, tmp_path):
        path = tmp_path / "one.seg"
        write_segment(_index().export_snapshot(), path)
        segment = Segment(path)
        try:
            assert segment.doc_ordinal("nope") is None
            assert segment.term_ordinal("nope") is None
        finally:
            segment.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.seg"
        path.write_bytes(b"NOTASEG!" + b"\x00" * 200)
        with pytest.raises(IndexFormatError):
            Segment(path)

    def test_truncated_segment_rejected(self, tmp_path):
        path = tmp_path / "one.seg"
        write_segment(_index().export_snapshot(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(IndexFormatError):
            Segment(path)


class TestManifest:
    def test_placement_codec(self):
        placements = (0, 3, 1, 1, 0, 2)
        assert decode_placements(encode_placements(placements)) == placements

    def test_merged_terms_codec(self):
        merged = (("covid", 3, 7), ("café", 1, 2), ("ward", 2, 2))
        assert decode_merged_terms(encode_merged_terms(merged)) == merged

    def test_open_rejects_non_sqlite(self, tmp_path):
        path = tmp_path / "nope.idx"
        path.write_text("{}")
        with pytest.raises(IndexFormatError):
            Manifest.open(path)

    def test_open_rejects_missing(self, tmp_path):
        with pytest.raises(IndexFormatError):
            Manifest.open(tmp_path / "absent.idx")

    def test_open_rejects_foreign_sqlite(self, tmp_path):
        path = tmp_path / "foreign.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE unrelated (x INTEGER)")
        with pytest.raises(IndexFormatError):
            Manifest.open(path)

    def test_open_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.idx"
        Manifest.create(path)
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE repro_meta SET value = '99'"
                " WHERE key = 'format_version'"
            )
        with pytest.raises(IndexFormatError, match="format version"):
            Manifest.open(path)

    def test_generation_counter_and_gc(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _index()
        first = save_v3(index, path)
        assert first.generation == 1
        assert is_v3_manifest(path)
        old_segments = [
            path.with_name(s.filename) for s in first.segments
        ]
        assert all(p.exists() for p in old_segments)
        index.add(Document("doc-f", "A fresh covid report."))
        second = save_v3(index, path)
        assert second.generation == 2
        # Superseded generation's files are swept after the new commit.
        assert not any(p.exists() for p in old_segments)
        assert Manifest.open(path).latest_generation_number() == 2

    def test_segment_filename_shape(self):
        assert segment_filename("corpus.idx", 3, 1) == "corpus.idx-g3.s1.seg"


class TestFormatDetection:
    def test_detects_all_three(self, tmp_path):
        index = _index()
        v1 = tmp_path / "v1.json"
        save_index(index, v1)
        assert detect_format(v1) == "v1"
        sharded = ShardedIndex.from_documents(_documents(), 2)
        v2 = tmp_path / "v2.json"
        save_index(sharded, v2)
        assert detect_format(v2) == "v2"
        v3 = tmp_path / "v3.idx"
        save_index(index, v3, format="v3")
        assert detect_format(v3) == "v3"

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            detect_format(tmp_path / "absent.idx")

    def test_garbage_is_format_error(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"\x89PNG not an index either")
        with pytest.raises(IndexFormatError) as excinfo:
            load_index(path)
        # The contract: a library-typed error, also a ValueError.
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)

    def test_unknown_json_version_is_format_error(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"format_version": 42}')
        with pytest.raises(IndexFormatError, match="format version"):
            load_index(path)

    def test_save_rejects_unknown_format(self, tmp_path):
        with pytest.raises(IndexFormatError, match="format"):
            save_index(_index(), tmp_path / "x.idx", format="v9")

    def test_load_rejects_unknown_mode(self, tmp_path):
        path = tmp_path / "corpus.idx"
        save_index(_index(), path, format="v3")
        with pytest.raises(IndexFormatError, match="mode"):
            load_index(path, mode="streaming")


class TestReadOnlyContract:
    @pytest.fixture()
    def packed(self, tmp_path):
        path = tmp_path / "corpus.idx"
        save_v3(_index(), path)
        view = attach_packed(path)
        yield view
        view.close()

    def test_attach_returns_packed_view(self, packed):
        assert isinstance(packed, PackedIndex)
        assert packed.storage_info()["format"] == "v3"
        assert packed.storage_info()["generation"] == 1
        assert packed.storage_info()["bytes_on_disk"] > 0

    def test_mutations_raise(self, packed):
        extra = Document("doc-z", "new text")
        with pytest.raises(ReadOnlyIndexError):
            packed.add(extra)
        with pytest.raises(ReadOnlyIndexError):
            packed.add_documents([extra])
        with pytest.raises(ReadOnlyIndexError):
            packed.remove("doc-a")
        with pytest.raises(ReadOnlyIndexError):
            packed.replace(extra)
        # ReadOnlyIndexError is a ReproError, so service layers catch it.
        assert issubclass(ReadOnlyIndexError, ReproError)

    def test_sharded_attach_and_mutation(self, tmp_path):
        path = tmp_path / "sharded.idx"
        save_v3(ShardedIndex.from_documents(_documents(), 2), path)
        view = attach_packed(path)
        try:
            assert isinstance(view, PackedShardedIndex)
            assert view.shard_count == 2
            with pytest.raises(ReadOnlyIndexError):
                view.add(Document("doc-z", "new text"))
        finally:
            view.close()


class TestVersionFingerprint:
    def test_stable_across_re_save_and_re_attach(self, tmp_path):
        index = _index()
        first_path = tmp_path / "a.idx"
        second_path = tmp_path / "b.idx"
        save_v3(index, first_path)
        save_v3(index, second_path)
        a1 = attach_packed(first_path)
        a2 = attach_packed(first_path)
        b = attach_packed(second_path)
        try:
            # Same content → same fingerprint, across paths and attaches.
            assert a1.version == a2.version == b.version
        finally:
            for view in (a1, a2, b):
                view.close()

    def test_changes_with_content(self, tmp_path):
        index = _index()
        path = tmp_path / "a.idx"
        save_v3(index, path)
        before = attach_packed(path)
        old_version = before.version
        before.close()
        index.add(Document("doc-f", "A fresh covid report."))
        save_v3(index, path)
        after = attach_packed(path)
        try:
            assert after.version != old_version
        finally:
            after.close()


class TestHydration:
    def test_memory_mode_round_trips_mutable(self, tmp_path):
        index = _index()
        path = tmp_path / "corpus.idx"
        save_index(index, path, format="v3")
        hydrated = load_index(path, mode="memory")
        assert isinstance(hydrated, InvertedIndex)
        assert [d.doc_id for d in hydrated] == [d.doc_id for d in index]
        assert list(hydrated.terms()) == list(index.terms())
        for term in index.terms():
            assert [
                (p.doc_id, p.frequency, p.positions)
                for p in hydrated.postings(term)
            ] == [
                (p.doc_id, p.frequency, p.positions)
                for p in index.postings(term)
            ]
        # Hydrated indexes are mutable again.
        hydrated.add(Document("doc-z", "more covid text"))
        assert "doc-z" in hydrated

    def test_sharded_memory_mode_restores_layout(self, tmp_path):
        sharded = ShardedIndex.from_documents(_documents(), 3)
        path = tmp_path / "sharded.idx"
        save_index(sharded, path, format="v3")
        hydrated = load_index(path, mode="memory")
        assert isinstance(hydrated, ShardedIndex)
        assert hydrated.shard_count == 3
        for document in sharded:
            assert hydrated.shard_of(document.doc_id) == sharded.shard_of(
                document.doc_id
            )
        assert list(hydrated.terms()) == list(sharded.terms())
