"""Fork/spawn safety of the SQLite manifest and replica attachment.

Regression net for the PR 6 bug class: an inherited SQLite connection
(its file descriptor and the POSIX advisory locks behind it) crossing a
``fork()`` lets the child release the *parent's* locks when it closes
the fd — POSIX locks belong to the (pid, file) pair, not the fd.
``Manifest`` defends by never holding a connection between operations
(each opens, works, closes); these tests pin that contract under both
start methods, and under the process tier's actual fork points (a
worker pool forked while the parent serves a packed index).

Children report through a ``Manager`` dict and are asserted on exit
code, mirroring ``tests/index/test_replicas.py``; every child target is
module-level so the file stays importable under ``spawn``.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.persist import Manifest, ReplicaIndex, save_v3
from tests.core.test_search_equivalence import _corpus

QUERY = "covid outbreak hospital"
K = 5

START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


def _seed_index(path) -> InvertedIndex:
    index = InvertedIndex.from_documents(_corpus())
    save_v3(index, path)
    return index


def _child_reads_manifest(path, results) -> None:
    """Open the manifest in the child, read, and close everything."""
    manifest = Manifest.open(str(path))
    record = manifest.latest_generation()
    results["child_generation"] = record.generation
    results["child_docs"] = sum(s.document_count for s in record.segments)


def _child_attaches_replica(path, results) -> None:
    replica = ReplicaIndex(str(path))
    try:
        results["child_generation"] = replica.generation
        results["child_len"] = len(replica)
    finally:
        replica.close()


@pytest.mark.parametrize("start_method", START_METHODS)
class TestManifestAcrossProcesses:
    """A child's manifest use must never break the parent's locks."""

    def test_parent_can_commit_after_child_exits(self, tmp_path, start_method):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)

        context = multiprocessing.get_context(start_method)
        manager = context.Manager()
        results = manager.dict()
        child = context.Process(
            target=_child_reads_manifest, args=(path, results)
        )
        child.start()
        child.join(timeout=60)
        try:
            assert child.exitcode == 0
            assert results["child_generation"] == 1
            assert results["child_docs"] == len(index)
        finally:
            manager.shutdown()

        # If the child had inherited (and closed) a parent connection,
        # the parent's next write transaction could deadlock or corrupt;
        # it must commit generation 2 cleanly.
        index.add(
            Document("doc-new", "covid outbreak hospital capacity doubled.")
        )
        save_v3(index, path)
        assert Manifest.open(path).latest_generation_number() == 2

    def test_replica_refresh_survives_a_child_attachment(
        self, tmp_path, start_method
    ):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)
        replica = ReplicaIndex(path)
        try:
            assert replica.generation == 1

            context = multiprocessing.get_context(start_method)
            manager = context.Manager()
            results = manager.dict()
            child = context.Process(
                target=_child_attaches_replica, args=(path, results)
            )
            child.start()
            child.join(timeout=60)
            try:
                assert child.exitcode == 0
                assert results["child_generation"] == 1
                assert results["child_len"] == len(index)
            finally:
                manager.shutdown()

            # The parent replica (attached before the child came and
            # went) must still refresh onto new generations.
            index.add(
                Document("doc-new", "covid outbreak hospital wards again.")
            )
            save_v3(index, path)
            assert replica.refresh() is True
            assert replica.generation == 2
            assert "doc-new" in replica
        finally:
            replica.close()


def _pool_child_noop(results) -> None:
    results["ran"] = True


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="exercises fd inheritance, which only fork exhibits",
)
class TestForkWhileAttached:
    """Forking while a packed index is attached (the process tier's
    exact fork point) must not disturb the parent's open state."""

    def test_process_tier_over_a_packed_index_leaves_locks_intact(
        self, tmp_path
    ):
        from repro.index.storage import load_index
        from repro.service.process import ProcessExecutor

        path = tmp_path / "corpus.idx"
        index = _seed_index(path)
        engine = CredenceEngine.from_index(
            load_index(path), config=EngineConfig(ranker="bm25", seed=5)
        )
        executor = ProcessExecutor(engine, workers=2, start_method="fork")
        try:
            target = engine.rank(QUERY, K).doc_ids[0]
            response = executor.explain(ExplainRequest(QUERY, target, k=K))
            assert response.error is None
        finally:
            executor.shutdown()

        # Workers forked with the manifest attached, served, and exited;
        # the parent-side files must still accept a new generation.
        index.add(
            Document("doc-new", "covid outbreak hospital overflow yet again.")
        )
        save_v3(index, path)
        assert Manifest.open(path).latest_generation_number() == 2

    def test_fork_during_open_replica_is_harmless(self, tmp_path):
        path = tmp_path / "corpus.idx"
        index = _seed_index(path)
        replica = ReplicaIndex(path)
        try:
            context = multiprocessing.get_context("fork")
            manager = context.Manager()
            results = manager.dict()
            child = context.Process(target=_pool_child_noop, args=(results,))
            child.start()
            child.join(timeout=30)
            try:
                assert child.exitcode == 0
                assert results["ran"] is True
            finally:
                manager.shutdown()
            index.add(Document("doc-new", "hospital outbreak covid anew."))
            save_v3(index, path)
            assert replica.refresh() is True
            assert replica.generation == 2
        finally:
            replica.close()
