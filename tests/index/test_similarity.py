"""Tests for the pluggable similarities (BM25 / TF-IDF / Dirichlet LM)."""

import math

import pytest

from repro.index.similarity import (
    Bm25Similarity,
    DirichletSimilarity,
    FieldStats,
    TermStats,
    TfIdfSimilarity,
)

FIELD = FieldStats(document_count=100, average_document_length=50.0, total_terms=5000)


def stats(df: int, cf: int | None = None) -> TermStats:
    return TermStats(document_frequency=df, collection_frequency=cf or df)


class TestBm25:
    def test_zero_tf_scores_zero(self):
        assert Bm25Similarity().score(0, 50, stats(10), FIELD) == 0.0

    def test_zero_df_scores_zero(self):
        assert Bm25Similarity().score(3, 50, stats(0, 0), FIELD) == 0.0

    def test_idf_always_positive(self):
        similarity = Bm25Similarity()
        # Even a term in every document keeps a positive Lucene idf.
        assert similarity.idf(100, 100) > 0.0

    def test_monotone_in_tf(self):
        similarity = Bm25Similarity()
        scores = [similarity.score(tf, 50, stats(10), FIELD) for tf in (1, 2, 5, 20)]
        assert scores == sorted(scores)

    def test_tf_saturation(self):
        similarity = Bm25Similarity(k1=0.9)
        gain_low = similarity.score(2, 50, stats(10), FIELD) - similarity.score(
            1, 50, stats(10), FIELD
        )
        gain_high = similarity.score(21, 50, stats(10), FIELD) - similarity.score(
            20, 50, stats(10), FIELD
        )
        assert gain_high < gain_low

    def test_rare_terms_weigh_more(self):
        similarity = Bm25Similarity()
        rare = similarity.score(1, 50, stats(1), FIELD)
        common = similarity.score(1, 50, stats(90), FIELD)
        assert rare > common

    def test_length_normalisation_penalises_long_docs(self):
        similarity = Bm25Similarity(b=0.75)
        short = similarity.score(1, 10, stats(10), FIELD)
        long = similarity.score(1, 200, stats(10), FIELD)
        assert short > long

    def test_b_zero_ignores_length(self):
        similarity = Bm25Similarity(b=0.0)
        assert similarity.score(1, 10, stats(10), FIELD) == pytest.approx(
            similarity.score(1, 500, stats(10), FIELD)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Bm25Similarity(b=1.5)

    def test_anserini_defaults(self):
        similarity = Bm25Similarity()
        assert similarity.k1 == 0.9
        assert similarity.b == 0.4


class TestTfIdf:
    def test_zero_tf_zero(self):
        assert TfIdfSimilarity().score(0, 10, stats(5), FIELD) == 0.0

    def test_sublinear_tf(self):
        similarity = TfIdfSimilarity(sublinear_tf=True)
        linear = TfIdfSimilarity(sublinear_tf=False)
        assert similarity.score(10, 50, stats(5), FIELD) < linear.score(
            10, 50, stats(5), FIELD
        )

    def test_idf_smooth_positive(self):
        assert TfIdfSimilarity().idf(100, 100) > 0.0


class TestDirichlet:
    def test_needs_all_query_terms(self):
        assert DirichletSimilarity().needs_all_query_terms()
        assert not Bm25Similarity().needs_all_query_terms()

    def test_absent_term_contributes_smoothing_mass(self):
        similarity = DirichletSimilarity(mu=1000)
        score = similarity.score(0, 50, stats(10, 40), FIELD)
        assert score < 0.0  # a log-probability

    def test_present_term_beats_absent(self):
        similarity = DirichletSimilarity(mu=1000)
        present = similarity.score(3, 50, stats(10, 40), FIELD)
        absent = similarity.score(0, 50, stats(10, 40), FIELD)
        assert present > absent

    def test_oov_term_ignored(self):
        assert DirichletSimilarity().score(0, 50, stats(0, 0), FIELD) == 0.0

    def test_mu_must_be_positive(self):
        with pytest.raises(Exception):
            DirichletSimilarity(mu=0)

    def test_matches_formula(self):
        similarity = DirichletSimilarity(mu=500)
        term = stats(10, 40)
        expected = math.log((3 + 500 * (40 / 5000)) / (50 + 500))
        assert similarity.score(3, 50, term, FIELD) == pytest.approx(expected)
