"""Tests for index persistence."""

import json

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.storage import load_index, save_index
from repro.text.analyzer import Analyzer


class TestRoundTrip:
    def test_documents_preserved(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        loaded = load_index(path)
        assert {d.doc_id for d in loaded} == {d.doc_id for d in tiny_index}
        assert loaded.document("d1") == tiny_index.document("d1")

    def test_statistics_preserved(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        loaded = load_index(path)
        assert loaded.stats() == tiny_index.stats()
        for term in tiny_index.terms():
            assert loaded.document_frequency(term) == tiny_index.document_frequency(term)

    def test_search_results_preserved(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        loaded = load_index(path)
        original_hits = IndexSearcher(tiny_index).search("covid outbreak", k=5)
        loaded_hits = IndexSearcher(loaded).search("covid outbreak", k=5)
        assert [h.doc_id for h in original_hits] == [h.doc_id for h in loaded_hits]
        for a, b in zip(original_hits, loaded_hits):
            assert a.score == pytest.approx(b.score)

    def test_analyzer_config_preserved(self, tiny_docs, tmp_path):
        analyzer = Analyzer(stem=False, remove_stopwords=False)
        index = InvertedIndex.from_documents(tiny_docs, analyzer)
        path = tmp_path / "surface.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.analyzer.stem is False
        assert loaded.analyzer.remove_stopwords is False

    def test_parent_directories_created(self, tiny_index, tmp_path):
        nested = tmp_path / "deep" / "dir" / "index.json"
        save_index(tiny_index, nested)
        assert nested.exists()


class TestFormat:
    def test_unknown_version_rejected(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_index(path)


class TestAnalyzerConfigRoundTrip:
    """The analyzer block is Analyzer.to_config()/from_config() — new
    analyzer options cannot silently desync save from load."""

    def test_every_config_field_round_trips(self, tiny_docs, tmp_path):
        analyzer = Analyzer(
            lowercase=False, remove_stopwords=False, stem=False,
            min_token_length=3,
        )
        index = InvertedIndex.from_documents(tiny_docs, analyzer)
        path = tmp_path / "full.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.analyzer.to_config() == analyzer.to_config()
        assert loaded.analyzer.min_token_length == 3
        assert loaded.analyzer.lowercase is False

    def test_saved_payload_carries_all_config_fields(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["analyzer"] == tiny_index.analyzer.to_config()
        # Runtime-only state never leaks into the file.
        assert "stopwords" not in payload["analyzer"]
        assert "_stemmer" not in payload["analyzer"]

    def test_legacy_format_version_1_payload_loads(self, tiny_index, tmp_path):
        """Historical v1 files carried exactly the four original fields."""
        path = tmp_path / "legacy.json"
        save_index(tiny_index, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["analyzer"] = {
            "lowercase": True,
            "remove_stopwords": True,
            "stem": True,
            "min_token_length": 1,
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = load_index(path)
        assert loaded.analyzer.stem is True
        assert loaded.analyzer.min_token_length == 1

    def test_missing_config_keys_fall_back_to_defaults(self, tiny_index, tmp_path):
        path = tmp_path / "sparse.json"
        save_index(tiny_index, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["analyzer"] = {"stem": False}
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = load_index(path)
        assert loaded.analyzer.stem is False
        assert loaded.analyzer.lowercase is True  # field default

    def test_unknown_config_keys_are_rejected(self, tiny_index, tmp_path):
        """A file written by a newer analyzer must not load lossily."""
        path = tmp_path / "future.json"
        save_index(tiny_index, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["analyzer"]["bigram_shingles"] = True
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="bigram_shingles"):
            load_index(path)
