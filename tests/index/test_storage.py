"""Tests for index persistence."""

import json

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.storage import load_index, save_index
from repro.text.analyzer import Analyzer


class TestRoundTrip:
    def test_documents_preserved(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        loaded = load_index(path)
        assert {d.doc_id for d in loaded} == {d.doc_id for d in tiny_index}
        assert loaded.document("d1") == tiny_index.document("d1")

    def test_statistics_preserved(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        loaded = load_index(path)
        assert loaded.stats() == tiny_index.stats()
        for term in tiny_index.terms():
            assert loaded.document_frequency(term) == tiny_index.document_frequency(term)

    def test_search_results_preserved(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        loaded = load_index(path)
        original_hits = IndexSearcher(tiny_index).search("covid outbreak", k=5)
        loaded_hits = IndexSearcher(loaded).search("covid outbreak", k=5)
        assert [h.doc_id for h in original_hits] == [h.doc_id for h in loaded_hits]
        for a, b in zip(original_hits, loaded_hits):
            assert a.score == pytest.approx(b.score)

    def test_analyzer_config_preserved(self, tiny_docs, tmp_path):
        analyzer = Analyzer(stem=False, remove_stopwords=False)
        index = InvertedIndex.from_documents(tiny_docs, analyzer)
        path = tmp_path / "surface.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.analyzer.stem is False
        assert loaded.analyzer.remove_stopwords is False

    def test_parent_directories_created(self, tiny_index, tmp_path):
        nested = tmp_path / "deep" / "dir" / "index.json"
        save_index(tiny_index, nested)
        assert nested.exists()


class TestFormat:
    def test_unknown_version_rejected(self, tiny_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(tiny_index, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_index(path)
