"""Tests for positional phrase search."""

import pytest

from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher


@pytest.fixture()
def searcher():
    documents = [
        Document("d1", "the covid outbreak spread across the city"),
        Document("d2", "the outbreak of covid spread fear"),  # reversed order
        Document("d3", "covid cases rose while the outbreak continued"),
        Document("d4", "covid outbreak covid outbreak repeated phrase"),
        Document("d5", "completely unrelated text"),
    ]
    return IndexSearcher(InvertedIndex.from_documents(documents))


class TestPhraseSearch:
    def test_matches_consecutive_terms_only(self, searcher):
        assert searcher.search_phrase("covid outbreak") == ["d1", "d4"]

    def test_order_matters(self, searcher):
        # d2 contains both terms but as "outbreak ... covid".
        assert "d2" not in searcher.search_phrase("covid outbreak")

    def test_stopwords_skipped_in_analysis(self, searcher):
        # "outbreak of covid" analyses to [outbreak, covid]; in d2 these are
        # consecutive once the stopword 'of' is dropped at indexing time,
        # and d4's "...outbreak covid..." interior also matches.
        assert searcher.search_phrase("outbreak of covid") == ["d2", "d4"]

    def test_single_term_phrase(self, searcher):
        assert set(searcher.search_phrase("covid")) == {"d1", "d2", "d3", "d4"}

    def test_unknown_term(self, searcher):
        assert searcher.search_phrase("zebra quantum") == []

    def test_empty_phrase(self, searcher):
        assert searcher.search_phrase("the of and") == []

    def test_three_term_phrase(self, searcher):
        assert searcher.search_phrase("covid outbreak spread") == ["d1"]

    def test_results_in_corpus_order(self, searcher):
        results = searcher.search_phrase("covid outbreak")
        assert results == sorted(results, key=lambda d: int(d[1:]))


class TestPersistence:
    def test_word2vec_roundtrip(self, tmp_path):
        import numpy as np

        from repro.embeddings.persistence import load_word2vec, save_word2vec
        from repro.embeddings.word2vec import train_word2vec

        model = train_word2vec(
            [["covid", "outbreak", "city"], ["covid", "vaccine", "trial"]] * 3,
            dimension=8,
            epochs=2,
            seed=1,
        )
        path = tmp_path / "w2v.npz"
        save_word2vec(model, path)
        loaded = load_word2vec(path)
        assert np.allclose(loaded.w_in, model.w_in)
        assert loaded.vocabulary.id_of("covid") == model.vocabulary.id_of("covid")

    def test_doc2vec_roundtrip(self, tmp_path):
        import numpy as np

        from repro.embeddings.doc2vec import train_doc2vec
        from repro.embeddings.persistence import load_doc2vec, save_doc2vec

        model = train_doc2vec(
            {"a": ["covid", "outbreak"], "b": ["market", "stocks"]},
            dimension=8,
            epochs=3,
            seed=1,
        )
        path = tmp_path / "d2v.npz"
        save_doc2vec(model, path)
        loaded = load_doc2vec(path)
        assert np.allclose(loaded.doc_vectors, model.doc_vectors)
        assert loaded.similarity("a", "b") == pytest.approx(model.similarity("a", "b"))

    def test_neural_roundtrip(self, tmp_path, tiny_index):
        from repro.ranking.neural import train_neural_ranker
        from repro.ranking.persistence import load_neural_ranker, save_neural_ranker

        ranker = train_neural_ranker(
            tiny_index, ["covid outbreak"], epochs=2, seed=1
        )
        path = tmp_path / "mlp.npz"
        save_neural_ranker(ranker, path)
        loaded = load_neural_ranker(path, tiny_index)
        assert loaded.score_text("covid outbreak", "covid text") == pytest.approx(
            ranker.score_text("covid outbreak", "covid text")
        )
        assert loaded.rank("covid outbreak", 3).doc_ids == ranker.rank(
            "covid outbreak", 3
        ).doc_ids

    def test_wrong_kind_rejected(self, tmp_path, tiny_index):
        from repro.embeddings.persistence import load_word2vec
        from repro.ranking.neural import train_neural_ranker
        from repro.ranking.persistence import save_neural_ranker

        ranker = train_neural_ranker(tiny_index, ["covid"], epochs=1, seed=1)
        path = tmp_path / "mlp.npz"
        save_neural_ranker(ranker, path)
        with pytest.raises(ValueError, match="expected a word2vec"):
            load_word2vec(path)
