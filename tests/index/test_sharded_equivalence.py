"""Sharded vs. single-shard corpora must be indistinguishable.

The acceptance contract of the sharded backend: ranks, scores, and every
explainer's full ``to_dict()`` payload are **byte-identical** between a
plain single index (``shards=None``), a one-shard sharded index
(``shards=1``), and a four-shard sharded index (``shards=4``) over the
same corpus — across the BM25 / TF-IDF / LM ranker families and the LTR
feature ranker, for all six explanation strategies.
"""

import json

import pytest

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest
from repro.index.inverted import InvertedIndex
from repro.index.sharding import ShardedIndex
from repro.ltr.dataset import assign_priors, synthetic_letor_dataset
from repro.ltr.feature_cf import FeatureCounterfactualExplainer
from repro.ltr.models import LinearLtrModel
from repro.ltr.ranker import LtrRanker
from repro.ranking.rerank import candidate_pool
from tests.core.test_search_equivalence import _corpus

QUERY = "covid outbreak hospital"
K = 5

#: The six explanation strategies, with knobs exercising each one's
#: non-default paths.
STRATEGIES = (
    ("document/sentence-removal", {"n": 2}),
    ("document/greedy", {}),
    ("query/augmentation", {"n": 2, "threshold": 2}),
    ("instance/doc2vec", {"n": 2}),
    ("instance/cosine", {"n": 2, "samples": 30}),
)

LEXICAL_RANKERS = ("bm25", "tfidf", "lm")


def _engine(ranker: str, shards: int | None) -> CredenceEngine:
    return CredenceEngine(
        _corpus(),
        EngineConfig(ranker=ranker, seed=5),
        shards=shards,
        ingest_workers=2 if shards else None,
    )


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module", params=LEXICAL_RANKERS)
def engine_pair(request):
    """(plain, shards=1, shards=4) engines over the same corpus+ranker."""
    ranker = request.param
    return (
        _engine(ranker, None),
        _engine(ranker, 1),
        _engine(ranker, 4),
    )


class TestRankingEquivalence:
    def test_topk_byte_identical(self, engine_pair):
        plain, one, four = engine_pair
        reference = plain.rank(QUERY, K).to_dicts()
        assert one.rank(QUERY, K).to_dicts() == reference
        assert four.rank(QUERY, K).to_dicts() == reference

    def test_index_types(self, engine_pair):
        plain, one, four = engine_pair
        assert isinstance(plain.index, InvertedIndex)
        assert isinstance(one.index, ShardedIndex) and one.index.shard_count == 1
        assert isinstance(four.index, ShardedIndex) and four.index.shard_count == 4


class TestExplainerEquivalence:
    @pytest.mark.parametrize(
        "strategy,knobs", STRATEGIES, ids=[name for name, _ in STRATEGIES]
    )
    def test_strategy_byte_identical(self, engine_pair, strategy, knobs):
        plain, one, four = engine_pair
        target = plain.rank(QUERY, K).doc_ids[0]
        request = ExplainRequest(QUERY, target, strategy=strategy, k=K, **knobs)
        reference = _canonical(plain.explain(request).result.to_dict())
        assert _canonical(one.explain(request).result.to_dict()) == reference
        assert _canonical(four.explain(request).result.to_dict()) == reference


class TestLtrEquivalence:
    """The sixth strategy (features/ltr) over plain vs. sharded corpora."""

    @pytest.fixture(scope="class")
    def ltr_setup(self):
        corpus = assign_priors(_corpus(), seed=7)
        examples = synthetic_letor_dataset(
            corpus, [QUERY, "markets earnings report"], seed=11
        )
        model = LinearLtrModel.fit(examples)
        return corpus, model

    def _explain(self, index, model):
        ranker = LtrRanker(index, model)
        explainer = FeatureCounterfactualExplainer(ranker)
        target = candidate_pool(ranker, QUERY, K)[0].doc_id
        ranking = ranker.rank(QUERY, K).to_dicts()
        result = explainer.explain(QUERY, target, n=2, k=K)
        return ranking, _canonical(result.to_dict())

    def test_feature_cf_byte_identical(self, ltr_setup):
        corpus, model = ltr_setup
        reference = self._explain(InvertedIndex.from_documents(corpus), model)
        for shards in (1, 4):
            sharded = self._explain(
                ShardedIndex.from_documents(corpus, shards, workers=2), model
            )
            assert sharded == reference


class TestMutatedCorpusEquivalence:
    """Equivalence must survive corpus mutations, not just bulk builds."""

    def test_after_add_and_remove(self):
        documents = _corpus()
        plain = CredenceEngine(documents, EngineConfig(ranker="bm25", seed=5))
        sharded = CredenceEngine(
            documents, EngineConfig(ranker="bm25", seed=5), shards=4
        )
        extra = documents[0].with_body(
            "A brand new covid outbreak overwhelmed the hospital wards."
        )
        extra = type(extra)("doc-new", extra.body)
        for engine in (plain, sharded):
            engine.add_documents([extra])
            engine.remove_document(documents[5].doc_id)
        assert (
            plain.rank(QUERY, K).to_dicts() == sharded.rank(QUERY, K).to_dicts()
        )
        target = plain.rank(QUERY, K).doc_ids[0]
        request = ExplainRequest(
            QUERY, target, strategy="document/sentence-removal", k=K
        )
        assert _canonical(
            plain.explain(request).result.to_dict()
        ) == _canonical(sharded.explain(request).result.to_dict())

    def test_instance_caches_invalidate_on_mutation(self):
        """Doc2Vec and cosine vectors must track corpus mutations.

        A warmed engine that then mutates its corpus must produce the
        same instance explanations as a fresh engine built over the
        final corpus — not answers from a stale embedding space or from
        BM25 vectors computed under the old collection statistics.
        """
        documents = _corpus()
        extra = type(documents[0])(
            "doc-new",
            "Covid outbreak strained the hospital wards in the new district. "
            "Observers noted the evening report again.",
        )
        warmed = CredenceEngine(
            documents, EngineConfig(ranker="bm25", seed=5), shards=4
        )
        for strategy in ("instance/doc2vec", "instance/cosine"):
            warmed.explain(  # warm the model / vector caches
                ExplainRequest(
                    QUERY,
                    warmed.rank(QUERY, K).doc_ids[0],
                    strategy=strategy,
                    k=K,
                )
            )
        warmed.add_documents([extra])
        warmed.remove_document(documents[5].doc_id)

        final_corpus = [d for d in documents if d.doc_id != documents[5].doc_id]
        final_corpus.append(extra)
        fresh = CredenceEngine(
            final_corpus, EngineConfig(ranker="bm25", seed=5), shards=4
        )
        target = fresh.rank(QUERY, K).doc_ids[0]
        for strategy, knobs in (
            ("instance/doc2vec", {"n": 2}),
            ("instance/cosine", {"n": 2, "samples": 30}),
        ):
            request = ExplainRequest(QUERY, target, strategy=strategy, k=K, **knobs)
            warmed_payload = warmed.explain(request).result.to_dict()
            fresh_payload = fresh.explain(request).result.to_dict()
            assert _canonical(warmed_payload) == _canonical(fresh_payload), strategy
