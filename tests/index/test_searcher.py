"""Tests for ranked and boolean retrieval."""

import pytest

from repro.errors import ConfigurationError, IndexStateError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.searcher import IndexSearcher
from repro.index.similarity import DirichletSimilarity


class TestRankedSearch:
    def test_most_relevant_first(self, tiny_index):
        hits = IndexSearcher(tiny_index).search("covid outbreak", k=3)
        assert hits[0].doc_id in {"d1", "d5"}
        assert [h.rank for h in hits] == [1, 2, 3]

    def test_scores_descending(self, tiny_index):
        hits = IndexSearcher(tiny_index).search("covid outbreak", k=6)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_only_matching_docs_returned(self, tiny_index):
        hits = IndexSearcher(tiny_index).search("microchip", k=10)
        assert [h.doc_id for h in hits] == ["d5"]

    def test_k_limits_results(self, tiny_index):
        assert len(IndexSearcher(tiny_index).search("covid", k=2)) == 2

    def test_no_match_returns_empty(self, tiny_index):
        assert IndexSearcher(tiny_index).search("xylophone", k=5) == []

    def test_empty_index_raises(self):
        searcher = IndexSearcher(InvertedIndex())
        with pytest.raises(IndexStateError):
            searcher.search("anything")

    def test_invalid_k(self, tiny_index):
        with pytest.raises(ConfigurationError):
            IndexSearcher(tiny_index).search("covid", k=0)

    def test_deterministic_tie_break(self):
        docs = [Document(f"d{i}", "same exact text here") for i in range(5)]
        index = InvertedIndex.from_documents(docs)
        hits = IndexSearcher(index).search("exact text", k=5)
        assert [h.doc_id for h in hits] == [f"d{i}" for i in range(5)]

    def test_lm_scores_every_document(self, tiny_index):
        searcher = IndexSearcher(tiny_index, DirichletSimilarity())
        hits = searcher.search("covid outbreak", k=10)
        assert len(hits) == len(tiny_index)  # smoothing ranks all docs

    def test_score_all_matches_search_order(self, tiny_index):
        searcher = IndexSearcher(tiny_index)
        scores = searcher.score_all("covid outbreak")
        hits = searcher.search("covid outbreak", k=3)
        for hit in hits:
            assert scores[hit.doc_id] == pytest.approx(hit.score)


class TestBooleanSearch:
    def test_and_semantics(self, tiny_index):
        result = IndexSearcher(tiny_index).search_boolean("covid outbreak", mode="and")
        assert set(result) == {"d1", "d5"}

    def test_or_semantics(self, tiny_index):
        result = IndexSearcher(tiny_index).search_boolean("covid outbreak", mode="or")
        assert {"d1", "d2", "d5", "d6"} <= set(result)

    def test_empty_query(self, tiny_index):
        assert IndexSearcher(tiny_index).search_boolean("the of and") == []

    def test_invalid_mode(self, tiny_index):
        with pytest.raises(ValueError):
            IndexSearcher(tiny_index).search_boolean("covid", mode="xor")

    def test_results_in_corpus_order(self, tiny_index):
        result = IndexSearcher(tiny_index).search_boolean("covid", mode="or")
        positions = [tiny_index.doc_ids.index(doc_id) for doc_id in result]
        assert positions == sorted(positions)
