"""Tests for the public package surface: imports, __all__, version."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.datasets",
    "repro.embeddings",
    "repro.eval",
    "repro.index",
    "repro.ltr",
    "repro.ranking",
    "repro.text",
    "repro.topics",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_version_matches_pyproject():
    import tomllib
    from pathlib import Path

    import repro

    pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
    with pyproject.open("rb") as handle:
        declared = tomllib.load(handle)["project"]["version"]
    assert repro.__version__ == declared


def test_top_level_quickstart_symbols():
    import repro

    assert callable(repro.demo_engine)
    assert isinstance(repro.DEMO_QUERY, str)
    assert repro.DEMO_K == 10


def test_errors_have_common_base():
    from repro import errors

    for name in dir(errors):
        attr = getattr(errors, name)
        if isinstance(attr, type) and issubclass(attr, Exception):
            if attr is not errors.ReproError:
                assert issubclass(attr, errors.ReproError), name
