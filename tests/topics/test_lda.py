"""Tests for collapsed-Gibbs LDA."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topics.lda import train_lda
from repro.topics.summaries import summarize_topics

DOCS = {
    "covid-a": "covid outbreak hospital cases covid outbreak hospital".split(),
    "covid-b": "covid outbreak spread doctors covid hospital".split(),
    "fin-a": "market stocks investors shares market stocks earnings".split(),
    "fin-b": "market stocks trading investors bonds earnings".split(),
    "covid-c": "covid vaccine hospital doctors outbreak".split(),
    "fin-c": "stocks rally market earnings investors".split(),
}


@pytest.fixture(scope="module")
def model():
    return train_lda(DOCS, num_topics=2, iterations=150, seed=11)


class TestTraining:
    def test_requires_documents(self):
        with pytest.raises(ConfigurationError):
            train_lda({}, num_topics=2)

    def test_invalid_topic_count(self):
        with pytest.raises(ConfigurationError):
            train_lda(DOCS, num_topics=0)

    def test_deterministic(self):
        a = train_lda(DOCS, num_topics=2, iterations=20, seed=3)
        b = train_lda(DOCS, num_topics=2, iterations=20, seed=3)
        assert np.array_equal(a.topic_word_counts, b.topic_word_counts)

    def test_counts_conserved(self, model):
        total_words = sum(len(terms) for terms in DOCS.values())
        assert model.topic_word_counts.sum() == total_words
        assert model.doc_topic_counts.sum() == total_words


class TestDistributions:
    def test_topic_word_distribution_sums_to_one(self, model):
        for topic in range(model.num_topics):
            assert model.topic_word_distribution(topic).sum() == pytest.approx(1.0)

    def test_document_topic_distribution_sums_to_one(self, model):
        for doc_id in DOCS:
            assert model.document_topic_distribution(doc_id).sum() == pytest.approx(1.0)

    def test_topics_separate_domains(self, model):
        # Each corpus theme should dominate a distinct topic.
        covid_topic = int(
            np.argmax(model.document_topic_distribution("covid-a"))
        )
        finance_topic = int(
            np.argmax(model.document_topic_distribution("fin-a"))
        )
        assert covid_topic != finance_topic

    def test_top_terms_reflect_topic(self, model):
        covid_topic = int(np.argmax(model.document_topic_distribution("covid-a")))
        top = [term for term, _ in model.top_terms(covid_topic, n=4)]
        assert "covid" in top or "outbreak" in top or "hospital" in top


class TestSummaries:
    def test_summary_shape(self, model):
        summary = summarize_topics(model, terms_per_topic=5)
        assert len(summary) == model.num_topics
        for topic in summary:
            assert len(topic.terms) == 5

    def test_label_from_top_terms(self, model):
        summary = summarize_topics(model, terms_per_topic=5)
        for topic in summary:
            assert topic.label == " / ".join(t for t, _ in topic.terms[:3])

    def test_to_dicts_serialisable(self, model):
        import json

        payload = summarize_topics(model).to_dicts()
        assert json.loads(json.dumps(payload)) == payload
