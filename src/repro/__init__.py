"""repro — a full reproduction of CREDENCE (ICDE 2023).

CREDENCE generates counterfactual explanations for black-box document
rankers: minimal sentence removals that demote a document, minimal query
augmentations that promote it, similar non-relevant instances, and
interactive build-your-own perturbations.

Quickstart — every explanation family goes through one call::

    from repro import ExplainRequest, demo_engine, DEMO_QUERY, FAKE_NEWS_DOC_ID

    engine = demo_engine()
    ranking = engine.rank(DEMO_QUERY, k=10)
    response = engine.explain(
        ExplainRequest(DEMO_QUERY, FAKE_NEWS_DOC_ID,
                       strategy="document/sentence-removal")
    )
    for explanation in response:
        print(explanation.to_dict())

Strategies (``engine.available_strategies()``):
``document/sentence-removal``, ``document/greedy``,
``query/augmentation``, ``instance/doc2vec``, ``instance/cosine``, and
``features/ltr`` for feature-based rankers. Batch traffic goes through
``engine.explain_batch([...])``, which shares caches across items and
reports per-item latency — pass ``parallel=N`` to fan it out across the
engine's explanation service (``engine.service()``: async jobs, a
bounded worker pool, and a version-keyed result store).

Every family runs on one counterfactual search kernel
(:mod:`repro.core.search`): pick the exploration strategy per request
with ``search="exhaustive" | "greedy" | "beam" | "anytime"`` plus
``beam_width``/``budget``/``deadline_ms`` — see docs/API.md
("Search strategies & budgets").

Corpora persist in three on-disk formats (auto-detected on load). The
packed v3 format (:mod:`repro.index.persist`) gives O(1) warm restarts
and read-only replicas::

    save_index(engine.index, "corpus.idx", format="v3")
    engine = CredenceEngine.load("corpus.idx")   # attaches, no rebuild

See :mod:`repro.core` for the explainers and registry, :mod:`repro.api`
for the REST service, :mod:`repro.service` for the serving layer, and
docs/API.md for the request/response model.
"""

from repro.core.engine import CredenceEngine, EngineConfig
from repro.core.explain import ExplainRequest, ExplainResponse
from repro.core.registry import DEFAULT_REGISTRY, available_strategies
from repro.demo import (
    DEMO_K,
    DEMO_QUERY,
    DEMO_SEED,
    FAKE_NEWS_DOC_ID,
    NEAR_COPY_DOC_ID,
    demo_engine,
)
from repro.core.search import (
    SEARCH_STRATEGIES,
    AnytimeSearch,
    BeamSearch,
    ExhaustiveSearch,
    GreedySearch,
    SearchBudget,
)
from repro.errors import ReproError
from repro.index.document import Document
from repro.index.persist import ReplicaIndex, attach_packed
from repro.index.sharding import HashRouter, RoundRobinRouter, ShardedIndex
from repro.index.storage import load_index, save_index
from repro.service import (
    ExplainJob,
    ExplanationService,
    JobStatus,
    ResultStore,
)

__version__ = "1.0.0"

__all__ = [
    "CredenceEngine",
    "EngineConfig",
    "ExplainRequest",
    "ExplainResponse",
    "DEFAULT_REGISTRY",
    "available_strategies",
    "DEMO_K",
    "DEMO_QUERY",
    "DEMO_SEED",
    "FAKE_NEWS_DOC_ID",
    "NEAR_COPY_DOC_ID",
    "demo_engine",
    "SEARCH_STRATEGIES",
    "AnytimeSearch",
    "BeamSearch",
    "ExhaustiveSearch",
    "GreedySearch",
    "SearchBudget",
    "ReproError",
    "Document",
    "HashRouter",
    "ReplicaIndex",
    "RoundRobinRouter",
    "ShardedIndex",
    "attach_packed",
    "load_index",
    "save_index",
    "ExplainJob",
    "ExplanationService",
    "JobStatus",
    "ResultStore",
    "__version__",
]
