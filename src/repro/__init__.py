"""repro — a full reproduction of CREDENCE (ICDE 2023).

CREDENCE generates counterfactual explanations for black-box document
rankers: minimal sentence removals that demote a document, minimal query
augmentations that promote it, similar non-relevant instances, and
interactive build-your-own perturbations.

Quickstart::

    from repro import demo_engine, DEMO_QUERY, FAKE_NEWS_DOC_ID

    engine = demo_engine()
    ranking = engine.rank(DEMO_QUERY, k=10)
    explanations = engine.explain_document(DEMO_QUERY, FAKE_NEWS_DOC_ID, n=1)

See :mod:`repro.core` for the explainers, :mod:`repro.api` for the REST
service, and DESIGN.md for the system inventory.
"""

from repro.core.engine import CredenceEngine, EngineConfig
from repro.demo import (
    DEMO_K,
    DEMO_QUERY,
    DEMO_SEED,
    FAKE_NEWS_DOC_ID,
    NEAR_COPY_DOC_ID,
    demo_engine,
)
from repro.errors import ReproError
from repro.index.document import Document

__version__ = "1.0.0"

__all__ = [
    "CredenceEngine",
    "EngineConfig",
    "DEMO_K",
    "DEMO_QUERY",
    "DEMO_SEED",
    "FAKE_NEWS_DOC_ID",
    "NEAR_COPY_DOC_ID",
    "demo_engine",
    "ReproError",
    "Document",
    "__version__",
]
