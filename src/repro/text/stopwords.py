"""English stopword list (Lucene/Anserini-compatible superset).

The list combines Lucene's classic 33-word English set with the common
extension used by IR toolkits; it is deliberately conservative so content
terms like ``outbreak`` or ``5g`` always survive analysis.
"""

from __future__ import annotations

ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with
    am been being do does did doing have has had having he her hers him his
    i me my mine our ours ourselves she so than them themselves those through
    too until up upon us we were what when where which while who whom why you
    your yours yourself itself its about above after again against all any
    because before below between both down during each few from further here
    how more most other out over own same some under very s t can just don
    should now
    """.split()
)


def is_stopword(term: str) -> bool:
    """Return True if ``term`` (already case-folded) is an English stopword."""
    return term in ENGLISH_STOPWORDS
