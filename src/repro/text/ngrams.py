"""n-gram extraction, used by topic labelling and the synthetic corpus."""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

from repro.utils.validation import require_positive

T = TypeVar("T")


def ngrams(tokens: Sequence[T], n: int) -> Iterator[tuple[T, ...]]:
    """Yield contiguous ``n``-grams of ``tokens``.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    require_positive(n, "n")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])
