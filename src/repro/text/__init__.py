"""Text-analysis substrate: the Lucene-analyzer equivalent.

Provides tokenisation with character offsets, sentence segmentation,
stopword filtering, Porter stemming, and the :class:`Analyzer` pipeline
that the index, rankers, embeddings, and counterfactual explainers all
share. Keeping one analyzer instance shared across components guarantees
that "term" means the same thing everywhere — a correctness requirement
for perturbation-based explanations.
"""

from repro.text.analyzer import Analyzer, default_analyzer
from repro.text.ngrams import ngrams
from repro.text.sentences import Sentence, split_sentences
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword
from repro.text.tokenizer import Token, tokenize
from repro.text.unicode import normalize_text
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Analyzer",
    "default_analyzer",
    "ngrams",
    "Sentence",
    "split_sentences",
    "PorterStemmer",
    "ENGLISH_STOPWORDS",
    "is_stopword",
    "Token",
    "tokenize",
    "normalize_text",
    "Vocabulary",
]
