"""Bidirectional term ↔ integer-id mapping used by embeddings and LDA."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.errors import TermNotFoundError
from repro.utils.validation import require_non_negative


class Vocabulary:
    """Assigns stable dense integer ids to terms.

    Ids are assigned in first-seen order, so building a vocabulary from the
    same corpus always yields the same mapping.
    """

    def __init__(self, terms: Iterable[str] = ()):
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        self._frequencies: Counter[str] = Counter()
        for term in terms:
            self.add(term)

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Iterable[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenised documents.

        Terms occurring fewer than ``min_count`` times are dropped; if
        ``max_size`` is given, only the most frequent terms are kept
        (ties broken alphabetically for determinism).
        """
        require_non_negative(min_count, "min_count")
        counts: Counter[str] = Counter()
        for document in documents:
            counts.update(document)
        kept = [
            (term, count) for term, count in counts.items() if count >= min_count
        ]
        kept.sort(key=lambda pair: (-pair[1], pair[0]))
        if max_size is not None:
            kept = kept[:max_size]
        vocabulary = cls()
        for term, count in kept:
            vocabulary.add(term)
            vocabulary._frequencies[term] = count
        return vocabulary

    def add(self, term: str) -> int:
        """Add ``term`` if new; return its id."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        self._frequencies[term] += 1
        return term_id

    def id_of(self, term: str) -> int:
        """Return the id of ``term``; raise :class:`TermNotFoundError` if absent."""
        try:
            return self._term_to_id[term]
        except KeyError:
            raise TermNotFoundError(term) from None

    def get(self, term: str, default: int | None = None) -> int | None:
        return self._term_to_id.get(term, default)

    def term_of(self, term_id: int) -> str:
        if not 0 <= term_id < len(self._id_to_term):
            raise TermNotFoundError(f"<id {term_id}>")
        return self._id_to_term[term_id]

    def frequency(self, term: str) -> int:
        return self._frequencies.get(term, 0)

    def encode(self, terms: Iterable[str], skip_unknown: bool = True) -> list[int]:
        """Map terms to ids, silently dropping unknown terms by default."""
        ids = []
        for term in terms:
            term_id = self._term_to_id.get(term)
            if term_id is not None:
                ids.append(term_id)
            elif not skip_unknown:
                raise TermNotFoundError(term)
        return ids

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self.term_of(term_id) for term_id in ids]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)
