"""The analyzer pipeline shared by the index, rankers, and explainers.

An :class:`Analyzer` turns raw text into index terms the way Lucene's
analyzer chain does: tokenize → normalise → stopword-filter → stem. The
same instance must be shared by every component of an engine, because the
counterfactual algorithms reason about *terms* ("which query terms does
this sentence contain?"), and that question only has a consistent answer
if everyone analyses text identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import ENGLISH_STOPWORDS
from repro.text.tokenizer import Token, iter_tokens
from repro.text.unicode import normalize_text


@dataclass(frozen=True)
class AnalyzedToken:
    """An index term plus the source token it came from."""

    term: str
    token: Token

    @property
    def start(self) -> int:
        return self.token.start

    @property
    def end(self) -> int:
        return self.token.end


@dataclass
class Analyzer:
    """Configurable text-analysis pipeline.

    Parameters mirror Anserini's defaults: lowercase + fold, English
    stopwords, Porter stemming. Disable stemming/stopwords for components
    that need surface forms (e.g. the query-augmentation explainer shows
    users real document terms, not stems).
    """

    lowercase: bool = True
    remove_stopwords: bool = True
    stem: bool = True
    stopwords: frozenset[str] = ENGLISH_STOPWORDS
    min_token_length: int = 1
    _stemmer: PorterStemmer = field(default_factory=PorterStemmer, repr=False)

    def analyze_token(self, text: str) -> str | None:
        """Analyse one raw token; None if the pipeline filters it out.

        Token analysis is independent of surrounding text, which is what
        lets bulk ingestion memoize this call per distinct surface form
        (:class:`~repro.index.sharding.AnalysisMemo`) with byte-identical
        results.
        """
        term = normalize_text(text, casefold=self.lowercase)
        if any(ch.isspace() for ch in term):
            # NFKC can expand a single word character into a sequence
            # containing a space (e.g. U+037A → " ι"); an index term with
            # embedded whitespace could never match a tokenized query.
            term = "".join(ch for ch in term if not ch.isspace())
        if len(term) < self.min_token_length:
            return None
        if self.remove_stopwords and term in self.stopwords:
            return None
        if self.stem:
            term = self._stemmer.stem(term)
        return term or None

    def analyze_tokens(self, text: str) -> list[AnalyzedToken]:
        """Analyse ``text``, keeping each term's source token and offsets."""
        result: list[AnalyzedToken] = []
        for token in iter_tokens(text):
            term = self.analyze_token(token.text)
            if term is not None:
                result.append(AnalyzedToken(term, token))
        return result

    def analyze(self, text: str) -> list[str]:
        """Analyse ``text`` and return the term sequence.

        >>> Analyzer().analyze("The outbreaks were spreading!")
        ['outbreak', 'spread']
        """
        return [analyzed.term for analyzed in self.analyze_tokens(text)]

    def analyze_unique(self, text: str) -> set[str]:
        """Analyse ``text`` and return the set of distinct terms."""
        return set(self.analyze(text))

    def term_of(self, word: str) -> str | None:
        """Analyse a single word; None if it is filtered out entirely."""
        terms = self.analyze(word)
        return terms[0] if terms else None

    # -- persistence -----------------------------------------------------------

    #: Fields excluded from :meth:`to_config`: runtime-only state and the
    #: stopword set (persisting the full list would bloat every index
    #: file; deployments customising stopwords persist them separately).
    _NON_CONFIG_FIELDS = ("stopwords", "_stemmer")

    def to_config(self) -> dict:
        """This analyzer's persistable configuration.

        Enumerated from the dataclass fields, so a newly added analyzer
        option is saved automatically — the save and load sides can no
        longer silently desync (the bug the hard-coded four-field dict
        in ``index/storage.py`` used to invite).
        """
        from dataclasses import fields

        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name not in self._NON_CONFIG_FIELDS
        }

    @classmethod
    def from_config(cls, config: dict) -> "Analyzer":
        """Rebuild an analyzer from :meth:`to_config` output.

        Unknown keys raise (a config written by a *newer* analyzer must
        not load lossily); missing keys fall back to the field defaults,
        which keeps historical ``FORMAT_VERSION`` 1 payloads loading.
        """
        from dataclasses import fields

        known = {
            spec.name
            for spec in fields(cls)
            if spec.name not in cls._NON_CONFIG_FIELDS
        }
        unknown = set(config) - known
        if unknown:
            raise ValueError(
                f"unknown analyzer config key(s): {', '.join(sorted(unknown))}"
            )
        return cls(**dict(config))


def default_analyzer() -> Analyzer:
    """The library-default analyzer (lowercase, stopwords, Porter)."""
    return Analyzer()


def surface_analyzer() -> Analyzer:
    """An analyzer that keeps surface forms (no stemming, keep stopwords).

    Used where explanations must display user-recognisable terms.
    """
    return Analyzer(remove_stopwords=False, stem=False)
