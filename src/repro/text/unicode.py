"""Unicode normalisation and case folding.

Applied before tokenisation so that curly quotes, accents, and case
variants all map to one canonical surface form — mirroring Lucene's
ASCII-folding + lowercase filter chain used by Anserini's default analyzer.
"""

from __future__ import annotations

import unicodedata

# Common punctuation look-alikes normalised to ASCII so the tokenizer's
# character classes stay simple.
_PUNCT_MAP = str.maketrans(
    {
        "‘": "'",
        "’": "'",
        "“": '"',
        "”": '"',
        "–": "-",
        "—": "-",
        "…": "...",
        " ": " ",
    }
)


def strip_accents(text: str) -> str:
    """Remove combining marks: ``café`` → ``cafe``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize_text(text: str, *, casefold: bool = True) -> str:
    """Canonicalise ``text`` for analysis.

    Applies NFKC normalisation, punctuation folding, accent stripping, and
    (by default) case folding. Length may change; this is applied to
    individual *tokens* (not whole documents) wherever offsets must remain
    valid.
    """
    text = unicodedata.normalize("NFKC", text)
    text = text.translate(_PUNCT_MAP)
    text = strip_accents(text)
    if casefold:
        text = text.casefold()
    return text
