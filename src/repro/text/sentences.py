"""Rule-based sentence segmentation with character offsets.

CREDENCE's document counterfactuals (§II-C) remove whole *sentences* so
perturbed documents remain grammatical; the segmenter is therefore part of
the explanation semantics, not just plumbing. We segment on terminal
punctuation with a small abbreviation list and require the next sentence
to start with a plausible sentence opener, and we keep exact spans so a
sentence can be excised from (or highlighted in) the original text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Abbreviations that end with a period but do not end a sentence.
_ABBREVIATIONS = frozenset(
    {
        "dr", "mr", "mrs", "ms", "prof", "sr", "jr", "st", "vs", "etc",
        "e.g", "i.e", "u.s", "u.k", "inc", "ltd", "co", "corp", "no",
        "fig", "al", "dept", "est", "approx", "jan", "feb", "mar", "apr",
        "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec",
    }
)

_BOUNDARY_RE = re.compile(r"[.!?]+[\"')\]]*")
_WORD_BEFORE_RE = re.compile(r"([A-Za-z][A-Za-z.]*)$")


@dataclass(frozen=True)
class Sentence:
    """A sentence and its ``[start, end)`` span in the source text."""

    text: str
    start: int
    end: int
    index: int

    def __str__(self) -> str:
        return self.text


def _is_abbreviation(text_before: str) -> bool:
    match = _WORD_BEFORE_RE.search(text_before)
    if match is None:
        return False
    word = match.group(1).rstrip(".").casefold()
    if word in _ABBREVIATIONS:
        return True
    # Single capital letter (middle initials: "John F. Kennedy").
    return len(word) == 1


def _looks_like_opener(text_after: str) -> bool:
    stripped = text_after.lstrip()
    if not stripped:
        return True
    first = stripped[0]
    return first.isupper() or first.isdigit() or first in "\"'(["


def split_sentences(text: str) -> list[Sentence]:
    """Split ``text`` into sentences with exact source spans.

    Newlines (paragraph breaks) also terminate sentences, so headline-style
    corpora segment sensibly.

    >>> [s.text for s in split_sentences("It spread. Dr. Wu spoke.")]
    ['It spread.', 'Dr. Wu spoke.']
    """
    boundaries: list[int] = []
    for match in _BOUNDARY_RE.finditer(text):
        end = match.end()
        before = text[: match.start()]
        after = text[end:]
        if match.group().startswith(".") and _is_abbreviation(before):
            continue
        # Decimal numbers: a period flanked by digits is not a boundary.
        if (
            match.group().startswith(".")
            and match.start() > 0
            and text[match.start() - 1].isdigit()
            and end < len(text)
            and text[end].isdigit()
        ):
            continue
        if not _looks_like_opener(after):
            continue
        boundaries.append(end)
    # Hard breaks at blank lines.
    for match in re.finditer(r"\n\s*\n", text):
        boundaries.append(match.start())
    boundaries = sorted(set(boundaries))

    sentences: list[Sentence] = []
    cursor = 0
    for boundary in boundaries + [len(text)]:
        raw = text[cursor:boundary]
        stripped = raw.strip()
        if stripped:
            start = cursor + (len(raw) - len(raw.lstrip()))
            sentences.append(
                Sentence(stripped, start, start + len(stripped), len(sentences))
            )
        cursor = boundary
    return sentences


def remove_sentences(text: str, indices: set[int] | frozenset[int]) -> str:
    """Return ``text`` with the sentences at ``indices`` excised.

    Whitespace between surviving sentences is normalised to a single space
    (or preserved newline), keeping the perturbed document readable.
    """
    sentences = split_sentences(text)
    survivors = [s for s in sentences if s.index not in indices]
    return " ".join(s.text for s in survivors)
