"""Regex tokenisation with character offsets.

Offsets let the counterfactual builder map token-level perturbations
(remove / replace a term) back onto the original document text without
corrupting surrounding formatting — the property the paper relies on when
rendering strikethrough sentences and edited documents.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

# A token is a run of word characters (Unicode letters and digits),
# optionally with internal hyphens, apostrophes, or dots (so ``covid-19``,
# ``don't``, ``café`` and ``u.s.`` stay whole).
_TOKEN_RE = re.compile(r"[^\W_]+(?:[-'./][^\W_]+)*")


@dataclass(frozen=True)
class Token:
    """A surface token and its ``[start, end)`` span in the source text."""

    text: str
    start: int
    end: int

    def __post_init__(self):
        if self.end - self.start != len(self.text):
            raise ValueError(
                f"span [{self.start}, {self.end}) does not cover {self.text!r}"
            )

    def __str__(self) -> str:
        return self.text


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for every lexical token in ``text``."""
    for match in _TOKEN_RE.finditer(text):
        yield Token(match.group(), match.start(), match.end())


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text``, preserving offsets.

    >>> [t.text for t in tokenize("COVID-19 spreads fast.")]
    ['COVID-19', 'spreads', 'fast']
    """
    return list(iter_tokens(text))


def token_texts(text: str) -> list[str]:
    """Tokenise and return surface strings only."""
    return [token.text for token in iter_tokens(text)]
