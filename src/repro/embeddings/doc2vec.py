"""Doc2Vec (Paragraph Vectors) — the PV-DBOW variant of Le & Mikolov 2014.

Method 1 of the paper's instance-based counterfactuals trains "a Doc2Vec
embedding model" and returns the most cosine-similar non-relevant
documents. PV-DBOW learns one vector per document by training it to
predict the document's words against negative samples; it is the variant
gensim defaults to for similarity work and the cheapest to train, which
matches the demo's interactive setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.sampling import UnigramTable, sigmoid
from repro.errors import DocumentNotFoundError, TrainingError
from repro.text.vocabulary import Vocabulary
from repro.utils.rng import default_rng
from repro.utils.validation import require, require_positive


@dataclass
class Doc2Vec:
    """Trained PV-DBOW model: one embedding per training document."""

    vocabulary: Vocabulary
    doc_ids: list[str]
    doc_vectors: np.ndarray  # (num_docs, dimension)
    word_out: np.ndarray  # (vocab, dimension)
    negatives: int
    _unigram_table: UnigramTable

    @property
    def dimension(self) -> int:
        return self.doc_vectors.shape[1]

    def vector(self, doc_id: str) -> np.ndarray:
        try:
            row = self.doc_ids.index(doc_id)
        except ValueError:
            raise DocumentNotFoundError(doc_id) from None
        return self.doc_vectors[row]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.doc_ids

    def similarity(self, first: str, second: str) -> float:
        """Cosine similarity between two trained documents."""
        a, b = self.vector(first), self.vector(second)
        denominator = (np.linalg.norm(a) * np.linalg.norm(b)) or 1.0
        return float(a @ b / denominator)

    def most_similar(
        self, doc_id: str, n: int = 10, exclude: set[str] | None = None
    ) -> list[tuple[str, float]]:
        """The ``n`` most cosine-similar documents to ``doc_id``."""
        query = self.vector(doc_id)
        norms = np.linalg.norm(self.doc_vectors, axis=1) * (
            np.linalg.norm(query) or 1.0
        )
        norms[norms == 0] = 1.0
        scores = (self.doc_vectors @ query) / norms
        excluded = set(exclude or ()) | {doc_id}
        ranked = [
            (self.doc_ids[i], float(scores[i]))
            for i in np.argsort(-scores)
            if self.doc_ids[i] not in excluded
        ]
        return ranked[:n]

    def infer_vector(
        self,
        terms: list[str],
        epochs: int = 25,
        learning_rate: float = 0.025,
        seed: int | None = None,
    ) -> np.ndarray:
        """Embed unseen text by gradient steps against frozen word vectors."""
        rng = default_rng(seed)
        word_ids = self.vocabulary.encode(terms)
        vector = (rng.random(self.dimension) - 0.5) / self.dimension
        if not word_ids:
            return vector
        ids = np.asarray(word_ids, dtype=np.int64)
        for epoch in range(epochs):
            alpha = learning_rate * (1.0 - epoch / epochs) + 1e-4
            for word_id in ids:
                negative_ids = self._unigram_table.sample(rng, self.negatives)
                targets = np.concatenate(([word_id], negative_ids))
                labels = np.zeros(len(targets))
                labels[0] = 1.0
                outputs = self.word_out[targets]
                predictions = sigmoid(outputs @ vector)
                gradient = (predictions - labels)[:, None]
                vector -= alpha * (gradient * outputs).sum(axis=0)
        return vector


def train_doc2vec(
    documents: dict[str, list[str]],
    dimension: int = 64,
    negatives: int = 5,
    epochs: int = 100,
    learning_rate: float = 0.025,
    min_count: int = 1,
    subsample: float | None = 1e-2,
    seed: int | None = None,
) -> Doc2Vec:
    """Train PV-DBOW document embeddings.

    Args:
        documents: mapping of doc_id → analyzed term sequence.
        subsample: frequent-word subsampling threshold (word2vec's ``t``).
            Without it, corpus-wide frequent terms dominate every update
            and all document vectors collapse onto one direction; ``1e-2``
            suits the small corpora this library targets (gensim's default
            ``1e-3`` assumes web-scale text). ``None`` disables.
    """
    require_positive(dimension, "dimension")
    require_positive(epochs, "epochs")
    require(bool(documents), "documents must be non-empty")
    rng = default_rng(seed)
    doc_ids = list(documents)
    vocabulary = Vocabulary.from_documents(documents.values(), min_count=min_count)
    if len(vocabulary) == 0:
        raise TrainingError("empty vocabulary: no trainable terms")

    encoded = {doc_id: vocabulary.encode(documents[doc_id]) for doc_id in doc_ids}
    counts = np.array(
        [vocabulary.frequency(vocabulary.term_of(i)) for i in range(len(vocabulary))],
        dtype=np.float64,
    )
    table = UnigramTable(counts)
    keep_probability = np.ones(len(vocabulary))
    if subsample is not None:
        frequency = counts / counts.sum()
        keep_probability = np.minimum(
            1.0, np.sqrt(subsample / frequency) + subsample / frequency
        )

    doc_vectors = (rng.random((len(doc_ids), dimension)) - 0.5) / dimension
    word_out = np.zeros((len(vocabulary), dimension))

    for epoch in range(epochs):
        alpha = learning_rate * (1.0 - epoch / epochs) + 1e-4
        for row, doc_id in enumerate(doc_ids):
            word_ids = encoded[doc_id]
            if not word_ids:
                continue
            for word_id in word_ids:
                if keep_probability[word_id] < 1.0 and (
                    rng.random() > keep_probability[word_id]
                ):
                    continue
                negative_ids = table.sample(rng, negatives)
                targets = np.concatenate(([word_id], negative_ids))
                labels = np.zeros(len(targets))
                labels[0] = 1.0
                outputs = word_out[targets]
                vector = doc_vectors[row]
                predictions = sigmoid(outputs @ vector)
                gradient = (predictions - labels)[:, None]
                word_out[targets] -= alpha * gradient * vector
                doc_vectors[row] -= alpha * (gradient * outputs).sum(axis=0)

    return Doc2Vec(
        vocabulary=vocabulary,
        doc_ids=doc_ids,
        doc_vectors=doc_vectors,
        word_out=word_out,
        negatives=negatives,
        _unigram_table=table,
    )
