"""Negative-sampling machinery shared by word2vec and Doc2Vec."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


class UnigramTable:
    """Draws negative samples ∝ unigram_count^power (Mikolov's 0.75)."""

    def __init__(self, counts: np.ndarray, power: float = 0.75):
        require(len(counts) > 0, "counts must be non-empty")
        weights = np.asarray(counts, dtype=np.float64) ** power
        total = weights.sum()
        require(total > 0, "counts must contain a positive entry")
        self._cumulative = np.cumsum(weights / total)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` ids (may include repeats, as in word2vec)."""
        draws = rng.random(size)
        return np.searchsorted(self._cumulative, draws).astype(np.int64)


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically-stable logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
