"""The semantic-similarity channel for the neural reranker.

monoT5 matches *meaning*, not just surface terms. To give the MLP
cross-scorer a comparable signal, this module trains word2vec on the
corpus and scores (query, document) pairs by cosine similarity of their
mean term vectors — the classic dense-retrieval baseline. Plugged into
:class:`repro.ranking.features.FeatureExtractor` as the ``semantic``
feature.
"""

from __future__ import annotations

from repro.embeddings.similarity import cosine_similarity
from repro.embeddings.word2vec import Word2Vec, train_word2vec
from repro.index.inverted import InvertedIndex


class Word2VecSemanticScorer:
    """Callable ``(query, body) -> cosine`` over mean word vectors.

    Scores are cached per (query, body-hash is overkill here — text
    vectors are cheap); analysis uses the index's analyzer so the
    embedding vocabulary matches indexed terms.
    """

    def __init__(self, index: InvertedIndex, model: Word2Vec):
        self.index = index
        self.model = model
        self._query_cache: dict[str, object] = {}

    @classmethod
    def train(
        cls,
        index: InvertedIndex,
        dimension: int = 48,
        epochs: int = 5,
        seed: int | None = None,
    ) -> "Word2VecSemanticScorer":
        """Train word2vec on the indexed corpus and wrap it as a scorer."""
        analyzed = [index.analyzer.analyze(document.body) for document in index]
        model = train_word2vec(
            analyzed, dimension=dimension, epochs=epochs, seed=seed
        )
        return cls(index, model)

    def _query_vector(self, query: str):
        if query not in self._query_cache:
            terms = self.index.analyzer.analyze(query)
            self._query_cache[query] = self.model.text_vector(terms)
        return self._query_cache[query]

    def __call__(self, query: str, body: str) -> float:
        query_vector = self._query_vector(query)
        body_vector = self.model.text_vector(self.index.analyzer.analyze(body))
        return cosine_similarity(query_vector, body_vector)
