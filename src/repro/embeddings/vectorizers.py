"""Collection-statistic document vectors (paper §II-E, method 2).

"We build numeric vector representations of each corpus document using
their BM25 scores, though any similar collection statistic (e.g., TF-IDF
scores) would suffice." Each document becomes a sparse vector over the
vocabulary where entry *t* is the BM25 (or TF-IDF) weight of term *t* in
that document; similarity between documents is cosine over these vectors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Mapping

from repro.index.inverted import InvertedIndex
from repro.index.similarity import (
    Bm25Similarity,
    FieldStats,
    TermStats,
    TfIdfSimilarity,
)

#: Sparse document vector: analyzed term → weight.
SparseVector = Mapping[str, float]


class _StatisticVectorizer(ABC):
    """Shared plumbing for per-term-weight document vectorizers."""

    def __init__(self, index: InvertedIndex):
        self.index = index

    def _field_stats(self) -> FieldStats:
        stats = self.index.stats()
        return FieldStats(
            document_count=stats.document_count,
            average_document_length=stats.average_document_length,
            total_terms=stats.total_terms,
        )

    @abstractmethod
    def _weight(
        self,
        term_frequency: int,
        document_length: int,
        term_stats: TermStats,
        field_stats: FieldStats,
    ) -> float:
        """Weight of one term occurrence profile."""

    def _vector_from_counts(
        self, counts: Counter[str], document_length: int
    ) -> dict[str, float]:
        field_stats = self._field_stats()
        vector: dict[str, float] = {}
        for term, term_frequency in counts.items():
            term_stats = TermStats(
                document_frequency=self.index.document_frequency(term),
                collection_frequency=self.index.collection_frequency(term),
            )
            weight = self._weight(
                term_frequency, document_length, term_stats, field_stats
            )
            if weight:
                vector[term] = weight
        return vector

    def vector(self, doc_id: str) -> dict[str, float]:
        """Sparse vector for an indexed document."""
        counts = self.index.term_vector(doc_id)
        return self._vector_from_counts(counts, sum(counts.values()))

    def vector_for_text(self, body: str) -> dict[str, float]:
        """Sparse vector for arbitrary text, using index statistics."""
        terms = self.index.analyzer.analyze(body)
        return self._vector_from_counts(Counter(terms), len(terms))

    def all_vectors(self) -> dict[str, dict[str, float]]:
        """Vectors for every indexed document."""
        return {doc_id: self.vector(doc_id) for doc_id in self.index.doc_ids}


class Bm25Vectorizer(_StatisticVectorizer):
    """Documents as vectors of per-term BM25 weights (the paper's choice)."""

    def __init__(self, index: InvertedIndex, k1: float = 0.9, b: float = 0.4):
        super().__init__(index)
        self._similarity = Bm25Similarity(k1=k1, b=b)

    def _weight(self, term_frequency, document_length, term_stats, field_stats):
        return self._similarity.score(
            term_frequency, document_length, term_stats, field_stats
        )


class TfIdfVectorizer(_StatisticVectorizer):
    """Documents as TF-IDF weight vectors (the paper's noted alternative)."""

    def __init__(self, index: InvertedIndex, sublinear_tf: bool = True):
        super().__init__(index)
        self._similarity = TfIdfSimilarity(sublinear_tf=sublinear_tf)

    def _weight(self, term_frequency, document_length, term_stats, field_stats):
        return self._similarity.score(
            term_frequency, document_length, term_stats, field_stats
        )
