"""Skip-gram word2vec with negative sampling (Mikolov et al., 2013).

Pure-numpy SGNS, deterministic under a seed. Word vectors feed the
optional semantic channel of the neural reranker's features and serve as
the word-output layer for PV-DBOW Doc2Vec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings.sampling import UnigramTable, sigmoid
from repro.errors import TermNotFoundError, TrainingError
from repro.text.vocabulary import Vocabulary
from repro.utils.rng import default_rng
from repro.utils.validation import require, require_positive


@dataclass
class Word2Vec:
    """Trained SGNS embeddings: input vectors ``W_in``, output ``W_out``."""

    vocabulary: Vocabulary
    w_in: np.ndarray
    w_out: np.ndarray

    @property
    def dimension(self) -> int:
        return self.w_in.shape[1]

    def vector(self, term: str) -> np.ndarray:
        term_id = self.vocabulary.get(term)
        if term_id is None:
            raise TermNotFoundError(term)
        return self.w_in[term_id]

    def __contains__(self, term: str) -> bool:
        return term in self.vocabulary

    def text_vector(self, terms: Iterable[str]) -> np.ndarray:
        """Mean of known term vectors; zeros if no term is known."""
        vectors = [self.w_in[i] for i in self.vocabulary.encode(terms)]
        if not vectors:
            return np.zeros(self.dimension)
        return np.mean(vectors, axis=0)

    def most_similar(self, term: str, n: int = 10) -> list[tuple[str, float]]:
        """The ``n`` terms with the highest cosine similarity to ``term``."""
        query = self.vector(term)
        norms = np.linalg.norm(self.w_in, axis=1) * (np.linalg.norm(query) or 1.0)
        norms[norms == 0] = 1.0
        scores = (self.w_in @ query) / norms
        scores[self.vocabulary.id_of(term)] = -np.inf
        order = np.argsort(-scores)[:n]
        return [(self.vocabulary.term_of(int(i)), float(scores[int(i)])) for i in order]


def train_word2vec(
    documents: Sequence[Sequence[str]],
    dimension: int = 64,
    window: int = 4,
    negatives: int = 5,
    epochs: int = 5,
    learning_rate: float = 0.025,
    min_count: int = 1,
    seed: int | None = None,
) -> Word2Vec:
    """Train SGNS embeddings on tokenised ``documents``."""
    require_positive(dimension, "dimension")
    require_positive(window, "window")
    require_positive(epochs, "epochs")
    rng = default_rng(seed)
    vocabulary = Vocabulary.from_documents(documents, min_count=min_count)
    if len(vocabulary) == 0:
        raise TrainingError("empty vocabulary: no trainable terms")

    encoded = [vocabulary.encode(document) for document in documents]
    encoded = [doc for doc in encoded if len(doc) > 1]
    require(bool(encoded), "no document has two or more known terms")

    counts = np.array(
        [vocabulary.frequency(vocabulary.term_of(i)) for i in range(len(vocabulary))],
        dtype=np.float64,
    )
    table = UnigramTable(counts)

    size = len(vocabulary)
    w_in = (rng.random((size, dimension)) - 0.5) / dimension
    w_out = np.zeros((size, dimension))

    for epoch in range(epochs):
        alpha = learning_rate * (1.0 - epoch / max(epochs, 1)) + 1e-4
        for doc in encoded:
            doc_array = np.asarray(doc, dtype=np.int64)
            for position, center in enumerate(doc_array):
                span = int(rng.integers(1, window + 1))
                left = max(0, position - span)
                contexts = np.concatenate(
                    [doc_array[left:position], doc_array[position + 1 : position + 1 + span]]
                )
                if contexts.size == 0:
                    continue
                for context in contexts:
                    negatives_ids = table.sample(rng, negatives)
                    targets = np.concatenate(([context], negatives_ids))
                    labels = np.zeros(len(targets))
                    labels[0] = 1.0
                    outputs = w_out[targets]  # (1+neg, dim)
                    center_vector = w_in[center]
                    predictions = sigmoid(outputs @ center_vector)
                    gradient = (predictions - labels)[:, None]  # d(loss)/d(logit)
                    grad_center = (gradient * outputs).sum(axis=0)
                    w_out[targets] -= alpha * gradient * center_vector
                    w_in[center] -= alpha * grad_center

    return Word2Vec(vocabulary=vocabulary, w_in=w_in, w_out=w_out)
