"""Cosine similarity and exact nearest-neighbour search."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.heap import TopK
from repro.utils.validation import require, require_positive


def cosine_similarity(a, b) -> float:
    """Cosine similarity of two vectors.

    Accepts dense arrays or sparse ``{key: weight}`` mappings (both
    arguments must use the same representation). Zero vectors yield 0.0.
    """
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if not a or not b:
            return 0.0
        smaller, larger = (a, b) if len(a) <= len(b) else (b, a)
        dot = sum(weight * larger.get(key, 0.0) for key, weight in smaller.items())
        norm_a = sum(weight * weight for weight in a.values()) ** 0.5
        norm_b = sum(weight * weight for weight in b.values()) ** 0.5
        denominator = norm_a * norm_b
        return dot / denominator if denominator else 0.0
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    require(a.shape == b.shape, "vectors must have matching shapes")
    denominator = float(np.linalg.norm(a) * np.linalg.norm(b))
    return float(a @ b) / denominator if denominator else 0.0


class CosineKnn:
    """Exact top-n cosine search over a fixed set of labelled vectors."""

    def __init__(self, labels: Sequence[str], matrix: np.ndarray):
        require(len(labels) == matrix.shape[0], "labels must match matrix rows")
        self.labels = list(labels)
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._normalized = matrix / norms

    def nearest(
        self, query: np.ndarray, n: int = 10, exclude: set[str] | None = None
    ) -> list[tuple[str, float]]:
        """The ``n`` labels most cosine-similar to ``query``, best first."""
        require_positive(n, "n")
        norm = float(np.linalg.norm(query))
        unit = query / norm if norm else query
        scores = self._normalized @ unit
        excluded = exclude or set()
        top = TopK[str](n)
        for i, label in enumerate(self.labels):
            if label not in excluded:
                top.push(float(scores[i]), label)
        return [(label, score) for score, label in top.items()]
