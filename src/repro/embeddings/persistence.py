"""Persistence for trained models (word2vec, Doc2Vec, neural reranker).

Embedding training is the slowest step of engine construction; saving
trained models lets a deployment (or a benchmark session) reuse them
across processes. Format: numpy ``.npz`` with a JSON-encoded header —
self-describing, dependency-free, and safe to load (no pickle).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.embeddings.doc2vec import Doc2Vec
from repro.embeddings.sampling import UnigramTable
from repro.embeddings.word2vec import Word2Vec
from repro.text.vocabulary import Vocabulary

FORMAT_VERSION = 1


def _check_kind(payload: dict, expected: str) -> None:
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version: {payload.get('format_version')!r}"
        )
    if payload.get("kind") != expected:
        raise ValueError(f"expected a {expected} file, got {payload.get('kind')!r}")


def _vocabulary_payload(vocabulary: Vocabulary) -> dict:
    return {
        "terms": list(vocabulary),
        "frequencies": [vocabulary.frequency(term) for term in vocabulary],
    }


def _vocabulary_from_payload(payload: dict) -> Vocabulary:
    vocabulary = Vocabulary()
    for term, frequency in zip(payload["terms"], payload["frequencies"]):
        vocabulary.add(term)
        vocabulary._frequencies[term] = frequency
    return vocabulary


def save_word2vec(model: Word2Vec, path: str | Path) -> None:
    """Serialise a trained word2vec model to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": FORMAT_VERSION,
        "kind": "word2vec",
        "vocabulary": _vocabulary_payload(model.vocabulary),
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        w_in=model.w_in,
        w_out=model.w_out,
    )


def load_word2vec(path: str | Path) -> Word2Vec:
    """Load a model written by :func:`save_word2vec`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        _check_kind(header, "word2vec")
        return Word2Vec(
            vocabulary=_vocabulary_from_payload(header["vocabulary"]),
            w_in=data["w_in"],
            w_out=data["w_out"],
        )


def save_doc2vec(model: Doc2Vec, path: str | Path) -> None:
    """Serialise a trained Doc2Vec model to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": FORMAT_VERSION,
        "kind": "doc2vec",
        "vocabulary": _vocabulary_payload(model.vocabulary),
        "doc_ids": model.doc_ids,
        "negatives": model.negatives,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        doc_vectors=model.doc_vectors,
        word_out=model.word_out,
    )


def load_doc2vec(path: str | Path) -> Doc2Vec:
    """Load a model written by :func:`save_doc2vec`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        _check_kind(header, "doc2vec")
        vocabulary = _vocabulary_from_payload(header["vocabulary"])
        counts = np.array(
            [max(vocabulary.frequency(term), 1) for term in vocabulary],
            dtype=np.float64,
        )
        return Doc2Vec(
            vocabulary=vocabulary,
            doc_ids=list(header["doc_ids"]),
            doc_vectors=data["doc_vectors"],
            word_out=data["word_out"],
            negatives=int(header["negatives"]),
            _unigram_table=UnigramTable(counts),
        )
