"""Embedding substrate: word2vec, Doc2Vec, and collection-statistic vectors.

Backs the paper's two instance-based counterfactual variants (§II-E):
Doc2Vec embeddings (method 1) and per-term BM25-score document vectors
(method 2), both compared by cosine similarity.
"""

from repro.embeddings.doc2vec import Doc2Vec, train_doc2vec
from repro.embeddings.similarity import CosineKnn, cosine_similarity
from repro.embeddings.vectorizers import (
    Bm25Vectorizer,
    SparseVector,
    TfIdfVectorizer,
)
from repro.embeddings.word2vec import Word2Vec, train_word2vec

__all__ = [
    "Doc2Vec",
    "train_doc2vec",
    "CosineKnn",
    "cosine_similarity",
    "Bm25Vectorizer",
    "SparseVector",
    "TfIdfVectorizer",
    "Word2Vec",
    "train_word2vec",
]
