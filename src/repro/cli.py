"""Command-line interface: ``python -m repro.cli <command>``.

Headless access to the CREDENCE workflow over any JSONL corpus (or the
bundled demo corpus). Every explanation family runs through one
``explain`` command with a ``--strategy`` name:

.. code-block:: bash

    python -m repro.cli rank --query "covid outbreak" --k 10
    python -m repro.cli strategies
    python -m repro.cli explain --query "covid outbreak" \
        --doc covid-fake-5g --strategy document/sentence-removal
    python -m repro.cli explain --query "covid outbreak" \
        --doc covid-fake-5g --strategy query/augmentation --n 7 --threshold 2
    python -m repro.cli explain --query "covid outbreak" \
        --doc covid-fake-5g --strategy instance/cosine --samples 30
    python -m repro.cli explain --query "covid outbreak" \
        --doc covid-fake-5g --search beam --beam-width 4 --budget 5000
    python -m repro.cli builder --query "covid outbreak" \
        --doc covid-fake-5g --replace covid=flu --remove outbreak
    python -m repro.cli serve --port 8091 --workers 8
    python -m repro.cli rank --corpus my_docs.jsonl --ranker bm25 \
        --query "anything"
    python -m repro.cli index --corpus my_docs.jsonl --shards 4 \
        --workers 4 --save my_index.idx            # packed v3 by default
    python -m repro.cli compact my_index.idx compacted.idx
    python -m repro.cli serve --replica my_index.idx --port 8092

Async jobs against a *running* service (``serve``) go through the
``jobs`` subcommands:

.. code-block:: bash

    python -m repro.cli jobs submit --url http://127.0.0.1:8091 \
        --query "covid outbreak" --doc covid-fake-5g --doc covid-who-report
    python -m repro.cli jobs status job-1 --wait
    python -m repro.cli jobs cancel job-1
    python -m repro.cli metrics --url http://127.0.0.1:8091
    python -m repro.cli metrics --format prometheus

Observability: ``explain --profile`` prints a per-stage wall-time
breakdown to stderr (the explanation itself is byte-identical with or
without it), and ``serve`` traces every request by default — inspect
with ``GET /debug/traces`` or disable with ``--no-trace``.

The pre-redesign per-family subcommands (``explain-document``,
``explain-query``, ``explain-instance``) remain as thin delegations to
``explain``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.engine import CredenceEngine, EngineConfig, RANKER_CHOICES
from repro.core.explain import ExplainRequest, ExplainResponse
from repro.core.perturbations import Perturbation, RemoveTerm, ReplaceTerm
from repro.core.registry import DEFAULT_REGISTRY, STRATEGY_ALIASES
from repro.core.search import DEFAULT_BEAM_WIDTH, SEARCH_STRATEGIES
from repro.datasets.loaders import load_jsonl
from repro.index.sharding import ROUTER_CHOICES
from repro.datasets.queries import sample_queries
from repro.demo import demo_engine
from repro.errors import ReproError


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--corpus", help="JSONL corpus path (default: the bundled demo corpus)"
    )
    parser.add_argument(
        "--ranker",
        default="bm25",
        choices=RANKER_CHOICES,
        help="ranking model (default bm25; 'neural' trains the MLP reranker)",
    )
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--json", action="store_true", help="emit raw JSON")


def _build_engine(args: argparse.Namespace) -> CredenceEngine:
    if args.corpus is None:
        return demo_engine(ranker=args.ranker, seed=args.seed)
    documents = load_jsonl(args.corpus)
    training = tuple(sample_queries(documents, count=10, seed=args.seed))
    config = EngineConfig(
        ranker=args.ranker, training_queries=training, seed=args.seed
    )
    return CredenceEngine(documents, config)


def _emit(args: argparse.Namespace, payload: dict, text: str) -> None:
    if args.json:
        print(json.dumps(payload, ensure_ascii=False, indent=2))
    else:
        print(text)


def _cmd_rank(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    ranking = engine.rank(args.query, k=args.k)
    lines = [
        f"{entry.rank:>3}. {entry.doc_id:<30} {entry.score:10.4f}"
        for entry in ranking
    ]
    _emit(args, {"query": args.query, "ranking": ranking.to_dicts()}, "\n".join(lines))
    return 0


# -- unified explain command ---------------------------------------------------


def _render_sentence_removal(response: ExplainResponse) -> str:
    lines = []
    for explanation in response:
        lines.append(
            f"rank {explanation.original_rank} -> {explanation.new_rank} by "
            f"removing sentence(s) {list(explanation.removed_indices)}:"
        )
        lines.extend(f"  - {s.text}" for s in explanation.removed_sentences)
    return "\n".join(lines) or "no counterfactual found"


def _render_query_augmentation(response: ExplainResponse) -> str:
    lines = [
        f"{e.augmented_query!r}: rank {e.original_rank} -> {e.new_rank}"
        for e in response
    ]
    return "\n".join(lines) or "no counterfactual found"


def _render_instance(response: ExplainResponse) -> str:
    lines = [
        f"{e.counterfactual_doc_id:<30} {e.similarity_percent:6.1f}% ({e.method})"
        for e in response
    ]
    return "\n".join(lines) or "no instances found"


def _render_feature_changes(response: ExplainResponse) -> str:
    lines = []
    for explanation in response:
        changed = ", ".join(change.describe() for change in explanation.changes)
        lines.append(
            f"rank {explanation.original_rank} -> {explanation.new_rank} by "
            f"setting {changed}"
        )
    return "\n".join(lines) or "no counterfactual found"


#: Text renderer per strategy; strategies without one fall back to JSON.
_RENDERERS = {
    "document/sentence-removal": _render_sentence_removal,
    "document/greedy": _render_sentence_removal,
    "query/augmentation": _render_query_augmentation,
    "instance/doc2vec": _render_instance,
    "instance/cosine": _render_instance,
    "features/ltr": _render_feature_changes,
}


def _strategy_choices() -> list[str]:
    return [*DEFAULT_REGISTRY.names(), *sorted(STRATEGY_ALIASES)]


def _run_explain(
    args: argparse.Namespace, strategy: str, legacy_payload: bool = False
) -> int:
    """Build the engine, dispatch one request, and render the result.

    ``legacy_payload`` keeps the pre-redesign JSON shape (the bare
    :class:`~repro.core.types.ExplanationSet`) for the delegating
    per-family subcommands; the ``explain`` command emits the
    strategy-tagged envelope.
    """
    engine = _build_engine(args)
    request = ExplainRequest(
        query=args.query,
        doc_id=args.doc,
        strategy=strategy,
        n=args.n,
        k=args.k,
        threshold=getattr(args, "threshold", 1),
        samples=getattr(args, "samples", 50),
        search=getattr(args, "search", None),
        beam_width=getattr(args, "beam_width", DEFAULT_BEAM_WIDTH),
        budget=getattr(args, "budget", None),
        deadline_ms=getattr(args, "deadline_ms", None),
    )
    debug = None
    if getattr(args, "profile", False):
        from repro.obs import Tracer, profile_block, render_profile

        tracer = Tracer(ring_capacity=1)
        with tracer.trace("cli/explain") as trace:
            if getattr(args, "stream", False):
                response = _explain_streaming(engine, request)
            else:
                response = engine.explain(request)
        debug = profile_block(trace)
        # The breakdown goes to stderr so stdout stays the result alone
        # (pipelines parsing it are unaffected by --profile).
        print(render_profile(debug), file=sys.stderr)
    elif getattr(args, "stream", False):
        response = _explain_streaming(engine, request)
    else:
        response = engine.explain(request)
    renderer = _RENDERERS.get(response.strategy)
    text = (
        renderer(response)
        if renderer is not None
        else json.dumps(response.to_dict(), ensure_ascii=False, indent=2)
    )
    payload = response.result.to_dict() if legacy_payload else response.to_dict()
    if debug is not None and not legacy_payload:
        payload = {**payload, "debug": debug}
    _emit(args, payload, text)
    return 0 if response.explanations else 1


def _explain_streaming(engine: CredenceEngine, request: ExplainRequest):
    """Run one explain with live progress lines on stderr.

    The search publishes through the thread-local progress channel (the
    same one ``POST /explanations/stream`` reads), so this needs no
    server: progress goes to stderr as the search runs, and the final
    rendered result goes to stdout exactly as without ``--stream``.
    """
    import threading

    from repro.core.search.progress import ProgressSink, search_progress
    from repro.obs import activate_context, capture_context

    sink = ProgressSink()
    outcome: dict = {}
    # Hand any active trace (--profile) to the worker thread.
    trace_context = capture_context()

    def run() -> None:
        try:
            with activate_context(trace_context), search_progress(sink):
                outcome["response"] = engine.explain(request)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            outcome["error"] = error

    worker = threading.Thread(target=run, name="explain-stream", daemon=True)
    worker.start()
    seen = 0
    while worker.is_alive():
        worker.join(0.05)
        if sink.updates != seen:
            seen = sink.updates
            snapshot = sink.snapshot()
            if snapshot is None:
                continue
            budget = snapshot.get("budget_remaining")
            print(
                f"  ... {snapshot['strategy']}: "
                f"{snapshot['candidates_evaluated']} candidates, "
                f"{snapshot['explanations_found']} found"
                + (f", budget left {budget}" if budget is not None else ""),
                file=sys.stderr,
            )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["response"]


def _cmd_explain(args: argparse.Namespace) -> int:
    docs = args.doc if isinstance(args.doc, list) else [args.doc]
    if len(docs) == 1 and args.parallel is None and args.executor is None:
        # Single document, no tier selection: the original single-request
        # path (streaming/profiling supported) stays byte-for-byte intact.
        args.doc = docs[0]
        return _run_explain(args, args.strategy)
    return _run_explain_batch(args, docs)


def _run_explain_batch(args: argparse.Namespace, docs: list[str]) -> int:
    """Dispatch one request per ``--doc`` through ``explain_batch``.

    ``--parallel N`` fans the batch across N workers and ``--executor``
    picks the tier (threads or GIL-free worker processes); results are
    byte-identical to the sequential path either way. ``--stream`` and
    ``--profile`` are single-request features and are ignored here.
    """
    engine = _build_engine(args)
    requests = [
        ExplainRequest(
            query=args.query,
            doc_id=doc_id,
            strategy=args.strategy,
            n=args.n,
            k=args.k,
            threshold=getattr(args, "threshold", 1),
            samples=getattr(args, "samples", 50),
            search=getattr(args, "search", None),
            beam_width=getattr(args, "beam_width", DEFAULT_BEAM_WIDTH),
            budget=getattr(args, "budget", None),
            deadline_ms=getattr(args, "deadline_ms", None),
        )
        for doc_id in docs
    ]
    responses = engine.explain_batch(
        requests, parallel=args.parallel, executor=args.executor
    )
    blocks = []
    for response in responses:
        renderer = _RENDERERS.get(response.strategy)
        body = (
            renderer(response)
            if renderer is not None and response.error is None
            else json.dumps(response.to_dict(), ensure_ascii=False, indent=2)
        )
        blocks.append(f"[{response.doc_id}]\n{body}")
    _emit(
        args,
        {"responses": [response.to_dict() for response in responses]},
        "\n\n".join(blocks),
    )
    return (
        0
        if all(
            response.error is None and response.explanations
            for response in responses
        )
        else 1
    )


def _cmd_strategies(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    records = engine.registry.describe(engine)
    lines = []
    for record in records:
        marker = "" if record.get("available", True) else "  (unavailable)"
        lines.append(f"{record['name']:<28} {record['description']}{marker}")
    _emit(args, {"strategies": records}, "\n".join(lines))
    return 0


# -- legacy per-family commands (delegations) ----------------------------------


def _cmd_explain_document(args: argparse.Namespace) -> int:
    return _run_explain(args, "document/sentence-removal", legacy_payload=True)


def _cmd_explain_query(args: argparse.Namespace) -> int:
    return _run_explain(args, "query/augmentation", legacy_payload=True)


def _cmd_explain_instance(args: argparse.Namespace) -> int:
    return _run_explain(args, args.method, legacy_payload=True)


def _parse_edits(args: argparse.Namespace) -> list[Perturbation]:
    perturbations: list[Perturbation] = []
    for spec in args.replace or []:
        term, _, replacement = spec.partition("=")
        if not term or not replacement:
            raise SystemExit(f"--replace expects term=replacement, got {spec!r}")
        perturbations.append(ReplaceTerm(term, replacement))
    for term in args.remove or []:
        perturbations.append(RemoveTerm(term))
    if not perturbations:
        raise SystemExit("builder needs at least one --replace/--remove edit")
    return perturbations


def _cmd_builder(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    result = engine.build_counterfactual(
        args.query, args.doc, perturbations=_parse_edits(args), k=args.k
    )
    check = "VALID counterfactual" if result.is_valid_counterfactual else "not valid"
    lines = [f"rank {result.rank_before} -> {result.rank_after}  [{check}]"]
    glyph = {"raised": "^", "lowered": "v", "unchanged": "=", "revealed": "+"}
    lines.extend(
        f"  {glyph[m.direction]} {m.doc_id:<30} "
        f"{m.before if m.before is not None else '-'} -> {m.after}"
        for m in result.movements
    )
    _emit(args, result.to_dict(), "\n".join(lines))
    return 0 if result.is_valid_counterfactual else 1


def _cmd_topics(args: argparse.Namespace) -> int:
    engine = _build_engine(args)
    summary = engine.topics(args.query, k=args.k, num_topics=args.num_topics)
    lines = [
        f"topic {topic.topic_id}: "
        + ", ".join(term for term, _ in topic.terms)
        for topic in summary
    ]
    _emit(args, {"topics": summary.to_dicts()}, "\n".join(lines))
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    """Build a (sharded) index from a corpus: stats, optional save."""
    import time

    from repro.datasets.covid import covid_corpus
    from repro.index.inverted import InvertedIndex
    from repro.index.sharding import ShardedIndex, build_router
    from repro.index.storage import save_index

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    documents = (
        load_jsonl(args.corpus) if args.corpus is not None else covid_corpus()
    )
    start = time.perf_counter()
    if args.shards > 1:
        index: InvertedIndex | ShardedIndex = ShardedIndex.from_documents(
            documents,
            args.shards,
            router=build_router(args.router, args.shards),
            workers=args.workers,
            executor=args.executor,
        )
    else:
        index = InvertedIndex()
        index.add_documents(
            documents, workers=args.workers, executor=args.executor
        )
    elapsed = time.perf_counter() - start
    if args.save:
        # "v2" selects the legacy JSON family (a plain index writes a v1
        # file, a sharded one a v2 manifest); "v3" the packed format.
        save_index(
            index, args.save, format=None if args.format == "v2" else "v3"
        )
    stats = index.stats()
    payload = {
        "documents": stats.document_count,
        "unique_terms": stats.unique_terms,
        "total_terms": stats.total_terms,
        "average_document_length": stats.average_document_length,
        "shards": args.shards,
        "workers": args.workers,
        "executor": args.executor or "thread",
        "ingest_seconds": round(elapsed, 4),
        "saved_to": args.save,
        "format": args.format if args.save else None,
    }
    lines = [
        f"indexed {stats.document_count} documents "
        f"({stats.unique_terms} unique terms, "
        f"avgdl {stats.average_document_length:.1f}) in {elapsed:.2f}s"
    ]
    if isinstance(index, ShardedIndex):
        payload["router"] = index.router.name
        payload["shard_documents"] = index.shard_sizes()
        lines.append(
            f"{index.shard_count} shards ({index.router.name} router): "
            + ", ".join(
                f"shard {i}: {size}"
                for i, size in enumerate(index.shard_sizes())
            )
        )
    if args.save:
        lines.append(f"saved to {args.save}")
    _emit(args, payload, "\n".join(lines))
    return 0


def _index_bytes(path) -> int:
    """Total on-disk bytes of a saved index (manifest + data files)."""
    from pathlib import Path

    from repro.index.storage import detect_format

    path = Path(path)
    fmt = detect_format(path)
    total = path.stat().st_size
    if fmt == "v3":
        from repro.index.persist import Manifest

        record = Manifest.open(path).latest_generation()
        if record is not None:
            total += sum(segment.bytes for segment in record.segments)
    elif fmt == "v2":
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        total += sum(
            (path.parent / name).stat().st_size
            for name in manifest["shard_files"]
        )
    return total


def _cmd_compact(args: argparse.Namespace) -> int:
    """Rewrite a saved index into a fresh single-generation copy."""
    import time

    from repro.index.storage import detect_format, load_index, save_index

    source_format = detect_format(args.src)
    start = time.perf_counter()
    index = load_index(args.src, mode="memory")
    save_index(
        index, args.dst, format=None if args.format == "v2" else "v3"
    )
    elapsed = time.perf_counter() - start
    payload = {
        "src": args.src,
        "dst": args.dst,
        "src_format": source_format,
        "dst_format": args.format,
        "documents": len(index),
        "src_bytes": _index_bytes(args.src),
        "dst_bytes": _index_bytes(args.dst),
        "seconds": round(elapsed, 4),
    }
    _emit(
        args,
        payload,
        f"compacted {payload['documents']} documents: "
        f"{args.src} ({source_format}, {payload['src_bytes']} bytes) -> "
        f"{args.dst} ({args.format}, {payload['dst_bytes']} bytes) "
        f"in {elapsed:.2f}s",
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api.app import serve

    replica = None
    if args.replica is not None:
        from repro.datasets.queries import sample_queries as _sample
        from repro.index.persist import ReplicaIndex

        replica = ReplicaIndex(args.replica)
        training = (
            tuple(_sample(list(replica), count=10, seed=args.seed))
            if args.ranker == "neural"
            else ()
        )
        config = EngineConfig(
            ranker=args.ranker, training_queries=training, seed=args.seed
        )
        engine = CredenceEngine.from_index(replica, config=config)
        replica.watch(args.watch_interval)
    else:
        engine = _build_engine(args)
    server = serve(
        engine,
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        max_queue_depth=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        tracing=not args.no_trace,
        trace_jsonl=args.trace_jsonl,
        slow_request_ms=args.slow_ms,
    )
    pool_size = engine.service().pool.worker_count
    mode = (
        f", replica of {args.replica} @ generation {replica.generation}"
        if replica is not None
        else ""
    )
    hardening = []
    if args.executor == "process":
        hardening.append("process executor")
    if args.rate_limit is not None:
        hardening.append(f"rate limit {args.rate_limit:g}/s")
    if args.max_queue is not None:
        hardening.append(f"max queue {args.max_queue}")
    if args.default_deadline_ms is not None:
        hardening.append(f"deadline {args.default_deadline_ms:g}ms")
    extras = f", {', '.join(hardening)}" if hardening else ""
    print(
        f"CREDENCE service on {server.url} "
        f"({pool_size} explanation workers{mode}{extras}, Ctrl-C to stop)"
    )
    try:
        server._server.serve_forever()  # reuse the bound socket loop
    except KeyboardInterrupt:
        # Drain-before-exit: new requests get clean 503s immediately,
        # accepted work finishes, then the listener closes.
        engine.service().drain(wait=True)
        server.stop()
        if replica is not None:
            replica.close()
    return 0


# -- async jobs against a running service --------------------------------------


def _jobs_client(args: argparse.Namespace):
    from repro.api.client import HttpClient

    return HttpClient(args.url, timeout=args.timeout)


def _render_job(payload: dict) -> str:
    lines = [
        f"{payload['job_id']}: {payload['status']} "
        f"({payload['items_done']}/{payload['items_total']} items"
        + (
            f", {payload['items_skipped']} skipped)"
            if payload.get("items_skipped")
            else ")"
        )
    ]
    for position, state in enumerate(payload.get("items", [])):
        lines.append(f"  item {position}: {state}")
    if payload.get("error"):
        lines.append(f"  error: {payload['error']}")
    return "\n".join(lines)


def _job_exit_code(payload: dict) -> int:
    return 0 if payload["status"] in ("pending", "running", "done") else 1


def _with_connection_errors(handler):
    """Map unreachable-service errors to a clean exit-2 message."""

    def run(args: argparse.Namespace) -> int:
        try:
            return handler(args)
        except OSError as error:  # URLError subclasses OSError
            print(
                f"error: cannot reach service at {args.url}: {error}",
                file=sys.stderr,
            )
            return 2

    return run


def _render_metrics(payload: dict) -> str:
    """The human form of the ``GET /metrics`` JSON snapshot."""
    lines = [
        f"uptime {payload['uptime_seconds']:.1f}s  "
        f"snapshot #{payload['snapshot_seq']}  "
        f"workers {payload['workers']}  "
        f"queue depth {payload['queue_depth']}"
        + ("  DRAINING" if payload.get("draining") else "")
    ]
    lines.append(
        f"cache hit rate {payload['cache_hit_rate']:.1%} "
        f"({payload['store']['hits']} hits / "
        f"{payload['store']['misses']} misses, "
        f"{payload['store']['entries']} entries)"
    )
    latency = payload["item_latency"]
    lines.append(
        f"item latency: {latency['count']} items, "
        f"p50 {latency['p50_seconds'] * 1000:.1f}ms  "
        f"p95 {latency['p95_seconds'] * 1000:.1f}ms  "
        f"p99 {latency['p99_seconds'] * 1000:.1f}ms"
    )
    lines.append("counters:")
    for name, value in sorted(payload["counters"].items()):
        if value:
            lines.append(f"  {name:<34} {value}")
    if not any(payload["counters"].values()):
        lines.append("  (all zero)")
    admission = payload.get("admission")
    if admission is not None:
        parts = [
            f"{key}={value}"
            for key, value in admission.items()
            if value is not None
        ]
        lines.append("admission: " + (", ".join(parts) or "armed"))
    return "\n".join(lines)


def _cmd_metrics(args: argparse.Namespace) -> int:
    client = _jobs_client(args)
    if args.format == "prometheus":
        response = client.get("/metrics?format=prometheus")
        if response.status != 200:
            print(f"error: {response.payload}", file=sys.stderr)
            return 2
        # Exposition text passes through verbatim (scrape-compatible).
        print(response.payload, end="")
        return 0
    response = client.get("/metrics")
    if response.status != 200:
        print(f"error: {response.payload.get('detail')}", file=sys.stderr)
        return 2
    payload = response.payload
    _emit(args, payload, _render_metrics(payload))
    return 0


def _cmd_jobs_submit(args: argparse.Namespace) -> int:
    search_options = {}
    if args.search is not None:
        search_options["search"] = args.search
        search_options["beam_width"] = args.beam_width
    if args.budget is not None:
        search_options["budget"] = args.budget
    if args.deadline_ms is not None:
        search_options["deadline_ms"] = args.deadline_ms
    requests = [
        {
            "query": args.query,
            "doc_id": doc,
            "strategy": args.strategy,
            "n": args.n,
            "k": args.k,
            "threshold": args.threshold,
            "samples": args.samples,
            **search_options,
        }
        for doc in args.doc
    ]
    client = _jobs_client(args)
    response = client.post("/jobs", {"requests": requests})
    if response.status != 202:
        print(f"error: {response.payload.get('detail')}", file=sys.stderr)
        return 2
    payload = response.payload
    if args.wait:
        response = _poll_job(client, payload["job_id"])
        if response.status != 200:
            print(f"error: {response.payload.get('detail')}", file=sys.stderr)
            return 2
        payload = response.payload
    _emit(args, payload, _render_job(payload))
    return _job_exit_code(payload)


def _poll_job(client, job_id: str, interval: float = 0.2):
    """Poll until the job is terminal (or the server errors); returns the
    final HttpResponse — callers must check ``.status`` before rendering
    (the job may 404 mid-poll if retention evicted it)."""
    import time

    while True:
        response = client.get(f"/jobs/{job_id}")
        if response.status != 200 or response.payload["status"] not in (
            "pending",
            "running",
        ):
            return response
        time.sleep(interval)


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    client = _jobs_client(args)
    if args.wait:
        response = _poll_job(client, args.job_id)
    else:
        response = client.get(f"/jobs/{args.job_id}")
    if response.status != 200:
        print(f"error: {response.payload.get('detail')}", file=sys.stderr)
        return 2
    payload = response.payload
    _emit(args, payload, _render_job(payload))
    return _job_exit_code(payload)


def _cmd_jobs_cancel(args: argparse.Namespace) -> int:
    client = _jobs_client(args)
    response = client.delete(f"/jobs/{args.job_id}")
    if response.status != 200:
        print(f"error: {response.payload.get('detail')}", file=sys.stderr)
        return 2
    payload = response.payload
    _emit(args, payload, _render_job(payload))
    return 0


def _add_search_options(parser: argparse.ArgumentParser) -> None:
    """The counterfactual search-kernel knobs shared by explain/jobs."""
    parser.add_argument(
        "--search",
        default=None,
        choices=SEARCH_STRATEGIES,
        help="search strategy (default: the explanation family's own)",
    )
    parser.add_argument(
        "--beam-width",
        type=int,
        default=DEFAULT_BEAM_WIDTH,
        help=f"frontier width for --search beam (default {DEFAULT_BEAM_WIDTH})",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="cap on candidate evaluations (default: family budget)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="wall-clock bound on the search in milliseconds",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CREDENCE counterfactual ranking explanations"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    rank = commands.add_parser("rank", help="rank the corpus for a query")
    _add_common(rank)
    rank.add_argument("--query", required=True)
    rank.set_defaults(handler=_cmd_rank)

    explain = commands.add_parser(
        "explain", help="run any explanation strategy (see 'strategies')"
    )
    _add_common(explain)
    explain.add_argument("--query", required=True)
    explain.add_argument(
        "--doc",
        required=True,
        action="append",
        help="document id to explain; repeat for a batch",
    )
    explain.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan a multi-document batch out across N workers "
        "(results stay byte-identical to the sequential path)",
    )
    explain.add_argument(
        "--executor",
        default=None,
        choices=("thread", "process"),
        help="execution tier for --parallel: worker threads (default) "
        "or worker processes (GIL-free; scales with cores)",
    )
    explain.add_argument(
        "--strategy",
        default="document/sentence-removal",
        choices=_strategy_choices(),
        help="explanation strategy name (default document/sentence-removal)",
    )
    explain.add_argument("--n", type=int, default=1)
    explain.add_argument(
        "--threshold", type=int, default=1, help="target rank (query strategies)"
    )
    explain.add_argument(
        "--samples", type=int, default=50, help="sample count (instance/cosine)"
    )
    _add_search_options(explain)
    explain.add_argument(
        "--stream",
        action="store_true",
        help="print live search progress to stderr while the "
        "explanation runs",
    )
    explain.add_argument(
        "--profile",
        action="store_true",
        help="trace the request and print a per-stage wall-time "
        "breakdown to stderr (results are byte-identical either way)",
    )
    explain.set_defaults(handler=_cmd_explain)

    strategies = commands.add_parser(
        "strategies", help="list the registered explanation strategies"
    )
    _add_common(strategies)
    strategies.set_defaults(handler=_cmd_strategies)

    doc_cf = commands.add_parser(
        "explain-document", help="minimal sentence removals demoting a document"
    )
    _add_common(doc_cf)
    doc_cf.add_argument("--query", required=True)
    doc_cf.add_argument("--doc", required=True)
    doc_cf.add_argument("--n", type=int, default=1)
    doc_cf.set_defaults(handler=_cmd_explain_document)

    query_cf = commands.add_parser(
        "explain-query", help="minimal query augmentations promoting a document"
    )
    _add_common(query_cf)
    query_cf.add_argument("--query", required=True)
    query_cf.add_argument("--doc", required=True)
    query_cf.add_argument("--n", type=int, default=1)
    query_cf.add_argument("--threshold", type=int, default=1)
    query_cf.set_defaults(handler=_cmd_explain_query)

    instance = commands.add_parser(
        "explain-instance", help="similar non-relevant corpus documents"
    )
    _add_common(instance)
    instance.add_argument("--query", required=True)
    instance.add_argument("--doc", required=True)
    instance.add_argument("--n", type=int, default=1)
    instance.add_argument(
        "--method",
        default="doc2vec_nearest",
        choices=["doc2vec_nearest", "cosine_sampled"],
    )
    instance.add_argument("--samples", type=int, default=50)
    instance.set_defaults(handler=_cmd_explain_instance)

    builder = commands.add_parser(
        "builder", help="apply edits to a document and re-rank"
    )
    _add_common(builder)
    builder.add_argument("--query", required=True)
    builder.add_argument("--doc", required=True)
    builder.add_argument(
        "--replace", action="append", metavar="TERM=REPLACEMENT"
    )
    builder.add_argument("--remove", action="append", metavar="TERM")
    builder.set_defaults(handler=_cmd_builder)

    topics = commands.add_parser("topics", help="LDA topics over the top-k")
    _add_common(topics)
    topics.add_argument("--query", required=True)
    topics.add_argument("--num-topics", type=int, default=5)
    topics.set_defaults(handler=_cmd_topics)

    index_cmd = commands.add_parser(
        "index", help="build a (sharded) index from a corpus"
    )
    index_cmd.add_argument(
        "--corpus", help="JSONL corpus path (default: the bundled demo corpus)"
    )
    index_cmd.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count (1 = a plain single index, the default)",
    )
    index_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel ingest workers (sharded only; default serial)",
    )
    index_cmd.add_argument(
        "--executor",
        default=None,
        choices=("thread", "process"),
        help="ingest tier: worker threads (default; overlap only on "
        "free-threaded builds) or worker processes (GIL-free analysis)",
    )
    index_cmd.add_argument(
        "--router",
        default="hash",
        choices=ROUTER_CHOICES,
        help="document-to-shard routing (default hash)",
    )
    index_cmd.add_argument(
        "--save", metavar="PATH", help="persist the index (see --format)"
    )
    index_cmd.add_argument(
        "--format",
        default="v3",
        choices=("v2", "v3"),
        help="on-disk format for --save: v3 = packed mmap segments "
        "(default), v2 = the legacy JSON family",
    )
    index_cmd.add_argument("--json", action="store_true", help="emit raw JSON")
    index_cmd.set_defaults(handler=_cmd_index)

    compact = commands.add_parser(
        "compact",
        help="rewrite a saved index into a fresh single-generation copy",
    )
    compact.add_argument("src", help="path of the saved index to read")
    compact.add_argument("dst", help="path to write the compacted index to")
    compact.add_argument(
        "--format",
        default="v3",
        choices=("v2", "v3"),
        help="output format (default v3, the packed format)",
    )
    compact.add_argument("--json", action="store_true", help="emit raw JSON")
    compact.set_defaults(handler=_cmd_compact)

    serve_cmd = commands.add_parser("serve", help="run the REST service")
    _add_common(serve_cmd)
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8091)
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="explanation worker-pool size (default 4)",
    )
    serve_cmd.add_argument(
        "--executor",
        default="thread",
        choices=("thread", "process"),
        help="execution tier for computed explanations: worker threads "
        "(default) or worker processes attaching the index via mmap",
    )
    serve_cmd.add_argument(
        "--replica",
        metavar="PATH",
        help="serve a saved v3 index read-only, following new commits "
        "(run any number of these over one on-disk index)",
    )
    serve_cmd.add_argument(
        "--watch-interval",
        type=float,
        default=2.0,
        help="seconds between generation polls in --replica mode",
    )
    serve_cmd.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="REQ_PER_S",
        help="per-client admission rate limit (429 + Retry-After beyond it)",
    )
    serve_cmd.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        help="token-bucket burst for --rate-limit (default: the rate, min 1)",
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="DEPTH",
        help="shed queueing requests beyond this pool backlog (429)",
    )
    serve_cmd.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="per-request wall-clock deadline stamped at admission; "
        "overloaded requests degrade to best-effort partial results",
    )
    serve_cmd.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request tracing (X-Request-Id is still accepted "
        "but /debug/traces stays empty)",
    )
    serve_cmd.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        default=None,
        help="append every finished request trace to this JSONL file",
    )
    serve_cmd.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="THRESHOLD",
        help="log requests slower than this and keep them in the "
        "slow-request ring (GET /debug/traces?slow=1)",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    jobs = commands.add_parser(
        "jobs", help="async explanation jobs on a running service"
    )
    jobs_commands = jobs.add_subparsers(dest="jobs_command", required=True)

    def _add_jobs_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--url",
            default="http://127.0.0.1:8091",
            help="base URL of a running 'serve' instance",
        )
        parser.add_argument("--timeout", type=float, default=30.0)
        parser.add_argument("--json", action="store_true", help="emit raw JSON")

    submit = jobs_commands.add_parser(
        "submit", help="submit an async explanation job"
    )
    _add_jobs_common(submit)
    submit.add_argument("--query", required=True)
    submit.add_argument(
        "--doc",
        action="append",
        required=True,
        metavar="DOC_ID",
        help="instance document (repeat for a batch job)",
    )
    submit.add_argument(
        "--strategy",
        default="document/sentence-removal",
        choices=_strategy_choices(),
    )
    submit.add_argument("--n", type=int, default=1)
    submit.add_argument("--k", type=int, default=10)
    submit.add_argument("--threshold", type=int, default=1)
    submit.add_argument("--samples", type=int, default=50)
    _add_search_options(submit)
    submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    submit.set_defaults(handler=_with_connection_errors(_cmd_jobs_submit))

    status = jobs_commands.add_parser(
        "status", help="show a job's progress and results"
    )
    _add_jobs_common(status)
    status.add_argument("job_id")
    status.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    status.set_defaults(handler=_with_connection_errors(_cmd_jobs_status))

    cancel = jobs_commands.add_parser("cancel", help="cancel a running job")
    _add_jobs_common(cancel)
    cancel.add_argument("job_id")
    cancel.set_defaults(handler=_with_connection_errors(_cmd_jobs_cancel))

    metrics_cmd = commands.add_parser(
        "metrics", help="fetch and pretty-print a running service's /metrics"
    )
    metrics_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8091",
        help="base URL of a running 'serve' instance",
    )
    metrics_cmd.add_argument("--timeout", type=float, default=30.0)
    metrics_cmd.add_argument(
        "--json", action="store_true", help="emit the raw JSON snapshot"
    )
    metrics_cmd.add_argument(
        "--format",
        default="json",
        choices=("json", "prometheus"),
        help="prometheus prints the exposition text verbatim",
    )
    metrics_cmd.set_defaults(handler=_with_connection_errors(_cmd_metrics))

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        # Library errors (unranked document, unavailable strategy, bad
        # parameter combinations) are user errors here, not crashes.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
