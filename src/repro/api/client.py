"""Clients for the CREDENCE API.

:class:`InProcessClient` dispatches through a :class:`Router` without a
socket — the integration-test workhorse. :class:`HttpClient` speaks real
HTTP (urllib) to a running :class:`~repro.api.http.ApiServer`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.api.http import HttpResponse, Request, Router


class InProcessClient:
    """Calls a router directly, bypassing the network stack."""

    def __init__(self, router: Router):
        self._router = router

    def get(self, path: str, query_params: dict[str, str] | None = None) -> HttpResponse:
        request = Request(
            method="GET", path=path, query_params=dict(query_params or {})
        )
        return self._router.dispatch(request)

    def post(self, path: str, body: Any = None) -> HttpResponse:
        # Round-trip through JSON so tests exercise serialisability too.
        normalized = json.loads(json.dumps(body)) if body is not None else None
        request = Request(method="POST", path=path, body=normalized)
        return self._router.dispatch(request)

    def delete(self, path: str) -> HttpResponse:
        request = Request(method="DELETE", path=path)
        return self._router.dispatch(request)


class HttpClient:
    """A tiny JSON HTTP client for a live server."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: Any = None) -> HttpResponse:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        http_request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(http_request, timeout=self.timeout) as raw:
                payload = json.loads(raw.read().decode("utf-8"))
                return HttpResponse(raw.status, payload)
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read().decode("utf-8"))
            return HttpResponse(error.code, payload)

    def get(self, path: str) -> HttpResponse:
        return self._request("GET", path)

    def post(self, path: str, body: Any = None) -> HttpResponse:
        return self._request("POST", path, body)

    def delete(self, path: str) -> HttpResponse:
        return self._request("DELETE", path)
