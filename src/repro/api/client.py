"""Clients for the CREDENCE API.

:class:`InProcessClient` dispatches through a :class:`Router` without a
socket — the integration-test workhorse. :class:`HttpClient` speaks real
HTTP (urllib) to a running :class:`~repro.api.http.ApiServer`.

Both understand the serving-hardening surface: request headers
(``X-Client-Id``), the NDJSON streaming route (:meth:`post_stream`),
and — for :class:`HttpClient` — a :class:`RetryPolicy` that backs off
with jitter on 429/503 responses and connection failures, honouring the
server's ``Retry-After`` header. Retries default to **idempotent
methods only** (GET/DELETE): a timed-out POST may have executed, and
replaying it is the caller's decision (``retry_non_idempotent=True``),
not the transport's.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.api.http import HttpResponse, Request, Router, StreamingResponse

#: Methods safe to replay without the caller opting in.
IDEMPOTENT_METHODS = frozenset({"GET", "DELETE"})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter.

    ``max_attempts`` counts every try including the first; the delay
    before retry *n* is ``rng() * min(max_delay, base * 2**n)`` unless
    the server sent ``Retry-After``, which wins (capped at
    ``max_delay_seconds`` — the server's estimate is honest, but the
    client's patience is bounded).
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.1
    max_delay_seconds: float = 5.0
    retry_statuses: frozenset = frozenset({429, 503})
    retry_non_idempotent: bool = False

    def retries(self, method: str) -> bool:
        return (
            self.max_attempts > 1
            and (
                method.upper() in IDEMPOTENT_METHODS
                or self.retry_non_idempotent
            )
        )

    def delay_seconds(
        self,
        attempt: int,
        retry_after: float | None = None,
        rng: Callable[[], float] = random.random,
    ) -> float:
        if retry_after is not None:
            return min(self.max_delay_seconds, max(0.0, retry_after))
        ceiling = min(
            self.max_delay_seconds, self.base_delay_seconds * (2**attempt)
        )
        return rng() * ceiling


#: The policy :class:`HttpClient` uses when none is given.
DEFAULT_RETRY_POLICY = RetryPolicy()


def _retry_after_seconds(response: HttpResponse) -> float | None:
    raw = response.headers.get("retry-after") or response.headers.get(
        "Retry-After"
    )
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


class InProcessClient:
    """Calls a router directly, bypassing the network stack."""

    def __init__(self, router: Router):
        self._router = router

    def get(
        self,
        path: str,
        query_params: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        request = Request(
            method="GET",
            path=path,
            query_params=dict(query_params or {}),
            headers=dict(headers or {}),
        )
        return self._router.dispatch(request)

    def post(
        self,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        # Round-trip through JSON so tests exercise serialisability too.
        normalized = json.loads(json.dumps(body)) if body is not None else None
        request = Request(
            method="POST",
            path=path,
            body=normalized,
            headers=dict(headers or {}),
        )
        return self._router.dispatch(request)

    def delete(
        self, path: str, headers: dict[str, str] | None = None
    ) -> HttpResponse:
        request = Request(
            method="DELETE", path=path, headers=dict(headers or {})
        )
        return self._router.dispatch(request)

    def post_stream(
        self,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> Iterator[dict]:
        """POST to a streaming route; yields chunk dicts as produced.

        A refusal before the stream starts (429/503/400) is yielded as a
        single ``{"event": "rejected", "status": ..., ...}`` chunk so
        callers consume one shape either way.
        """
        normalized = json.loads(json.dumps(body)) if body is not None else None
        request = Request(
            method="POST",
            path=path,
            body=normalized,
            headers=dict(headers or {}),
        )
        response = self._router.dispatch(request)
        if isinstance(response, StreamingResponse):
            yield from response.chunks
            return
        yield {
            "event": "rejected",
            "status": response.status,
            "headers": dict(response.headers),
            **(response.payload if isinstance(response.payload, dict) else {}),
        }


class HttpClient:
    """A tiny JSON HTTP client for a live server, with bounded retries.

    ``transport``, ``sleep`` and ``rng`` are injectable so the retry
    loop is deterministic under test; the default transport is urllib.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
        transport: Callable[..., HttpResponse] | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._sleep = sleep
        self._rng = rng
        self._transport = transport if transport is not None else self._send

    def _send(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        """One HTTP exchange; 4xx/5xx come back as responses, transport
        failures raise (``URLError``/``OSError``)."""
        url = f"{self.base_url}{path}"
        data = None
        request_headers = {"Accept": "application/json", **(headers or {})}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        http_request = urllib.request.Request(
            url, data=data, headers=request_headers, method=method
        )
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as raw:
                text = raw.read().decode("utf-8")
                content_type = raw.headers.get("Content-Type", "")
                # Non-JSON bodies (Prometheus exposition) come back as
                # the raw string payload.
                payload = (
                    json.loads(text)
                    if content_type.startswith("application/json")
                    else text
                )
                return HttpResponse(
                    raw.status,
                    payload,
                    headers={k.lower(): v for k, v in raw.headers.items()},
                )
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read().decode("utf-8"))
            return HttpResponse(
                error.code,
                payload,
                headers={k.lower(): v for k, v in error.headers.items()},
            )

    def _request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        retryable = self.retry.retries(method)
        attempts = self.retry.max_attempts if retryable else 1
        last_error: Exception | None = None
        response: HttpResponse | None = None
        for attempt in range(attempts):
            try:
                response = self._transport(method, path, body, headers)
                last_error = None
            except (urllib.error.URLError, ConnectionError, OSError) as error:
                # Connection-level failure: nothing reached the server
                # (or the reply was lost) — retryable for idempotent
                # methods only.
                last_error = error
                response = None
            if (
                response is not None
                and response.status not in self.retry.retry_statuses
            ):
                return response
            if attempt + 1 >= attempts:
                break
            retry_after = (
                _retry_after_seconds(response) if response is not None else None
            )
            self._sleep(
                self.retry.delay_seconds(attempt, retry_after, self._rng)
            )
        if response is not None:
            return response
        assert last_error is not None
        raise last_error

    def get(
        self, path: str, headers: dict[str, str] | None = None
    ) -> HttpResponse:
        return self._request("GET", path, headers=headers)

    def post(
        self,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        return self._request("POST", path, body, headers=headers)

    def delete(
        self, path: str, headers: dict[str, str] | None = None
    ) -> HttpResponse:
        return self._request("DELETE", path, headers=headers)

    def post_stream(
        self,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> Iterator[dict]:
        """POST to a streaming route; yields NDJSON chunks as they
        arrive (urllib decodes the chunked framing; lines arrive as the
        server flushes them). Never retried — a stream is not idempotent
        once partially consumed. A pre-stream refusal is yielded as one
        ``{"event": "rejected", ...}`` chunk.
        """
        url = f"{self.base_url}{path}"
        data = None
        request_headers = {"Accept": "application/x-ndjson", **(headers or {})}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        http_request = urllib.request.Request(
            url, data=data, headers=request_headers, method="POST"
        )
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as raw:
                for line in raw:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read().decode("utf-8"))
            yield {
                "event": "rejected",
                "status": error.code,
                "headers": {k.lower(): v for k, v in error.headers.items()},
                **(payload if isinstance(payload, dict) else {}),
            }
