"""Application wiring: engine → router → server."""

from __future__ import annotations

from repro.api.endpoints import register_endpoints
from repro.api.http import ApiServer, Router
from repro.core.engine import CredenceEngine


def build_router(engine: CredenceEngine) -> Router:
    """A router with all CREDENCE endpoints bound to ``engine``."""
    return register_endpoints(Router(), engine)


def serve(
    engine: CredenceEngine, host: str = "127.0.0.1", port: int = 8091
) -> ApiServer:
    """Start the CREDENCE service (non-blocking); returns the server.

    Port 8091 mirrors the paper's deployment URL. Call ``.stop()`` when
    done, or use the returned server as a context manager.
    """
    return ApiServer(build_router(engine), host=host, port=port).start()
