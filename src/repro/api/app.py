"""Application wiring: engine → service → router → server."""

from __future__ import annotations

from repro.api.endpoints import register_endpoints
from repro.api.http import MAX_BODY_BYTES, ApiServer, Router
from repro.core.engine import CredenceEngine


def build_router(
    engine: CredenceEngine,
    max_batch_items: int | None = None,
    max_ingest_items: int | None = None,
) -> Router:
    """A router with all CREDENCE endpoints bound to ``engine``.

    Uses the engine's memoised explanation service, so sync routes are
    store-backed and ``/jobs`` traffic shares one worker pool.
    """
    return register_endpoints(
        Router(),
        engine,
        max_batch_items=max_batch_items,
        max_ingest_items=max_ingest_items,
    )


def serve(
    engine: CredenceEngine,
    host: str = "127.0.0.1",
    port: int = 8091,
    workers: int | None = None,
    max_batch_items: int | None = None,
    max_ingest_items: int | None = None,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> ApiServer:
    """Start the CREDENCE service (non-blocking); returns the server.

    Port 8091 mirrors the paper's deployment URL. ``workers`` sizes the
    explanation worker pool (first construction wins; see
    :meth:`CredenceEngine.service`); ``max_batch_items`` /
    ``max_ingest_items`` and ``max_body_bytes`` bound batch/job/ingest
    payloads. Call ``.stop()`` when done, or use the returned server as
    a context manager.
    """
    engine.service(workers=workers)
    router = build_router(
        engine,
        max_batch_items=max_batch_items,
        max_ingest_items=max_ingest_items,
    )
    return ApiServer(
        router, host=host, port=port, max_body_bytes=max_body_bytes
    ).start()
