"""Application wiring: engine → service → router → server."""

from __future__ import annotations

from repro.api.endpoints import register_endpoints
from repro.api.http import MAX_BODY_BYTES, ApiServer, Router
from repro.core.engine import CredenceEngine
from repro.obs import DEFAULT_RING_CAPACITY, Tracer


def build_router(
    engine: CredenceEngine,
    max_batch_items: int | None = None,
    max_ingest_items: int | None = None,
    tracer: Tracer | None = None,
) -> Router:
    """A router with all CREDENCE endpoints bound to ``engine``.

    Uses the engine's memoised explanation service, so sync routes are
    store-backed and ``/jobs`` traffic shares one worker pool. A default
    :class:`~repro.obs.Tracer` is attached (tracing is on unless a
    disabled tracer is passed): every response carries ``X-Request-Id``
    and the trace ring backs ``GET /debug/traces``.
    """
    if tracer is None:
        tracer = Tracer()
    return register_endpoints(
        Router(tracer=tracer),
        engine,
        max_batch_items=max_batch_items,
        max_ingest_items=max_ingest_items,
    )


def serve(
    engine: CredenceEngine,
    host: str = "127.0.0.1",
    port: int = 8091,
    workers: int | None = None,
    max_batch_items: int | None = None,
    max_ingest_items: int | None = None,
    max_body_bytes: int = MAX_BODY_BYTES,
    rate_limit: float | None = None,
    rate_burst: float | None = None,
    max_queue_depth: int | None = None,
    default_deadline_ms: float | None = None,
    tracing: bool = True,
    trace_ring: int = DEFAULT_RING_CAPACITY,
    trace_jsonl: str | None = None,
    slow_request_ms: float | None = None,
    executor: str = "thread",
) -> ApiServer:
    """Start the CREDENCE service (non-blocking); returns the server.

    Port 8091 mirrors the paper's deployment URL. ``workers`` sizes the
    explanation worker pool (first construction wins; see
    :meth:`CredenceEngine.service`); ``executor`` picks the execution
    tier for computed items — ``"thread"`` (default) or ``"process"``,
    which dispatches compute to worker processes sharing the v3 packed
    index via mmap (see
    :meth:`~repro.service.scheduler.ExplanationService.configure_executor`;
    the ``GET /metrics`` ``executor`` block reports the active tier).
    ``max_batch_items`` /
    ``max_ingest_items`` and ``max_body_bytes`` bound batch/job/ingest
    payloads. ``rate_limit`` (requests/s per client, burst
    ``rate_burst``), ``max_queue_depth`` (shed-before-queue bound) and
    ``default_deadline_ms`` (per-request wall-clock deadline, stamped at
    admission) arm the overload tier — any of the first three also arms
    a circuit breaker (see
    :meth:`~repro.service.scheduler.ExplanationService.configure_admission`).

    ``tracing`` toggles request tracing (on by default; ``False`` keeps
    every instrumentation point on its no-op path), ``trace_ring`` sizes
    the ``GET /debug/traces`` retention, ``trace_jsonl`` appends every
    finished trace to a JSONL file, and ``slow_request_ms`` arms the
    slow-request log (warning + the ``?slow=1`` ring).

    Call ``.stop()`` when done, or use the returned server as a context
    manager.
    """
    engine.service(workers=workers).configure_executor(
        executor, workers=workers
    ).configure_admission(
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        max_queue_depth=max_queue_depth,
        default_deadline_ms=default_deadline_ms,
    )
    tracer = Tracer(
        enabled=tracing,
        ring_capacity=trace_ring,
        jsonl_path=trace_jsonl,
        slow_threshold_ms=slow_request_ms,
    )
    router = build_router(
        engine,
        max_batch_items=max_batch_items,
        max_ingest_items=max_ingest_items,
        tracer=tracer,
    )
    return ApiServer(
        router, host=host, port=port, max_body_bytes=max_body_bytes
    ).start()
