"""REST endpoints: the CREDENCE service surface (Fig. 1).

Binds a :class:`~repro.core.engine.CredenceEngine` to the routes the demo
UI calls:

====================================  =======================================
``GET  /health``                      liveness + corpus stats
``GET  /documents/{doc_id}``          fetch a document body for display
``POST /rank``                        the Explanations/Builder rank button
``POST /explanations/document``       sentence-removal counterfactuals
``POST /explanations/query``          query-augmentation counterfactuals
``POST /explanations/instance``       Doc2Vec Nearest / Cosine Sampled
``POST /builder/rerank``              build-your-own re-rank + movements
``POST /topics``                      Browse Topics over the current top-k
====================================  =======================================
"""

from __future__ import annotations

from repro.api.http import Request, Router
from repro.api.schemas import (
    BuilderRequest,
    DocumentExplanationRequest,
    InstanceExplanationRequest,
    QueryExplanationRequest,
    RankRequest,
    TopicsRequest,
)
from repro.core.engine import CredenceEngine
from repro.errors import (
    BadRequestError,
    DocumentNotFoundError,
    NotFoundError,
    RankingError,
)


def register_endpoints(router: Router, engine: CredenceEngine) -> Router:
    """Attach every CREDENCE endpoint for ``engine`` to ``router``."""

    @router.get("/health")
    def health(_: Request):
        stats = engine.index.stats()
        return {
            "status": "ok",
            "ranker": engine.ranker.name,
            "documents": stats.document_count,
            "unique_terms": stats.unique_terms,
        }

    @router.get("/documents/{doc_id}")
    def get_document(request: Request):
        doc_id = request.path_params["doc_id"]
        try:
            document = engine.document(doc_id)
        except DocumentNotFoundError:
            raise NotFoundError(f"unknown document id: {doc_id!r}") from None
        return document.to_dict()

    @router.post("/rank")
    def rank(request: Request):
        parsed = RankRequest.parse(request.body)
        ranking = engine.rank(parsed.query, parsed.k)
        return {
            "query": parsed.query,
            "k": parsed.k,
            "ranking": ranking.to_dicts(),
        }

    @router.post("/explanations/document")
    def explain_document(request: Request):
        parsed = DocumentExplanationRequest.parse(request.body)
        try:
            result = engine.explain_document(
                parsed.query, parsed.doc_id, n=parsed.n, k=parsed.k
            )
        except RankingError as error:
            raise BadRequestError(str(error)) from None
        return result.to_dict()

    @router.post("/explanations/query")
    def explain_query(request: Request):
        parsed = QueryExplanationRequest.parse(request.body)
        try:
            result = engine.explain_query(
                parsed.query,
                parsed.doc_id,
                n=parsed.n,
                k=parsed.k,
                threshold=parsed.threshold,
            )
        except RankingError as error:
            raise BadRequestError(str(error)) from None
        return result.to_dict()

    @router.post("/explanations/instance")
    def explain_instance(request: Request):
        parsed = InstanceExplanationRequest.parse(request.body)
        try:
            if parsed.method == "doc2vec_nearest":
                result = engine.explain_instance_doc2vec(
                    parsed.query, parsed.doc_id, n=parsed.n, k=parsed.k
                )
            else:
                result = engine.explain_instance_cosine(
                    parsed.query,
                    parsed.doc_id,
                    n=parsed.n,
                    k=parsed.k,
                    samples=parsed.samples,
                )
        except RankingError as error:
            raise BadRequestError(str(error)) from None
        payload = result.to_dict()
        # Attach the counterfactual bodies the UI renders beneath the prompt.
        for explanation in payload["explanations"]:
            document = engine.document(explanation["counterfactual_doc_id"])
            explanation["counterfactual_body"] = document.body
        return payload

    @router.post("/builder/rerank")
    def builder_rerank(request: Request):
        parsed = BuilderRequest.parse(request.body)
        try:
            result = engine.build_counterfactual(
                parsed.query,
                parsed.doc_id,
                perturbations=(
                    list(parsed.perturbations)
                    if parsed.perturbations is not None
                    else None
                ),
                edited_body=parsed.edited_body,
                k=parsed.k,
            )
        except (RankingError, DocumentNotFoundError) as error:
            raise BadRequestError(str(error)) from None
        return result.to_dict()

    @router.post("/topics")
    def topics(request: Request):
        parsed = TopicsRequest.parse(request.body)
        summary = engine.topics(
            parsed.query,
            k=parsed.k,
            num_topics=parsed.num_topics,
            terms_per_topic=parsed.terms_per_topic,
        )
        return {"query": parsed.query, "topics": summary.to_dicts()}

    return router
