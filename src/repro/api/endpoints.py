"""REST endpoints: the CREDENCE service surface (Fig. 1).

Binds a :class:`~repro.core.engine.CredenceEngine` to the routes the demo
UI calls. Explanation traffic goes through one generic route carrying
the strategy name in the body; the pre-redesign per-family routes remain
as thin delegations for older clients.

====================================  =======================================
``GET  /health``                      liveness + corpus stats
``GET  /strategies``                  explanation-strategy introspection
``GET  /documents/{doc_id}``          fetch a document body for display
``POST /rank``                        the Explanations/Builder rank button
``POST /explanations``                any explanation strategy (unified)
``POST /explanations/batch``          many requests, per-item results
``POST /explanations/document``       legacy: sentence-removal CFs
``POST /explanations/query``          legacy: query-augmentation CFs
``POST /explanations/instance``       legacy: Doc2Vec Nearest / Cosine Sampled
``POST /builder/rerank``              build-your-own re-rank + movements
``POST /topics``                      Browse Topics over the current top-k
====================================  =======================================
"""

from __future__ import annotations

from repro.api.http import Request, Router
from repro.api.schemas import (
    BuilderRequest,
    DocumentExplanationRequest,
    InstanceExplanationRequest,
    QueryExplanationRequest,
    RankRequest,
    TopicsRequest,
    parse_explain_batch,
    parse_explain_request,
)
from repro.core.engine import CredenceEngine
from repro.core.explain import ExplainRequest, ExplainResponse
from repro.errors import (
    BadRequestError,
    ConfigurationError,
    DocumentNotFoundError,
    NotFoundError,
    RankingError,
)


def _run_explain(engine: CredenceEngine, request: ExplainRequest) -> ExplainResponse:
    """Dispatch one request, mapping library errors to HTTP 400.

    ``ConfigurationError`` covers unknown/unavailable strategies and
    invalid parameter combinations; ``RankingError`` covers instance
    documents outside the top-k.
    """
    try:
        return engine.explain(request)
    except (RankingError, ConfigurationError) as error:
        raise BadRequestError(str(error)) from None


def _attach_instance_bodies(engine: CredenceEngine, payload: dict) -> dict:
    """Attach the counterfactual bodies the UI renders beneath the prompt."""
    for explanation in payload.get("explanations", []):
        if "counterfactual_doc_id" in explanation:
            document = engine.document(explanation["counterfactual_doc_id"])
            explanation["counterfactual_body"] = document.body
    return payload


def register_endpoints(router: Router, engine: CredenceEngine) -> Router:
    """Attach every CREDENCE endpoint for ``engine`` to ``router``."""

    @router.get("/health")
    def health(_: Request):
        stats = engine.index.stats()
        return {
            "status": "ok",
            "ranker": engine.ranker.name,
            "documents": stats.document_count,
            "unique_terms": stats.unique_terms,
            "strategies": list(engine.available_strategies()),
        }

    @router.get("/strategies")
    def strategies(_: Request):
        return {"strategies": engine.registry.describe(engine)}

    @router.get("/documents/{doc_id}")
    def get_document(request: Request):
        doc_id = request.path_params["doc_id"]
        try:
            document = engine.document(doc_id)
        except DocumentNotFoundError:
            raise NotFoundError(f"unknown document id: {doc_id!r}") from None
        return document.to_dict()

    @router.post("/rank")
    def rank(request: Request):
        parsed = RankRequest.parse(request.body)
        ranking = engine.rank(parsed.query, parsed.k)
        return {
            "query": parsed.query,
            "k": parsed.k,
            "ranking": ranking.to_dicts(),
        }

    # -- unified explanation surface ------------------------------------------

    @router.post("/explanations")
    def explain(request: Request):
        parsed = parse_explain_request(request.body)
        response = _run_explain(engine, parsed)
        return _attach_instance_bodies(engine, response.to_dict())

    @router.post("/explanations/batch")
    def explain_batch(request: Request):
        parsed = parse_explain_batch(request.body)
        responses = engine.explain_batch(parsed)
        return {
            "count": len(responses),
            "responses": [
                _attach_instance_bodies(engine, response.to_dict())
                if response.ok
                else response.to_dict()
                for response in responses
            ],
        }

    # -- legacy per-family routes (thin delegations) ---------------------------

    @router.post("/explanations/document")
    def explain_document(request: Request):
        parsed = DocumentExplanationRequest.parse(request.body)
        response = _run_explain(
            engine,
            ExplainRequest(
                parsed.query,
                parsed.doc_id,
                strategy="document/sentence-removal",
                n=parsed.n,
                k=parsed.k,
            ),
        )
        return response.result.to_dict()

    @router.post("/explanations/query")
    def explain_query(request: Request):
        parsed = QueryExplanationRequest.parse(request.body)
        response = _run_explain(
            engine,
            ExplainRequest(
                parsed.query,
                parsed.doc_id,
                strategy="query/augmentation",
                n=parsed.n,
                k=parsed.k,
                threshold=parsed.threshold,
            ),
        )
        return response.result.to_dict()

    @router.post("/explanations/instance")
    def explain_instance(request: Request):
        parsed = InstanceExplanationRequest.parse(request.body)
        response = _run_explain(
            engine,
            ExplainRequest(
                parsed.query,
                parsed.doc_id,
                strategy=parsed.method,  # legacy alias, resolved by registry
                n=parsed.n,
                k=parsed.k,
                samples=parsed.samples,
            ),
        )
        return _attach_instance_bodies(engine, response.result.to_dict())

    @router.post("/builder/rerank")
    def builder_rerank(request: Request):
        parsed = BuilderRequest.parse(request.body)
        try:
            result = engine.build_counterfactual(
                parsed.query,
                parsed.doc_id,
                perturbations=(
                    list(parsed.perturbations)
                    if parsed.perturbations is not None
                    else None
                ),
                edited_body=parsed.edited_body,
                k=parsed.k,
            )
        except (RankingError, DocumentNotFoundError) as error:
            raise BadRequestError(str(error)) from None
        return result.to_dict()

    @router.post("/topics")
    def topics(request: Request):
        parsed = TopicsRequest.parse(request.body)
        summary = engine.topics(
            parsed.query,
            k=parsed.k,
            num_topics=parsed.num_topics,
            terms_per_topic=parsed.terms_per_topic,
        )
        return {"query": parsed.query, "topics": summary.to_dicts()}

    return router
