"""REST endpoints: the CREDENCE service surface (Fig. 1).

Binds a :class:`~repro.core.engine.CredenceEngine` to the routes the demo
UI calls. Explanation traffic goes through one generic route carrying
the strategy name in the body; the pre-redesign per-family routes remain
as thin delegations for older clients.

====================================  =======================================
``GET  /health``                      liveness + corpus stats
``GET  /strategies``                  explanation-strategy introspection
``GET  /index``                       corpus layout (shards, router, storage)
``POST /index/save``                  persist the corpus index to disk
``POST /index/documents``             bulk-ingest documents (parallel shards)
``DELETE /index/documents/{doc_id}``  remove a document from the corpus
``GET  /documents/{doc_id}``          fetch a document body for display
``POST /rank``                        the Explanations/Builder rank button
``POST /explanations``                any explanation strategy (unified)
``POST /explanations/stream``         NDJSON: live progress, then the result
``POST /explanations/batch``          many requests, per-item results
``POST /jobs``                        submit an async explanation job (202)
``GET  /jobs/{job_id}``               job status, progress, and results
``GET  /jobs/{job_id}/progress``      live per-item search progress
``DELETE /jobs/{job_id}``             cancel a running job
``GET  /metrics``                     service counters, cache, latency
``GET  /debug/traces``                recent request traces (ring buffer)
``GET  /debug/traces/{request_id}``   one trace, every span, rendered live
``POST /explanations/document``       legacy: sentence-removal CFs
``POST /explanations/query``          legacy: query-augmentation CFs
``POST /explanations/instance``       legacy: Doc2Vec Nearest / Cosine Sampled
``POST /builder/rerank``              build-your-own re-rank + movements
``POST /topics``                      Browse Topics over the current top-k
====================================  =======================================

Synchronous explanation traffic runs through the engine's
:class:`~repro.service.scheduler.ExplanationService`, so repeated
queries are answered from the version-keyed result store, and the batch
route fans out across the service's worker pool. ``POST /jobs`` returns
immediately with a job id; poll ``GET /jobs/{id}`` for per-item
progress.

Every explanation route runs admission first (see
:mod:`repro.service.admission`): a refusal is a typed 429
(rate-limited / load-shed) or 503 (breaker open / draining) carrying a
``Retry-After`` header, *before* any work is queued. Clients may send
an ``X-Client-Id`` header for per-client rate limiting (anonymous
traffic shares one bucket) and a top-level ``"priority"`` body field
(``"interactive"`` | ``"batch"``) on the batch/jobs routes.

Observability (see :mod:`repro.obs`): with a tracer attached to the
router, every response carries ``X-Request-Id`` (echoed from the
request header, generated otherwise), ``GET /metrics`` answers
``?format=prometheus`` with exposition text, ``GET /debug/traces``
serves the trace ring, and ``POST /explanations`` accepts a top-level
``"profile": true`` returning a per-stage ``debug`` block.
"""

from __future__ import annotations

import threading

from repro.api.http import (
    HttpResponse,
    Request,
    Router,
    StreamingResponse,
    TextResponse,
)
from repro.api.schemas import (
    BuilderRequest,
    DocumentExplanationRequest,
    InstanceExplanationRequest,
    QueryExplanationRequest,
    RankRequest,
    TopicsRequest,
    parse_explain_batch,
    parse_explain_request,
    parse_index_ingest,
    parse_index_save,
    parse_job_submission,
    parse_profile_flag,
    parse_request_priority,
)
from repro.core.engine import CredenceEngine
from repro.core.explain import ExplainRequest, ExplainResponse
from repro.core.search.progress import ProgressSink, search_progress
from repro.errors import (
    AdmissionError,
    BadRequestError,
    ConfigurationError,
    DocumentNotFoundError,
    IndexFormatError,
    JobNotFoundError,
    NotFoundError,
    PoolShutdownError,
    QueueFullError,
    RankingError,
    RateLimitedError,
    ReadOnlyIndexError,
    ServiceUnavailableError,
    TooManyRequestsError,
)
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    activate_context,
    capture_context,
    current_trace,
    profile_block,
    render_prometheus,
)
from repro.service.admission import Priority
from repro.service.scheduler import ExplanationService

#: How often the streaming route polls the search's progress sink.
STREAM_POLL_SECONDS = 0.025


def _admission_to_http(error: AdmissionError) -> Exception:
    """The REST mapping of a typed admission refusal.

    Rate-limit and shed refusals are the client's to pace (429);
    breaker-open and draining mean the *server* cannot take work (503).
    Both carry ``Retry-After``.
    """
    cls = (
        TooManyRequestsError
        if isinstance(error, (RateLimitedError, QueueFullError))
        else ServiceUnavailableError
    )
    return cls(str(error), retry_after_seconds=error.retry_after_seconds)


def _run_explain(
    service: ExplanationService,
    request: ExplainRequest,
    priority: Priority = Priority.INTERACTIVE,
) -> ExplainResponse:
    """Dispatch one request, mapping library errors to HTTP 400.

    ``ConfigurationError`` covers unknown/unavailable strategies and
    invalid parameter combinations; ``RankingError`` covers instance
    documents outside the top-k. Runs store-backed: a repeat of an
    answered request returns the cached response.
    """
    try:
        return service.explain(request, priority=priority)
    except (PoolShutdownError, RankingError, ConfigurationError) as error:
        if isinstance(error, PoolShutdownError):
            raise ServiceUnavailableError(str(error)) from None
        raise BadRequestError(str(error)) from None


def _attach_instance_bodies(engine: CredenceEngine, payload: dict) -> dict:
    """Attach the counterfactual bodies the UI renders beneath the prompt."""
    for explanation in payload.get("explanations", []):
        if "counterfactual_doc_id" in explanation:
            document = engine.document(explanation["counterfactual_doc_id"])
            explanation["counterfactual_body"] = document.body
    return payload


def register_endpoints(
    router: Router,
    engine: CredenceEngine,
    service: ExplanationService | None = None,
    max_batch_items: int | None = None,
    max_ingest_items: int | None = None,
) -> Router:
    """Attach every CREDENCE endpoint for ``engine`` to ``router``.

    ``service`` defaults to the engine's memoised
    :meth:`~repro.core.engine.CredenceEngine.service`;
    ``max_batch_items`` caps ``POST /explanations/batch`` and
    ``POST /jobs`` item counts, ``max_ingest_items`` caps
    ``POST /index/documents`` (None keeps the schema defaults).
    """
    if service is None:
        service = engine.service()

    def _client_id(request: Request) -> str | None:
        return request.headers.get("x-client-id")

    def _admit(
        request: Request,
        priority: Priority = Priority.INTERACTIVE,
        enqueue_items: int = 0,
    ) -> None:
        """Shed-before-work: run admission for one request, mapping
        typed refusals to 429/503 (+ ``Retry-After``)."""
        try:
            service.admit(
                _client_id(request), priority, enqueue_items=enqueue_items
            )
        except AdmissionError as error:
            raise _admission_to_http(error) from None

    @router.get("/health")
    def health(_: Request):
        stats = engine.index.stats()
        return {
            "status": "ok",
            "ranker": engine.ranker.name,
            "documents": stats.document_count,
            "unique_terms": stats.unique_terms,
            "strategies": list(engine.available_strategies()),
        }

    @router.get("/strategies")
    def strategies(_: Request):
        return {"strategies": engine.registry.describe(engine)}

    @router.get("/documents/{doc_id}")
    def get_document(request: Request):
        doc_id = request.path_params["doc_id"]
        try:
            document = engine.document(doc_id)
        except DocumentNotFoundError:
            raise NotFoundError(f"unknown document id: {doc_id!r}") from None
        return document.to_dict()

    @router.post("/rank")
    def rank(request: Request):
        parsed = RankRequest.parse(request.body)
        ranking = engine.rank(parsed.query, parsed.k)
        return {
            "query": parsed.query,
            "k": parsed.k,
            "ranking": ranking.to_dicts(),
        }

    # -- index management -------------------------------------------------------

    @router.get("/index")
    def index_info(_: Request):
        return engine.index_info()

    @router.post("/index/save")
    def save_index_route(request: Request):
        path, format = parse_index_save(request.body)
        index = engine.index
        if not hasattr(index, "export_snapshot"):
            # Packed/replica views are already on disk; a rewritten copy
            # is the compact operation, not a save.
            raise BadRequestError(
                "this engine serves a read-only on-disk index; use "
                "'repro compact' to rewrite it"
            )
        from repro.index.storage import save_index

        try:
            save_index(
                index, path, format=None if format in ("v1", "v2") else "v3"
            )
        except (IndexFormatError, OSError) as error:
            raise BadRequestError(str(error)) from None
        return HttpResponse(201, {"saved_to": path, "format": format})

    @router.post("/index/documents")
    def ingest_documents(request: Request):
        documents, workers = parse_index_ingest(
            request.body, max_items=max_ingest_items
        )
        try:
            added = engine.add_documents(documents, workers=workers)
        except ReadOnlyIndexError as error:  # replica / packed view
            raise BadRequestError(str(error)) from None
        except ValueError as error:  # duplicate ids
            raise BadRequestError(str(error)) from None
        return HttpResponse(
            201, {"added": added, **engine.index_info()}
        )

    @router.delete("/index/documents/{doc_id}")
    def remove_document(request: Request):
        doc_id = request.path_params["doc_id"]
        try:
            engine.remove_document(doc_id)
        except ReadOnlyIndexError as error:  # replica / packed view
            raise BadRequestError(str(error)) from None
        except DocumentNotFoundError:
            raise NotFoundError(f"unknown document id: {doc_id!r}") from None
        return {"removed": doc_id, **engine.index_info()}

    # -- unified explanation surface ------------------------------------------

    @router.post("/explanations")
    def explain(request: Request):
        profile = parse_profile_flag(request.body)
        parsed = parse_explain_request(request.body)
        _admit(request)
        response = _run_explain(service, parsed)
        payload = _attach_instance_bodies(engine, response.to_dict())
        if profile:
            # The per-stage breakdown of *this* request's trace; when no
            # tracer is attached the block degrades to {"enabled": False}.
            payload["debug"] = profile_block(current_trace())
        return payload

    @router.post("/explanations/stream")
    def explain_stream(request: Request):
        parsed = parse_explain_request(request.body)
        _admit(request)
        # The chunk generator runs after dispatch returns (the response
        # is streamed), so hand the request's trace context to the
        # worker explicitly — spans land in the original trace.
        trace_context = capture_context()

        def chunks():
            sink = ProgressSink()
            outcome: dict = {}

            def run() -> None:
                try:
                    with activate_context(trace_context), search_progress(sink):
                        outcome["response"] = service.explain(
                            parsed, priority=Priority.INTERACTIVE
                        )
                except Exception as error:  # noqa: BLE001 - streamed below
                    outcome["error"] = error

            worker = threading.Thread(
                target=run, name="explain-stream", daemon=True
            )
            worker.start()
            seen = 0
            while worker.is_alive():
                worker.join(STREAM_POLL_SECONDS)
                if sink.updates != seen:
                    seen = sink.updates
                    snapshot = sink.snapshot()
                    if snapshot is not None:
                        yield {"event": "progress", **snapshot}
            if "error" in outcome:
                error = outcome["error"]
                yield {
                    "event": "error",
                    "error": {
                        "type": type(error).__name__,
                        "message": str(error),
                    },
                }
                return
            yield {
                "event": "result",
                "response": _attach_instance_bodies(
                    engine, outcome["response"].to_dict()
                ),
            }

        return StreamingResponse(200, chunks())

    @router.post("/explanations/batch")
    def explain_batch(request: Request):
        parsed = parse_explain_batch(request.body, max_items=max_batch_items)
        priority = parse_request_priority(
            request.body, default=Priority.INTERACTIVE
        )
        try:
            responses = service.run_batch(
                parsed, priority=priority, client_id=_client_id(request)
            )
        except AdmissionError as error:
            raise _admission_to_http(error) from None
        except PoolShutdownError as error:
            raise ServiceUnavailableError(str(error)) from None
        return {
            "count": len(responses),
            "responses": [
                _attach_instance_bodies(engine, response.to_dict())
                if response.ok
                else response.to_dict()
                for response in responses
            ],
        }

    # -- async jobs & observability --------------------------------------------

    def _job_payload(job) -> dict:
        payload = job.to_dict()
        for response in payload["responses"]:
            if response is not None and "error" not in response:
                _attach_instance_bodies(engine, response)
        return payload

    @router.post("/jobs")
    def submit_job(request: Request):
        parsed = parse_job_submission(request.body, max_items=max_batch_items)
        priority = parse_request_priority(request.body)
        try:
            job = service.submit(
                parsed, priority=priority, client_id=_client_id(request)
            )
        except AdmissionError as error:
            raise _admission_to_http(error) from None
        except PoolShutdownError as error:
            raise ServiceUnavailableError(str(error)) from None
        return HttpResponse(202, job.to_dict(include_responses=False))

    @router.get("/jobs/{job_id}")
    def job_status(request: Request):
        job_id = request.path_params["job_id"]
        try:
            job = service.job(job_id)
        except JobNotFoundError as error:
            raise NotFoundError(str(error)) from None
        return _job_payload(job)

    @router.get("/jobs/{job_id}/progress")
    def job_progress(request: Request):
        job_id = request.path_params["job_id"]
        try:
            job = service.job(job_id)
        except JobNotFoundError as error:
            raise NotFoundError(str(error)) from None
        return job.progress_dict()

    @router.delete("/jobs/{job_id}")
    def cancel_job(request: Request):
        job_id = request.path_params["job_id"]
        try:
            job = service.cancel(job_id)
        except JobNotFoundError as error:
            raise NotFoundError(str(error)) from None
        return job.to_dict(include_responses=False)

    @router.get("/metrics")
    def metrics(request: Request):
        format = request.query_params.get("format", "json")
        snapshot = service.metrics_snapshot()
        if format == "prometheus":
            return TextResponse(
                200,
                render_prometheus(snapshot),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if format != "json":
            raise BadRequestError(
                f"'format' must be 'json' or 'prometheus', got {format!r}"
            )
        return snapshot

    # -- request traces (the debug surface; see repro.obs) ---------------------

    def _tracer():
        return router.tracer

    @router.get("/debug/traces")
    def debug_traces(request: Request):
        tracer = _tracer()
        if tracer is None:
            return {"enabled": False, "count": 0, "traces": []}
        slow = request.query_params.get("slow") in ("1", "true")
        summaries = [trace.summary() for trace in tracer.traces(slow=slow)]
        payload = {
            "enabled": tracer.enabled,
            "count": len(summaries),
            "traces": summaries,
        }
        if tracer.slow_threshold_ms is not None:
            payload["slow_threshold_ms"] = tracer.slow_threshold_ms
        return payload

    @router.get("/debug/traces/{request_id}")
    def debug_trace_detail(request: Request):
        tracer = _tracer()
        request_id = request.path_params["request_id"]
        trace = None if tracer is None else tracer.trace_for(request_id)
        if trace is None:
            raise NotFoundError(f"no retained trace for {request_id!r}")
        return trace.to_dict()

    # -- legacy per-family routes (thin delegations) ---------------------------

    @router.post("/explanations/document")
    def explain_document(request: Request):
        parsed = DocumentExplanationRequest.parse(request.body)
        _admit(request)
        response = _run_explain(
            service,
            ExplainRequest(
                parsed.query,
                parsed.doc_id,
                strategy="document/sentence-removal",
                n=parsed.n,
                k=parsed.k,
            ),
        )
        return response.result.to_dict()

    @router.post("/explanations/query")
    def explain_query(request: Request):
        parsed = QueryExplanationRequest.parse(request.body)
        _admit(request)
        response = _run_explain(
            service,
            ExplainRequest(
                parsed.query,
                parsed.doc_id,
                strategy="query/augmentation",
                n=parsed.n,
                k=parsed.k,
                threshold=parsed.threshold,
            ),
        )
        return response.result.to_dict()

    @router.post("/explanations/instance")
    def explain_instance(request: Request):
        parsed = InstanceExplanationRequest.parse(request.body)
        _admit(request)
        response = _run_explain(
            service,
            ExplainRequest(
                parsed.query,
                parsed.doc_id,
                strategy=parsed.method,  # legacy alias, resolved by registry
                n=parsed.n,
                k=parsed.k,
                samples=parsed.samples,
            ),
        )
        return _attach_instance_bodies(engine, response.result.to_dict())

    @router.post("/builder/rerank")
    def builder_rerank(request: Request):
        parsed = BuilderRequest.parse(request.body)
        try:
            result = engine.build_counterfactual(
                parsed.query,
                parsed.doc_id,
                perturbations=(
                    list(parsed.perturbations)
                    if parsed.perturbations is not None
                    else None
                ),
                edited_body=parsed.edited_body,
                k=parsed.k,
            )
        except (RankingError, DocumentNotFoundError) as error:
            raise BadRequestError(str(error)) from None
        return result.to_dict()

    @router.post("/topics")
    def topics(request: Request):
        parsed = TopicsRequest.parse(request.body)
        summary = engine.topics(
            parsed.query,
            k=parsed.k,
            num_topics=parsed.num_topics,
            terms_per_topic=parsed.terms_per_topic,
        )
        return {"query": parsed.query, "topics": summary.to_dicts()}

    return router
