"""Request validation and perturbation (de)serialisation for the API.

Manual, explicit validation (the FastAPI/pydantic role): every endpoint
parses its body through one of these helpers, which raise
:class:`repro.errors.BadRequestError` with a field-specific message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.explain import DEFAULT_STRATEGY, ExplainRequest
from repro.core.search import DEFAULT_BEAM_WIDTH, SEARCH_STRATEGIES
from repro.core.perturbations import (
    AppendText,
    Perturbation,
    RemoveSentences,
    RemoveTerm,
    ReplaceTerm,
)
from repro.errors import BadRequestError, ConfigurationError
from repro.service.admission import Priority, parse_priority


def _require_mapping(body: Any) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise BadRequestError("request body must be a JSON object")
    return body


def _string_field(body: Mapping[str, Any], name: str) -> str:
    value = body.get(name)
    if not isinstance(value, str) or not value.strip():
        raise BadRequestError(f"{name!r} must be a non-empty string")
    return value


def _int_field(
    body: Mapping[str, Any],
    name: str,
    default: int | None = None,
    minimum: int = 1,
    maximum: int | None = None,
) -> int:
    value = body.get(name, default)
    if value is None:
        raise BadRequestError(f"{name!r} is required")
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"{name!r} must be an integer")
    if value < minimum:
        raise BadRequestError(f"{name!r} must be ≥ {minimum}")
    if maximum is not None and value > maximum:
        raise BadRequestError(f"{name!r} must be ≤ {maximum}")
    return value


def _optional_int_field(
    body: Mapping[str, Any],
    name: str,
    minimum: int = 1,
    maximum: int | None = None,
) -> int | None:
    """An integer field whose absence (or JSON null) means "no value"."""
    if body.get(name) is None:
        return None
    return _int_field(body, name, minimum=minimum, maximum=maximum)


def _optional_number_field(
    body: Mapping[str, Any], name: str, maximum: float | None = None
) -> float | None:
    """A positive int-or-float field; absent/null means "no value"."""
    value = body.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"{name!r} must be a number")
    if value <= 0:
        raise BadRequestError(f"{name!r} must be positive")
    if maximum is not None and value > maximum:
        raise BadRequestError(f"{name!r} must be ≤ {maximum:g}")
    return float(value)


#: Per-request ceilings on the search-kernel options. Explainers keep a
#: 2000-evaluation default; a request may raise it, but never beyond
#: these bounds — one HTTP request must not pin a worker indefinitely.
MAX_REQUEST_BUDGET = 1_000_000
MAX_REQUEST_DEADLINE_MS = 60_000.0


@dataclass(frozen=True)
class RankRequest:
    query: str
    k: int

    @classmethod
    def parse(cls, body: Any) -> "RankRequest":
        data = _require_mapping(body)
        return cls(query=_string_field(data, "query"), k=_int_field(data, "k", 10))


@dataclass(frozen=True)
class DocumentExplanationRequest:
    query: str
    doc_id: str
    n: int
    k: int

    @classmethod
    def parse(cls, body: Any) -> "DocumentExplanationRequest":
        data = _require_mapping(body)
        return cls(
            query=_string_field(data, "query"),
            doc_id=_string_field(data, "doc_id"),
            n=_int_field(data, "n", 1, maximum=100),
            k=_int_field(data, "k", 10),
        )


@dataclass(frozen=True)
class QueryExplanationRequest:
    query: str
    doc_id: str
    n: int
    k: int
    threshold: int

    @classmethod
    def parse(cls, body: Any) -> "QueryExplanationRequest":
        data = _require_mapping(body)
        request = cls(
            query=_string_field(data, "query"),
            doc_id=_string_field(data, "doc_id"),
            n=_int_field(data, "n", 1, maximum=100),
            k=_int_field(data, "k", 10),
            threshold=_int_field(data, "threshold", 1),
        )
        if request.threshold > request.k:
            raise BadRequestError("'threshold' must be within the top-k")
        return request


def parse_explain_request(body: Any) -> ExplainRequest:
    """Parse the generic ``POST /explanations`` body into an
    :class:`~repro.core.explain.ExplainRequest`.

    The strategy name is validated later against the engine's registry
    (so plug-in strategies work without touching this module); this
    parser only enforces field shapes. The *search* strategy, by
    contrast, is a closed set — unknown names are rejected here with a
    clean 400. Unknown fields are rejected so a typo'd or legacy-shaped
    body (e.g. ``method``) cannot silently fall back to the default
    strategy.
    """
    data = _require_mapping(body)
    known = {
        "query", "doc_id", "strategy", "n", "k", "threshold", "samples",
        "search", "beam_width", "budget", "deadline_ms", "extra", "profile",
    }
    unknown = set(data) - known
    if unknown:
        raise BadRequestError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    strategy = data.get("strategy", DEFAULT_STRATEGY)
    if not isinstance(strategy, str) or not strategy.strip():
        raise BadRequestError("'strategy' must be a non-empty string")
    search = data.get("search")
    if search is not None and search not in SEARCH_STRATEGIES:
        raise BadRequestError(
            f"'search' must be one of {SEARCH_STRATEGIES}, got {search!r}"
        )
    extra = data.get("extra", {})
    if not isinstance(extra, Mapping):
        raise BadRequestError("'extra' must be a JSON object")
    return ExplainRequest(
        query=_string_field(data, "query"),
        doc_id=_string_field(data, "doc_id"),
        strategy=strategy,
        n=_int_field(data, "n", 1, maximum=100),
        k=_int_field(data, "k", 10),
        threshold=_int_field(data, "threshold", 1),
        samples=_int_field(data, "samples", 50),
        search=search,
        beam_width=_int_field(data, "beam_width", DEFAULT_BEAM_WIDTH, maximum=64),
        budget=_optional_int_field(data, "budget", maximum=MAX_REQUEST_BUDGET),
        deadline_ms=_optional_number_field(
            data, "deadline_ms", maximum=MAX_REQUEST_DEADLINE_MS
        ),
        extra=dict(extra),
    )


#: Default cap on how many items one ``POST /explanations/batch`` or
#: ``POST /jobs`` may carry; override per deployment via the
#: ``max_batch_items`` parameter of :func:`repro.api.app.serve` /
#: :func:`repro.api.endpoints.register_endpoints`.
MAX_BATCH_ITEMS = 100


def parse_explain_batch(
    body: Any, max_items: int | None = None
) -> list[ExplainRequest]:
    """Parse ``POST /explanations/batch``: ``{"requests": [...]}``.

    ``max_items`` overrides the module default cap; oversized batches
    are a clean 400, not unbounded work.
    """
    cap = MAX_BATCH_ITEMS if max_items is None else max_items
    data = _require_mapping(body)
    raw = data.get("requests")
    if not isinstance(raw, list) or not raw:
        raise BadRequestError("'requests' must be a non-empty list")
    if len(raw) > cap:
        raise BadRequestError(f"'requests' must carry <= {cap} items")
    return [parse_explain_request(item) for item in raw]


def parse_job_submission(
    body: Any, max_items: int | None = None
) -> list[ExplainRequest]:
    """Parse ``POST /jobs``.

    Accepts either the batch shape ``{"requests": [...]}`` or a single
    request object ``{"request": {...}}``; the same item cap applies.
    """
    data = _require_mapping(body)
    if "request" in data and "requests" in data:
        raise BadRequestError(
            "provide exactly one of 'request' or 'requests'"
        )
    if "request" in data:
        return [parse_explain_request(data["request"])]
    return parse_explain_batch(body, max_items=max_items)


def parse_profile_flag(body: Any) -> bool:
    """Parse the optional top-level ``"profile"`` boolean.

    ``POST /explanations`` returns a per-stage ``debug`` block when set.
    The flag is presentation-only — it never reaches the
    :class:`~repro.core.explain.ExplainRequest` (and so never perturbs
    the result-store key or the response itself).
    """
    data = _require_mapping(body)
    raw = data.get("profile", False)
    if not isinstance(raw, bool):
        raise BadRequestError("'profile' must be a boolean")
    return raw


def parse_request_priority(
    body: Any, default: Priority = Priority.BATCH
) -> Priority:
    """Parse an optional top-level ``"priority"`` field (name or int).

    ``POST /jobs`` defaults to batch (the caller is not waiting);
    ``POST /explanations/batch`` defaults to interactive (it is).
    """
    data = _require_mapping(body)
    raw = data.get("priority")
    if raw is None:
        return default
    try:
        return parse_priority(raw)
    except ConfigurationError as error:
        raise BadRequestError(str(error)) from None


#: Default cap on how many documents one ``POST /index/documents`` may
#: carry; override via ``max_ingest_items`` on
#: :func:`repro.api.endpoints.register_endpoints`.
MAX_INGEST_ITEMS = 1000

#: Ceiling on the per-request ingest worker count.
MAX_INGEST_WORKERS = 32


def parse_index_ingest(
    body: Any, max_items: int | None = None
) -> tuple[list, int | None]:
    """Parse ``POST /index/documents``: documents plus optional workers.

    Body shape: ``{"documents": [{"doc_id", "body", "title"?,
    "metadata"?}, ...], "workers"?: N}``. Returns the parsed
    :class:`~repro.index.document.Document` list and the worker count
    (None = serial). Oversized batches and malformed documents are a
    clean 400.
    """
    from repro.index.document import Document

    cap = MAX_INGEST_ITEMS if max_items is None else max_items
    data = _require_mapping(body)
    unknown = set(data) - {"documents", "workers"}
    if unknown:
        raise BadRequestError(
            f"unknown field(s): {', '.join(sorted(unknown))}"
        )
    raw = data.get("documents")
    if not isinstance(raw, list) or not raw:
        raise BadRequestError("'documents' must be a non-empty list")
    if len(raw) > cap:
        raise BadRequestError(f"'documents' must carry <= {cap} items")
    documents = []
    for position, item in enumerate(raw):
        if not isinstance(item, Mapping):
            raise BadRequestError(f"document {position} must be a JSON object")
        doc_id = item.get("doc_id")
        body_text = item.get("body")
        if not isinstance(doc_id, str) or not doc_id.strip():
            raise BadRequestError(
                f"document {position}: 'doc_id' must be a non-empty string"
            )
        if not isinstance(body_text, str) or not body_text.strip():
            raise BadRequestError(
                f"document {position}: 'body' must be a non-empty string"
            )
        documents.append(Document.from_dict(item))
    workers = _optional_int_field(data, "workers", maximum=MAX_INGEST_WORKERS)
    return documents, workers


def parse_index_save(body: Any) -> tuple[str, str]:
    """Parse ``POST /index/save``: target path plus optional format.

    Body shape: ``{"path": "...", "format"?: "v1"|"v2"|"v3"}`` (default
    ``"v3"``, the packed format).
    """
    from repro.index.storage import FORMAT_CHOICES

    data = _require_mapping(body)
    unknown = set(data) - {"path", "format"}
    if unknown:
        raise BadRequestError(
            f"unknown field(s): {', '.join(sorted(unknown))}"
        )
    path = data.get("path")
    if not isinstance(path, str) or not path.strip():
        raise BadRequestError("'path' must be a non-empty string")
    format = data.get("format", "v3")
    if format not in FORMAT_CHOICES:
        raise BadRequestError(
            f"'format' must be one of {FORMAT_CHOICES}, got {format!r}"
        )
    return path, format


#: Instance-based explanation types exposed in the UI dropdown (§III-B).
INSTANCE_METHODS = ("doc2vec_nearest", "cosine_sampled")


@dataclass(frozen=True)
class InstanceExplanationRequest:
    query: str
    doc_id: str
    n: int
    k: int
    method: str
    samples: int

    @classmethod
    def parse(cls, body: Any) -> "InstanceExplanationRequest":
        data = _require_mapping(body)
        method = data.get("method", "doc2vec_nearest")
        if method not in INSTANCE_METHODS:
            raise BadRequestError(f"'method' must be one of {INSTANCE_METHODS}")
        return cls(
            query=_string_field(data, "query"),
            doc_id=_string_field(data, "doc_id"),
            n=_int_field(data, "n", 1, maximum=100),
            k=_int_field(data, "k", 10),
            method=method,
            samples=_int_field(data, "samples", 50),
        )


def parse_perturbation(raw: Any) -> Perturbation:
    """Deserialise one perturbation operation.

    Supported shapes::

        {"type": "replace_term", "term": "covid", "replacement": "flu"}
        {"type": "remove_term", "term": "outbreak"}
        {"type": "remove_sentences", "indices": [0, 4]}
        {"type": "append_text", "text": "..."}
    """
    data = _require_mapping(raw)
    kind = data.get("type")
    if kind == "replace_term":
        return ReplaceTerm(
            term=_string_field(data, "term"),
            replacement=_string_field(data, "replacement"),
        )
    if kind == "remove_term":
        return RemoveTerm(term=_string_field(data, "term"))
    if kind == "remove_sentences":
        indices = data.get("indices")
        if not isinstance(indices, list) or not all(
            isinstance(i, int) and not isinstance(i, bool) and i >= 0
            for i in indices
        ):
            raise BadRequestError("'indices' must be a list of non-negative ints")
        return RemoveSentences(indices=tuple(indices))
    if kind == "append_text":
        return AppendText(text=_string_field(data, "text"))
    raise BadRequestError(f"unknown perturbation type: {kind!r}")


@dataclass(frozen=True)
class BuilderRequest:
    query: str
    doc_id: str
    k: int
    edited_body: str | None
    perturbations: tuple[Perturbation, ...] | None

    @classmethod
    def parse(cls, body: Any) -> "BuilderRequest":
        data = _require_mapping(body)
        edited_body = data.get("edited_body")
        raw_perturbations = data.get("perturbations")
        if (edited_body is None) == (raw_perturbations is None):
            raise BadRequestError(
                "provide exactly one of 'edited_body' or 'perturbations'"
            )
        perturbations = None
        if raw_perturbations is not None:
            if not isinstance(raw_perturbations, list) or not raw_perturbations:
                raise BadRequestError("'perturbations' must be a non-empty list")
            perturbations = tuple(
                parse_perturbation(raw) for raw in raw_perturbations
            )
        if edited_body is not None and (
            not isinstance(edited_body, str) or not edited_body.strip()
        ):
            raise BadRequestError("'edited_body' must be a non-empty string")
        return cls(
            query=_string_field(data, "query"),
            doc_id=_string_field(data, "doc_id"),
            k=_int_field(data, "k", 10),
            edited_body=edited_body,
            perturbations=perturbations,
        )


@dataclass(frozen=True)
class TopicsRequest:
    query: str
    k: int
    num_topics: int
    terms_per_topic: int

    @classmethod
    def parse(cls, body: Any) -> "TopicsRequest":
        data = _require_mapping(body)
        return cls(
            query=_string_field(data, "query"),
            k=_int_field(data, "k", 10),
            num_topics=_int_field(data, "num_topics", 5, maximum=50),
            terms_per_topic=_int_field(data, "terms_per_topic", 10, maximum=100),
        )
