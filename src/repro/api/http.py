"""A minimal JSON-REST substrate on the standard library.

Provides path-pattern routing (``/documents/{doc_id}``), JSON body
parsing, structured error mapping for :class:`repro.errors.ApiError`,
and a threading HTTP server. Deliberately small: the demo's backend is a
thin REST facade over the engine, and this substrate keeps that facade
testable without third-party frameworks.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Iterable
from urllib.parse import parse_qs, urlparse

from repro.errors import ApiError, BadRequestError, NotFoundError
from repro.obs.trace import new_request_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class Request:
    """A parsed HTTP request.

    ``headers`` keys are lower-cased on ingestion (HTTP header names are
    case-insensitive; handlers read e.g. ``x-client-id`` directly).
    """

    method: str
    path: str
    path_params: dict[str, str] = field(default_factory=dict)
    query_params: dict[str, str] = field(default_factory=dict)
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        # Normalise header keys here, not in each transport, so the
        # in-process client and the socket server agree on lookups.
        object.__setattr__(
            self,
            "headers",
            {key.lower(): value for key, value in self.headers.items()},
        )


@dataclass(frozen=True)
class HttpResponse:
    """A JSON response with a status code and optional extra headers
    (e.g. ``Retry-After`` on a 429/503 refusal)."""

    status: int
    payload: Any
    headers: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class StreamingResponse:
    """An NDJSON streaming response: one JSON object per chunk.

    Returned by handlers that emit progress while work runs
    (``POST /explanations/stream``). Over real HTTP the chunks go out
    with ``Transfer-Encoding: chunked``, one ``\\n``-terminated JSON
    line per chunk, flushed as produced; the in-process client just
    iterates them.
    """

    status: int
    chunks: Iterable[Any]
    headers: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class TextResponse:
    """A plain-text response (Prometheus exposition is text, not JSON)."""

    status: int
    text: str
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "text/plain; charset=utf-8"


Handler = Callable[[Request], Any]

Response = HttpResponse | StreamingResponse | TextResponse

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    regex = _PARAM_RE.sub(r"(?P<\1>[^/]+)", re.escape(pattern).replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(f"^{regex}$")


@dataclass(frozen=True)
class _Route:
    method: str
    pattern: re.Pattern[str]
    handler: Handler


class Router:
    """Maps (method, path) to handlers and dispatches requests.

    With a :class:`~repro.obs.tracer.Tracer` attached, every dispatch —
    including 404s, 405s, and error mappings — runs under a request
    trace and every response (streaming included) carries an
    ``X-Request-Id`` header: the client's own (``X-Request-Id`` request
    header) when present, a fresh id otherwise. Implementing the
    contract here, below every route, is what lets the lint test assert
    that no endpoint can opt out of request-id propagation.
    """

    def __init__(self, tracer: "Tracer | None" = None):
        self._routes: list[_Route] = []
        self.tracer = tracer

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on a ``/path/{param}`` pattern."""
        self._routes.append(
            _Route(method.upper(), _compile_pattern(pattern), handler)
        )

    def get(self, pattern: str):
        """Decorator form of :meth:`add` for GET."""
        return self._decorator("GET", pattern)

    def post(self, pattern: str):
        """Decorator form of :meth:`add` for POST."""
        return self._decorator("POST", pattern)

    def delete(self, pattern: str):
        """Decorator form of :meth:`add` for DELETE."""
        return self._decorator("DELETE", pattern)

    def _decorator(self, method: str, pattern: str):
        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler)
            return handler

        return register

    def dispatch(self, request: Request) -> Response:
        """Route and execute ``request``, mapping errors to status codes.

        An :class:`~repro.errors.ApiError` that knows extra headers
        (``to_headers`` — e.g. ``Retry-After`` on 429/503) gets them
        attached to the error response.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._dispatch(request)
        request_id = request.headers.get("x-request-id") or new_request_id()
        with tracer.trace(
            f"{request.method} {request.path}", request_id=request_id
        ) as trace:
            response = self._dispatch(request)
            trace.set(status=response.status)
        headers = dict(response.headers)
        headers.setdefault("X-Request-Id", request_id)
        return replace(response, headers=headers)

    def _dispatch(self, request: Request) -> Response:
        matched_path = False
        for route in self._routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            matched_path = True
            if route.method != request.method:
                continue
            bound = Request(
                method=request.method,
                path=request.path,
                path_params=match.groupdict(),
                query_params=request.query_params,
                body=request.body,
                headers=request.headers,
            )
            try:
                result = route.handler(bound)
            except ApiError as error:
                to_headers = getattr(error, "to_headers", None)
                return HttpResponse(
                    error.status_code,
                    error.to_payload(),
                    headers=to_headers() if callable(to_headers) else {},
                )
            except (KeyError, ValueError, TypeError) as error:
                bad = BadRequestError(str(error))
                return HttpResponse(bad.status_code, bad.to_payload())
            if isinstance(result, (HttpResponse, StreamingResponse, TextResponse)):
                return result
            return HttpResponse(200, result)
        if matched_path:
            error: ApiError = BadRequestError("method not allowed for this path")
            return HttpResponse(405, error.to_payload())
        missing = NotFoundError(f"no route for {request.path}")
        return HttpResponse(missing.status_code, missing.to_payload())


#: Default request-body cap (bytes). A JSON explanation request is a few
#: hundred bytes; anything near this is abuse, not traffic.
MAX_BODY_BYTES = 1_048_576


class _JsonRequestHandler(BaseHTTPRequestHandler):
    """Adapts :class:`BaseHTTPRequestHandler` to the router."""

    router: Router  # set by server factory
    max_body_bytes: int = MAX_BODY_BYTES  # set by server factory
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # silence default stderr logging
        pass

    def _respond(self, response: HttpResponse | TextResponse) -> None:
        if isinstance(response, TextResponse):
            body = response.text.encode("utf-8")
            content_type = response.content_type
        else:
            body = json.dumps(response.payload, ensure_ascii=False).encode(
                "utf-8"
            )
            content_type = "application/json; charset=utf-8"
        self.send_response(response.status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_stream(self, response: StreamingResponse) -> None:
        """Write an NDJSON stream with manual chunked framing.

        ``BaseHTTPRequestHandler`` never chunk-encodes on its own, so
        each JSON line is framed by hand (size in hex, CRLF, data,
        CRLF; zero-size chunk terminates) and flushed immediately — the
        client sees progress as it happens, not when the response ends.
        A producer error after headers have gone out cannot become a
        status code any more, so it is emitted as a final error chunk.
        """
        self.send_response(response.status)
        self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()

        def write_chunk(payload: Any) -> None:
            line = (
                json.dumps(payload, ensure_ascii=False).encode("utf-8") + b"\n"
            )
            self.wfile.write(f"{len(line):X}\r\n".encode("ascii"))
            self.wfile.write(line)
            self.wfile.write(b"\r\n")
            self.wfile.flush()

        try:
            try:
                for chunk in response.chunks:
                    write_chunk(chunk)
            except Exception as error:  # noqa: BLE001 - headers already sent
                write_chunk(
                    {"error": {"type": type(error).__name__, "message": str(error)}}
                )
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing left to tell it

    def _handle(self, method: str) -> None:
        parsed = urlparse(self.path)
        query_params = {
            key: values[0] for key, values in parse_qs(parsed.query).items()
        }
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.max_body_bytes:
            # Drain the body in bounded chunks (never buffering it) so
            # the client finishes its send and sees a clean 400 rather
            # than a broken pipe mid-upload.
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            error = BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit"
            )
            self._respond(HttpResponse(error.status_code, error.to_payload()))
            return
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                error = BadRequestError("request body is not valid JSON")
                self._respond(HttpResponse(error.status_code, error.to_payload()))
                return
        request = Request(
            method=method,
            path=parsed.path,
            query_params=query_params,
            body=body,
            headers={key.lower(): value for key, value in self.headers.items()},
        )
        response = self.router.dispatch(request)
        if isinstance(response, StreamingResponse):
            self._respond_stream(response)
        else:
            self._respond(response)

    def do_GET(self):
        self._handle("GET")

    def do_POST(self):
        self._handle("POST")

    def do_DELETE(self):
        self._handle("DELETE")


class ApiServer:
    """A threading HTTP server bound to a :class:`Router`."""

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        handler = type(
            "BoundHandler",
            (_JsonRequestHandler,),
            {"router": router, "max_body_bytes": max_body_bytes},
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[0], self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until interrupted)."""
        self._server.serve_forever()

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
