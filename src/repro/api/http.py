"""A minimal JSON-REST substrate on the standard library.

Provides path-pattern routing (``/documents/{doc_id}``), JSON body
parsing, structured error mapping for :class:`repro.errors.ApiError`,
and a threading HTTP server. Deliberately small: the demo's backend is a
thin REST facade over the engine, and this substrate keeps that facade
testable without third-party frameworks.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlparse

from repro.errors import ApiError, BadRequestError, NotFoundError


@dataclass(frozen=True)
class Request:
    """A parsed HTTP request."""

    method: str
    path: str
    path_params: dict[str, str] = field(default_factory=dict)
    query_params: dict[str, str] = field(default_factory=dict)
    body: Any = None


@dataclass(frozen=True)
class HttpResponse:
    """A JSON response with a status code."""

    status: int
    payload: Any


Handler = Callable[[Request], Any]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    regex = _PARAM_RE.sub(r"(?P<\1>[^/]+)", re.escape(pattern).replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(f"^{regex}$")


@dataclass(frozen=True)
class _Route:
    method: str
    pattern: re.Pattern[str]
    handler: Handler


class Router:
    """Maps (method, path) to handlers and dispatches requests."""

    def __init__(self):
        self._routes: list[_Route] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on a ``/path/{param}`` pattern."""
        self._routes.append(
            _Route(method.upper(), _compile_pattern(pattern), handler)
        )

    def get(self, pattern: str):
        """Decorator form of :meth:`add` for GET."""
        return self._decorator("GET", pattern)

    def post(self, pattern: str):
        """Decorator form of :meth:`add` for POST."""
        return self._decorator("POST", pattern)

    def delete(self, pattern: str):
        """Decorator form of :meth:`add` for DELETE."""
        return self._decorator("DELETE", pattern)

    def _decorator(self, method: str, pattern: str):
        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler)
            return handler

        return register

    def dispatch(self, request: Request) -> HttpResponse:
        """Route and execute ``request``, mapping errors to status codes."""
        matched_path = False
        for route in self._routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            matched_path = True
            if route.method != request.method:
                continue
            bound = Request(
                method=request.method,
                path=request.path,
                path_params=match.groupdict(),
                query_params=request.query_params,
                body=request.body,
            )
            try:
                result = route.handler(bound)
            except ApiError as error:
                return HttpResponse(error.status_code, error.to_payload())
            except (KeyError, ValueError, TypeError) as error:
                bad = BadRequestError(str(error))
                return HttpResponse(bad.status_code, bad.to_payload())
            if isinstance(result, HttpResponse):
                return result
            return HttpResponse(200, result)
        if matched_path:
            error: ApiError = BadRequestError("method not allowed for this path")
            return HttpResponse(405, error.to_payload())
        missing = NotFoundError(f"no route for {request.path}")
        return HttpResponse(missing.status_code, missing.to_payload())


#: Default request-body cap (bytes). A JSON explanation request is a few
#: hundred bytes; anything near this is abuse, not traffic.
MAX_BODY_BYTES = 1_048_576


class _JsonRequestHandler(BaseHTTPRequestHandler):
    """Adapts :class:`BaseHTTPRequestHandler` to the router."""

    router: Router  # set by server factory
    max_body_bytes: int = MAX_BODY_BYTES  # set by server factory
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # silence default stderr logging
        pass

    def _respond(self, response: HttpResponse) -> None:
        body = json.dumps(response.payload, ensure_ascii=False).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        parsed = urlparse(self.path)
        query_params = {
            key: values[0] for key, values in parse_qs(parsed.query).items()
        }
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.max_body_bytes:
            # Drain the body in bounded chunks (never buffering it) so
            # the client finishes its send and sees a clean 400 rather
            # than a broken pipe mid-upload.
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            error = BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit"
            )
            self._respond(HttpResponse(error.status_code, error.to_payload()))
            return
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                error = BadRequestError("request body is not valid JSON")
                self._respond(HttpResponse(error.status_code, error.to_payload()))
                return
        request = Request(
            method=method, path=parsed.path, query_params=query_params, body=body
        )
        self._respond(self.router.dispatch(request))

    def do_GET(self):
        self._handle("GET")

    def do_POST(self):
        self._handle("POST")

    def do_DELETE(self):
        self._handle("DELETE")


class ApiServer:
    """A threading HTTP server bound to a :class:`Router`."""

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        handler = type(
            "BoundHandler",
            (_JsonRequestHandler,),
            {"router": router, "max_body_bytes": max_body_bytes},
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[0], self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ApiServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until interrupted)."""
        self._server.serve_forever()

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
