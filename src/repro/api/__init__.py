"""The REST service layer (Fig. 1's FastAPI/Uvicorn equivalent).

A dependency-free JSON-over-HTTP stack: :mod:`repro.api.http` is the
routing substrate, :mod:`repro.api.endpoints` binds a
:class:`~repro.core.engine.CredenceEngine` to the demo's endpoints, and
:mod:`repro.api.client` offers an in-process client (for tests) plus a
real HTTP client. The React front-end is out of scope; every UI artefact
(rank arrows, validity check-mark, strikethrough sentences) is returned
as structured JSON.
"""

from repro.api.app import build_router, serve
from repro.api.client import HttpClient, InProcessClient, RetryPolicy
from repro.api.http import HttpResponse, Request, Router, StreamingResponse

__all__ = [
    "build_router",
    "serve",
    "HttpClient",
    "InProcessClient",
    "HttpResponse",
    "Request",
    "RetryPolicy",
    "Router",
    "StreamingResponse",
]
