"""Retrieval substrate: a positional inverted index with collection stats.

This package replaces the paper's Lucene/Pyserini/Anserini stack. It
provides document storage, postings with positions, collection statistics
(document frequency, collection frequency, average document length),
ranked top-k retrieval with pluggable similarities, and persistence in
three on-disk formats — legacy JSON (v1/v2) and the packed mmap format
(v3, :mod:`repro.index.persist`) with O(1) warm restart and read-only
replicas.

Corpora scale past one in-memory index through the sharded backend
(:mod:`repro.index.sharding`): a :class:`ShardedIndex` routes documents
across N shards, keeps merged corpus-level statistics so scores stay
byte-identical to a single shard, bulk-ingests in parallel, and fans
retrieval out per shard.
"""

from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.postings import Posting, PostingsList
from repro.index.searcher import IndexSearcher, SearchHit
from repro.index.sharding import (
    AnalysisMemo,
    HashRouter,
    MergedPostings,
    MergedStats,
    RoundRobinRouter,
    ShardedIndex,
    ShardRouter,
    build_router,
)
from repro.index.similarity import (
    Bm25Similarity,
    DirichletSimilarity,
    Similarity,
    TfIdfSimilarity,
)
from repro.index.persist import (
    PackedIndex,
    PackedShardedIndex,
    ReplicaIndex,
    attach_packed,
    save_v3,
)
from repro.index.stats import CollectionStats
from repro.index.storage import FORMAT_CHOICES, detect_format, load_index, save_index

__all__ = [
    "Document",
    "InvertedIndex",
    "Posting",
    "PostingsList",
    "IndexSearcher",
    "SearchHit",
    "Bm25Similarity",
    "DirichletSimilarity",
    "Similarity",
    "TfIdfSimilarity",
    "CollectionStats",
    "AnalysisMemo",
    "HashRouter",
    "MergedPostings",
    "MergedStats",
    "RoundRobinRouter",
    "ShardedIndex",
    "ShardRouter",
    "build_router",
    "FORMAT_CHOICES",
    "PackedIndex",
    "PackedShardedIndex",
    "ReplicaIndex",
    "attach_packed",
    "detect_format",
    "load_index",
    "save_index",
    "save_v3",
]
