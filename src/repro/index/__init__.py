"""Retrieval substrate: a positional inverted index with collection stats.

This package replaces the paper's Lucene/Pyserini/Anserini stack. It
provides document storage, postings with positions, collection statistics
(document frequency, collection frequency, average document length),
ranked top-k retrieval with pluggable similarities, and JSON persistence.
"""

from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.postings import Posting, PostingsList
from repro.index.searcher import IndexSearcher, SearchHit
from repro.index.similarity import (
    Bm25Similarity,
    DirichletSimilarity,
    Similarity,
    TfIdfSimilarity,
)
from repro.index.stats import CollectionStats
from repro.index.storage import load_index, save_index

__all__ = [
    "Document",
    "InvertedIndex",
    "Posting",
    "PostingsList",
    "IndexSearcher",
    "SearchHit",
    "Bm25Similarity",
    "DirichletSimilarity",
    "Similarity",
    "TfIdfSimilarity",
    "CollectionStats",
    "load_index",
    "save_index",
]
