"""Postings lists with positions.

Postings are keyed by *document id* (not a segment-local ordinal) because
the index supports deletion and re-addition without renumbering — an
operational simplification that keeps counterfactual workflows (substitute
a document, compare) easy to reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Posting:
    """One document's entry in a term's postings list."""

    doc_id: str
    frequency: int
    positions: tuple[int, ...] = ()

    def __post_init__(self):
        if self.frequency <= 0:
            raise ValueError("posting frequency must be positive")
        if self.positions and len(self.positions) != self.frequency:
            raise ValueError("positions length must equal frequency")


@dataclass
class PostingsList:
    """All postings for a single term, with collection-level counters."""

    term: str
    _postings: dict[str, Posting] = field(default_factory=dict)

    def add(self, posting: Posting) -> None:
        if posting.doc_id in self._postings:
            raise ValueError(
                f"duplicate posting for term {self.term!r}, doc {posting.doc_id!r}"
            )
        self._postings[posting.doc_id] = posting

    def remove(self, doc_id: str) -> bool:
        """Remove a document's posting; return True if it existed."""
        return self._postings.pop(doc_id, None) is not None

    def get(self, doc_id: str) -> Posting | None:
        return self._postings.get(doc_id)

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term (df)."""
        return len(self._postings)

    @property
    def collection_frequency(self) -> int:
        """Total occurrences of the term across the collection (cf)."""
        return sum(p.frequency for p in self._postings.values())

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings.values())

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._postings
