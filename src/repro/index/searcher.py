"""Ranked and boolean retrieval over an :class:`InvertedIndex`.

This is the Pyserini-searcher equivalent: analysed query → top-k hits
under a pluggable :class:`Similarity`. Term-at-a-time accumulation scores
only documents containing at least one query term; language-model
similarities (which smooth absent terms) fall back to scoring every
document.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import IndexStateError
from repro.index.inverted import InvertedIndex
from repro.index.similarity import (
    Bm25Similarity,
    FieldStats,
    Similarity,
    TermStats,
)
from repro.utils.heap import TopK
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result: a document id, its score, and its 1-based rank."""

    doc_id: str
    score: float
    rank: int


class IndexSearcher:
    """Executes queries against an index with a configurable similarity."""

    def __init__(self, index: InvertedIndex, similarity: Similarity | None = None):
        self.index = index
        self.similarity = similarity or Bm25Similarity()

    # -- internals -----------------------------------------------------------

    def _field_stats(self) -> FieldStats:
        stats = self.index.stats()
        return FieldStats(
            document_count=stats.document_count,
            average_document_length=stats.average_document_length,
            total_terms=stats.total_terms,
        )

    def _term_stats(self, term: str) -> TermStats:
        return TermStats(
            document_frequency=self.index.document_frequency(term),
            collection_frequency=self.index.collection_frequency(term),
        )

    def _shards(self) -> tuple[InvertedIndex, ...] | None:
        """The index's shards when it is sharded, else None.

        Duck-typed on purpose: anything exposing single-index ``shards``
        (a :class:`~repro.index.sharding.ShardedIndex`) gets fan-out
        scoring; a plain index takes the direct path.
        """
        return getattr(self.index, "shards", None)

    def _score_sparse(self, query_terms: list[str]) -> dict[str, float]:
        """Term-at-a-time scores for documents matching ≥1 query term.

        Against a sharded corpus this fans out per shard — postings and
        document lengths are read from the owning shard directly, while
        term and field statistics stay *corpus-level* (the merged view) —
        and merges the per-shard accumulators. Every document lives on
        exactly one shard and its per-term contributions are summed in
        query order either way, so the merged scores are byte-identical
        to the single-index path.
        """
        field_stats = self._field_stats()
        shards = self._shards()
        if shards is None:
            shards = (self.index,)
        term_stats: dict[str, TermStats] = {}
        for term in query_terms:
            if term not in term_stats:
                term_stats[term] = self._term_stats(term)
        accumulator: dict[str, float] = defaultdict(float)
        for shard in shards:
            for term in query_terms:
                postings = shard.postings(term)
                if postings is None:
                    continue
                stats = term_stats[term]
                for posting in postings:
                    accumulator[posting.doc_id] += self.similarity.score(
                        posting.frequency,
                        shard.document_length(posting.doc_id),
                        stats,
                        field_stats,
                    )
        return dict(accumulator)

    def _score_dense(self, query_terms: list[str]) -> dict[str, float]:
        """Score every document against every query term (LM smoothing).

        Fans out per shard like :meth:`_score_sparse`; per-document term
        lookups hit the owning shard, statistics stay corpus-level.
        """
        field_stats = self._field_stats()
        shards = self._shards()
        if shards is None:
            shards = (self.index,)
        term_stats = {term: self._term_stats(term) for term in set(query_terms)}
        scores: dict[str, float] = {}
        for shard in shards:
            for doc_id in shard.doc_ids:
                length = shard.document_length(doc_id)
                total = 0.0
                for term in query_terms:
                    total += self.similarity.score(
                        shard.term_frequency(term, doc_id),
                        length,
                        term_stats[term],
                        field_stats,
                    )
                scores[doc_id] = total
        return scores

    # -- public API ----------------------------------------------------------

    def score_all(self, query: str) -> dict[str, float]:
        """Score the whole collection for ``query`` (analysed internally)."""
        if len(self.index) == 0:
            raise IndexStateError("cannot search an empty index")
        query_terms = self.index.analyzer.analyze(query)
        if self.similarity.needs_all_query_terms():
            return self._score_dense(query_terms)
        return self._score_sparse(query_terms)

    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Return the top-``k`` hits for ``query``, best first.

        Ties are broken by insertion (index) order, so results are
        deterministic for a fixed corpus.
        """
        require_positive(k, "k")
        scores = self.score_all(query)
        top = TopK[str](k)
        for doc_id in self.index.doc_ids:  # stable order for ties
            if doc_id in scores:
                top.push(scores[doc_id], doc_id)
        return [
            SearchHit(doc_id=doc_id, score=score, rank=rank)
            for rank, (score, doc_id) in enumerate(top.items(), start=1)
        ]

    def search_phrase(self, phrase: str) -> list[str]:
        """Exact-phrase retrieval using positional postings.

        Returns ids of documents containing the analysed terms of
        ``phrase`` as consecutive positions, in stable corpus order.
        Single-term phrases degrade to term lookup; empty analysis
        yields no results.
        """
        terms = self.index.analyzer.analyze(phrase)
        if not terms:
            return []
        first_postings = self.index.postings(terms[0])
        if first_postings is None:
            return []
        matches = []
        for posting in first_postings:
            doc_id = posting.doc_id
            starts = set(posting.positions)
            for offset, term in enumerate(terms[1:], start=1):
                postings = self.index.postings(term)
                entry = postings.get(doc_id) if postings else None
                if entry is None:
                    starts = set()
                    break
                positions = set(entry.positions)
                starts = {start for start in starts if start + offset in positions}
                if not starts:
                    break
            if starts:
                matches.append(doc_id)
        order = {doc_id: i for i, doc_id in enumerate(self.index.doc_ids)}
        return sorted(matches, key=order.__getitem__)

    def search_boolean(self, query: str, mode: str = "and") -> list[str]:
        """Boolean retrieval: ids of documents matching all/any query terms."""
        if mode not in {"and", "or"}:
            raise ValueError(f"mode must be 'and' or 'or', got {mode!r}")
        query_terms = self.index.analyzer.analyze(query)
        if not query_terms:
            return []
        doc_sets = []
        for term in set(query_terms):
            postings = self.index.postings(term)
            doc_sets.append({p.doc_id for p in postings} if postings else set())
        combined: set[str] = set.intersection(*doc_sets) if mode == "and" else set.union(*doc_sets)
        return [doc_id for doc_id in self.index.doc_ids if doc_id in combined]
