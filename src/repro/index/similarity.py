"""Pluggable lexical similarities for ranked retrieval.

Each similarity scores one (term, document) pair given collection
statistics, exactly like Lucene's ``Similarity`` plug-point. The searcher
accumulates these term-at-a-time; the corpus-level rankers in
:mod:`repro.ranking` reuse the same formulas for scoring *arbitrary* text
(including perturbed documents that are not in the index).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class TermStats:
    """Collection statistics for a single term."""

    document_frequency: int
    collection_frequency: int


@dataclass(frozen=True)
class FieldStats:
    """Collection statistics for the indexed field."""

    document_count: int
    average_document_length: float
    total_terms: int


class Similarity(ABC):
    """Scores term occurrences; higher is more relevant."""

    @abstractmethod
    def score(
        self,
        term_frequency: int,
        document_length: int,
        term_stats: TermStats,
        field_stats: FieldStats,
    ) -> float:
        """Score one term's contribution to one document."""

    def needs_all_query_terms(self) -> bool:
        """True if absent terms still contribute (LM smoothing); the
        searcher then scores every query term against every candidate."""
        return False


@dataclass(frozen=True)
class Bm25Similarity(Similarity):
    """Okapi BM25 with Lucene's (+0.5 / +0.5, +1 inside log) idf.

    The idf variant is always positive, matching Lucene ≥ 4 (and hence
    Anserini's defaults: k1=0.9, b=0.4).
    """

    k1: float = 0.9
    b: float = 0.4

    def __post_init__(self):
        require_non_negative(self.k1, "k1")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {self.b}")

    def idf(self, document_frequency: int, document_count: int) -> float:
        return math.log(
            1.0
            + (document_count - document_frequency + 0.5)
            / (document_frequency + 0.5)
        )

    def score(self, term_frequency, document_length, term_stats, field_stats):
        if term_frequency == 0 or term_stats.document_frequency == 0:
            return 0.0
        idf = self.idf(term_stats.document_frequency, field_stats.document_count)
        avgdl = field_stats.average_document_length or 1.0
        normalized = term_frequency * (self.k1 + 1.0) / (
            term_frequency
            + self.k1 * (1.0 - self.b + self.b * document_length / avgdl)
        )
        return idf * normalized


@dataclass(frozen=True)
class TfIdfSimilarity(Similarity):
    """Classic log-tf × smooth-idf, with optional length normalisation."""

    sublinear_tf: bool = True

    def idf(self, document_frequency: int, document_count: int) -> float:
        return math.log((1.0 + document_count) / (1.0 + document_frequency)) + 1.0

    def score(self, term_frequency, document_length, term_stats, field_stats):
        if term_frequency == 0 or term_stats.document_frequency == 0:
            return 0.0
        tf = (
            1.0 + math.log(term_frequency)
            if self.sublinear_tf
            else float(term_frequency)
        )
        return tf * self.idf(
            term_stats.document_frequency, field_stats.document_count
        )


@dataclass(frozen=True)
class DirichletSimilarity(Similarity):
    """Query-likelihood language model with Dirichlet smoothing.

    Scores are log-probabilities shifted to be comparable across documents
    of different lengths (the standard Zhai–Lafferty formulation).
    """

    mu: float = 1000.0

    def __post_init__(self):
        require_positive(self.mu, "mu")

    def needs_all_query_terms(self) -> bool:
        return True

    def score(self, term_frequency, document_length, term_stats, field_stats):
        if term_stats.collection_frequency == 0:
            return 0.0  # OOV terms are ignored, as in Anserini
        collection_probability = (
            term_stats.collection_frequency / max(field_stats.total_terms, 1)
        )
        numerator = term_frequency + self.mu * collection_probability
        denominator = document_length + self.mu
        return math.log(numerator / denominator)
