"""The v3 save path: snapshot → packed segments → manifest commit.

:func:`save_v3` turns a live :class:`~repro.index.inverted.InvertedIndex`
or :class:`~repro.index.sharding.ShardedIndex` into a new committed
generation of the packed on-disk format. The sequence is the crash-safe
protocol documented in :mod:`repro.index.persist.manifest`: segments are
written and fsynced under generation-unique names first, one SQLite
transaction publishes the generation (the commit point), and only then
are superseded generations and orphaned segment files collected.

The committed generation carries a **content fingerprint** — a digest of
the analyzer configuration, the shard layout, and every segment's
checksum. Packed readers expose it as ``index.version``, which makes
version-keyed caches (the service's
:class:`~repro.service.store.ResultStore`, collection views, Doc2Vec
models) stable across process restarts: re-attaching the same commit
yields the same version, and saving an unchanged corpus again yields the
same fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.index.inverted import IndexSnapshot, InvertedIndex
from repro.index.sharding import ShardedIndex
from repro.index.persist.manifest import (
    GenerationRecord,
    Manifest,
    SegmentRecord,
    encode_merged_terms,
    encode_placements,
    is_v3_manifest,
    segment_filename,
)
from repro.index.persist.segment import write_segment


def _fingerprint(
    analyzer_config: dict,
    layout: str,
    router: str | None,
    cursor: int | None,
    segments: list[SegmentRecord],
    placements_blob: bytes,
    merged_blob: bytes,
) -> int:
    """Digest of everything that defines the committed index content.

    Segment checksums cover documents, postings, and orderings, so two
    saves of identical corpora produce identical fingerprints while any
    content difference — one position, one placement, one analyzer
    option — produces a different one. Truncated to 63 bits to stay a
    positive SQLite INTEGER.
    """
    digest = hashlib.sha1()
    digest.update(json.dumps(analyzer_config, sort_keys=True).encode("utf-8"))
    digest.update(f"|{layout}|{router}|{cursor}".encode("utf-8"))
    for segment in segments:
        digest.update(
            f"|{segment.shard}:{segment.bytes}:{segment.document_count}:"
            f"{segment.crc32}".encode("utf-8")
        )
    digest.update(placements_blob)
    digest.update(merged_blob)
    return int.from_bytes(digest.digest()[:8], "big") & ((1 << 63) - 1)


def save_v3(index: InvertedIndex | ShardedIndex, path: str | Path) -> GenerationRecord:
    """Commit ``index`` as a new generation of the packed v3 format.

    ``path`` becomes (or already is) the manifest; segments land next to
    it. Saving over an existing v3 index appends a generation and
    garbage-collects the previous one *after* the commit point — a
    concurrent reader attached to the old generation keeps a valid view
    (its mmap holds the unlinked segments open), and new attaches see
    the new generation. Saving over a legacy JSON index replaces it.

    Returns the committed :class:`GenerationRecord`.
    """
    path = Path(path)
    if path.exists() and not is_v3_manifest(path):
        # The path currently holds a legacy (v1/v2 JSON) index or some
        # other file; save_index semantics are "overwrite" there too.
        path.unlink()
    manifest = Manifest.create(path)
    generation = manifest.next_generation()

    if isinstance(index, ShardedIndex):
        snapshot = index.export_snapshot()
        layout = "sharded"
        router: str | None = snapshot.router
        cursor = snapshot.cursor
        shard_snapshots: list[IndexSnapshot] = list(snapshot.shard_snapshots)
        # Shard ids in global insertion order; doc ids are implied by
        # the per-shard segment doc tables (shard order is a subsequence
        # of global order).
        placements: tuple[int, ...] | None = tuple(
            shard for _, shard in snapshot.placements
        )
        merged_terms = snapshot.merged_terms
        document_count = snapshot.document_count
        total_terms = snapshot.total_terms
        unique_terms = len(snapshot.merged_terms)
    else:
        single = index.export_snapshot()
        layout = "single"
        router = None
        cursor = None
        shard_snapshots = [single]
        placements = None
        merged_terms = None
        document_count = len(single.documents)
        total_terms = single.total_terms
        unique_terms = len(single.postings)

    segments: list[SegmentRecord] = []
    for shard, shard_snapshot in enumerate(shard_snapshots):
        filename = segment_filename(path, generation, shard)
        size, crc = write_segment(shard_snapshot, path.parent / filename)
        segments.append(
            SegmentRecord(
                shard=shard,
                filename=filename,
                bytes=size,
                document_count=len(shard_snapshot.documents),
                crc32=crc,
            )
        )

    analyzer_config = index.analyzer.to_config()
    record = GenerationRecord(
        generation=generation,
        layout=layout,
        shard_count=len(shard_snapshots),
        router=router,
        router_cursor=cursor,
        analyzer_config=analyzer_config,
        document_count=document_count,
        total_terms=total_terms,
        unique_terms=unique_terms,
        fingerprint=_fingerprint(
            analyzer_config,
            layout,
            router,
            cursor,
            segments,
            encode_placements(placements) if placements is not None else b"",
            encode_merged_terms(merged_terms)
            if merged_terms is not None
            else b"",
        ),
        placements=placements,
        merged_terms=merged_terms,
        segments=tuple(segments),
    )
    manifest.commit_generation(record)
    manifest.collect_garbage(generation)
    return record
