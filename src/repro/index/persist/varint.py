"""Unsigned LEB128 varints — the integer codec of the v3 packed format.

Every count, ordinal gap, frequency, and position delta in a v3 segment
is an unsigned varint: 7 payload bits per byte, high bit = continuation.
Small numbers (the overwhelmingly common case once ids are gap-encoded
and positions are delta-encoded) take one byte.

The decoders read from any buffer supporting ``__getitem__`` on ints
(``bytes``, ``bytearray``, ``memoryview`` over an ``mmap``), which is
what lets the packed readers decode straight out of the page cache.
"""

from __future__ import annotations

from repro.errors import IndexFormatError


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (≥ 0) to ``out`` as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(buffer, offset: int) -> tuple[int, int]:
    """Decode one uvarint at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    length = len(buffer)
    while True:
        if offset >= length:
            raise IndexFormatError(
                "truncated varint: segment data ends mid-integer"
            )
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise IndexFormatError("varint overflow: more than 64 bits")


def write_deltas(out: bytearray, values) -> None:
    """Append a strictly-increasing int sequence as first + gap varints.

    The caller writes the count separately; this encodes ``values[0]``
    absolute followed by successive differences.
    """
    previous = None
    for value in values:
        if previous is None:
            write_uvarint(out, value)
        else:
            gap = value - previous
            if gap <= 0:
                raise ValueError(
                    f"delta encoding requires increasing values, got "
                    f"{previous} then {value}"
                )
            write_uvarint(out, gap)
        previous = value


def read_deltas(buffer, offset: int, count: int) -> tuple[list[int], int]:
    """Decode ``count`` delta-encoded values; returns (values, next offset)."""
    values: list[int] = []
    current = 0
    for position in range(count):
        delta, offset = read_uvarint(buffer, offset)
        current = delta if position == 0 else current + delta
        values.append(current)
    return values, offset
