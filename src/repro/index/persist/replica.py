"""Read-only replica mode: N processes serving one on-disk v3 index.

A :class:`ReplicaIndex` wraps the packed view of the latest committed
generation and transparently delegates the whole index read surface to
it. Because attaching is O(1) and the manifest commit is atomic, any
number of replica processes can serve the same index files while a
writer keeps committing new generations:

* :meth:`ReplicaIndex.refresh` polls the manifest's generation counter
  (one indexed SQLite read) and, when a newer commit exists, attaches
  it and swaps the inner view in a single attribute assignment —
  in-flight reads finish against the old view, new reads see the new
  one. POSIX keeps the old generation's unlinked segment files readable
  through the existing mmaps until the old view is dropped.
* :class:`GenerationWatcher` runs that poll on a daemon thread, which is
  what ``repro serve --replica`` uses.

The swap changes ``index.version`` (the content fingerprint), so every
version-keyed cache above the index — score caches, collection views,
the service result store — invalidates by construction, and two
replicas attached to the same generation report identical versions.
"""

from __future__ import annotations

import logging
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import IndexFormatError
from repro.index.persist.manifest import Manifest
from repro.obs.trace import event as obs_event
from repro.index.persist.packed import (
    PackedIndex,
    PackedShardedIndex,
    attach_packed,
)

logger = logging.getLogger(__name__)

#: Default seconds between generation polls in watch mode.
DEFAULT_WATCH_INTERVAL = 2.0


class ReplicaIndex:
    """A packed index view that can follow new commits at runtime.

    Delegates every index attribute to the currently attached packed
    view; mutation attempts raise
    :class:`~repro.errors.ReadOnlyIndexError` exactly like the view
    itself. Construct one per serving process — the heavyweight state
    (mmaps, page cache) is shared between processes by the OS.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._manifest = Manifest.open(self._path)
        self._inner: PackedIndex | PackedShardedIndex = self._attach()
        self._refresh_lock = threading.Lock()
        self._watcher: GenerationWatcher | None = None

    def _attach(self) -> PackedIndex | PackedShardedIndex:
        """Attach the latest generation, absorbing one writer race.

        Between reading the generation row and opening its segments, a
        writer may commit and garbage-collect the generation we chose.
        One retry re-reads the (now newer) latest row; a second failure
        is a real corruption and propagates.
        """
        try:
            return attach_packed(self._path)
        except IndexFormatError:
            return attach_packed(self._path)

    # -- refresh -------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def generation(self) -> int:
        return self._inner.storage_info()["generation"]

    def refresh(self) -> bool:
        """Attach the newest committed generation if it changed.

        Returns True when a swap happened. Serialised by a lock so a
        watcher thread and an explicit caller cannot double-attach; the
        swap itself is one attribute assignment, safe against concurrent
        readers (they hold a reference to whichever view they started
        with).
        """
        with self._refresh_lock:
            latest = self._manifest.latest_generation_number()
            if latest is None or latest == self.generation:
                return False
            previous = self._inner
            self._inner = self._attach()
            previous.close()
            obs_event(
                "replica/swap",
                generation=self.generation,
                previous=previous.storage_info()["generation"],
            )
            logger.info(
                "replica %s: attached generation %d (was %d)",
                self._path,
                self.generation,
                previous.storage_info()["generation"],
            )
            return True

    def watch(
        self,
        interval: float = DEFAULT_WATCH_INTERVAL,
        on_refresh: Callable[[int], None] | None = None,
    ) -> "GenerationWatcher":
        """Start (or return) the background generation watcher."""
        if self._watcher is None or not self._watcher.is_alive():
            self._watcher = GenerationWatcher(self, interval, on_refresh)
            self._watcher.start()
        return self._watcher

    def close(self) -> None:
        if self._watcher is not None:
            self._watcher.stop()
        self._inner.close()

    # -- delegation ----------------------------------------------------------

    def storage_info(self) -> dict:
        info = self._inner.storage_info()
        info["replica"] = True
        return info

    def __getattr__(self, name: str):
        # Only called for names not found on the replica itself: the
        # whole read surface (and the mutation methods, which raise
        # ReadOnlyIndexError in the packed view) falls through here.
        return getattr(object.__getattribute__(self, "_inner"), name)

    # Special methods bypass __getattr__; forward them explicitly.

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self) -> Iterator:
        return iter(self._inner)


class GenerationWatcher(threading.Thread):
    """Daemon thread that refreshes a replica when the writer commits."""

    def __init__(
        self,
        replica: ReplicaIndex,
        interval: float = DEFAULT_WATCH_INTERVAL,
        on_refresh: Callable[[int], None] | None = None,
    ):
        super().__init__(name="generation-watcher", daemon=True)
        self.replica = replica
        self.interval = interval
        self.on_refresh = on_refresh
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                if self.replica.refresh() and self.on_refresh is not None:
                    self.on_refresh(self.replica.generation)
            except IndexFormatError as error:
                # Transient mid-commit state or a vanished file: keep
                # serving the attached generation and retry next tick.
                logger.warning(
                    "replica %s: refresh failed, keeping generation %d: %s",
                    self.replica.path,
                    self.replica.generation,
                    error,
                )

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=self.interval + 1.0)
