"""The v3 packed binary segment: one shard's corpus + postings on disk.

A segment is a single immutable file holding everything one
:class:`~repro.index.inverted.InvertedIndex` knows, laid out so a reader
can ``mmap`` it and answer any single lookup by decoding only the bytes
that lookup touches:

========================  ====================================================
header                    magic, counts, and absolute section offsets
doc-id offsets / blob     doc ids in **global insertion order** (UTF-8)
doc sorted permutation    ordinals sorted by id bytes → O(log n) id lookup
doc meta                  per doc: record offset within its block + length
term offsets / blob       terms in **postings insertion order** (UTF-8)
term sorted permutation   ordinals sorted by term bytes
postings offsets / blob   per term: varint-packed postings (see below)
block offsets / records   zlib-compressed blocks of document records
========================  ====================================================

Postings for one term are ``count`` followed by per-posting
``(doc-ordinal gap, frequency, position count, position deltas)`` — all
unsigned varints, with doc ordinals strictly increasing (postings
insertion order is a subsequence of global insertion order, since a
posting is created exactly when its document is added). Document
records (title, body, metadata JSON, and the term-frequency vector in
first-occurrence order) are grouped into fixed-size blocks and
zlib-compressed, which is what makes the packed file *smaller* than the
v2 JSON payloads even though it additionally stores postings and
positions; a block decompresses lazily on first access to any of its
documents.

Insertion orders are preserved exactly because they are observable:
ranked ties, ``terms()`` iteration, and term-vector iteration all follow
them, and the save→load equivalence suite pins byte-identical results.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from repro.errors import IndexFormatError
from repro.index.inverted import IndexSnapshot
from repro.index.persist.varint import (
    read_deltas,
    read_uvarint,
    write_deltas,
    write_uvarint,
)

MAGIC = b"RPROSEG3"
#: Bump when the segment byte layout changes incompatibly.
SEGMENT_FORMAT = 1
#: Documents per compressed record block: large enough for zlib to see
#: cross-document redundancy, small enough that one cold document read
#: decompresses only a few tens of kilobytes.
BLOCK_DOCS = 64

_HEADER = struct.Struct("<8sII3Q12Q")
_DOC_META = struct.Struct("<II")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


def _json_dumps(payload: dict) -> bytes:
    import json

    return json.dumps(payload, ensure_ascii=False, sort_keys=True).encode(
        "utf-8"
    )


def _string_table(values: list[bytes]) -> tuple[bytes, bytes, bytes]:
    """(offsets, blob, sorted permutation) sections for a string list."""
    offsets = bytearray()
    blob = bytearray()
    running = 0
    offsets += _U64.pack(0)
    for value in values:
        blob += value
        running += len(value)
        offsets += _U64.pack(running)
    order = sorted(range(len(values)), key=values.__getitem__)
    permutation = b"".join(_U32.pack(ordinal) for ordinal in order)
    return bytes(offsets), bytes(blob), permutation


def write_segment(snapshot: IndexSnapshot, path: str | Path) -> tuple[int, int]:
    """Serialise ``snapshot`` into a packed segment at ``path``.

    Crash-safe: the bytes land in a same-directory temp file which is
    fsynced and atomically renamed into place. Returns
    ``(bytes_written, crc32)`` for the manifest's segments table.
    """
    path = Path(path)
    documents = snapshot.documents
    doc_ids = [document.doc_id.encode("utf-8") for document in documents]
    ordinals = {document.doc_id: i for i, document in enumerate(documents)}
    terms = list(snapshot.postings)
    term_bytes = [term.encode("utf-8") for term in terms]
    term_ordinals = {term: i for i, term in enumerate(terms)}

    doc_id_offsets, doc_id_blob, doc_sorted = _string_table(doc_ids)
    term_offsets, term_blob, term_sorted = _string_table(term_bytes)

    # Postings: per term, gap-encoded doc ordinals with packed positions.
    postings_offsets = bytearray(_U64.pack(0))
    postings_blob = bytearray()
    for term in terms:
        plist = snapshot.postings[term]
        write_uvarint(postings_blob, len(plist))
        previous = None
        for posting in plist:
            ordinal = ordinals[posting.doc_id]
            if previous is not None and ordinal <= previous:
                raise IndexFormatError(
                    f"postings for {term!r} are not in insertion order"
                )
            gap = ordinal if previous is None else ordinal - previous
            previous = ordinal
            write_uvarint(postings_blob, gap)
            write_uvarint(postings_blob, posting.frequency)
            write_uvarint(postings_blob, len(posting.positions))
            write_deltas(postings_blob, posting.positions)
        postings_offsets += _U64.pack(len(postings_blob))

    # Document records, grouped into zlib blocks.
    doc_meta = bytearray()
    block_offsets = bytearray(_U64.pack(0))
    records_blob = bytearray()
    block = bytearray()
    for position, document in enumerate(documents):
        doc_meta += _DOC_META.pack(
            len(block), snapshot.doc_lengths[document.doc_id]
        )
        title = document.title.encode("utf-8")
        body = document.body.encode("utf-8")
        metadata = (
            _json_dumps(dict(document.metadata)) if document.metadata else b""
        )
        write_uvarint(block, len(title))
        block += title
        write_uvarint(block, len(body))
        block += body
        write_uvarint(block, len(metadata))
        block += metadata
        vector = snapshot.term_freqs[document.doc_id]
        write_uvarint(block, len(vector))
        for term, frequency in vector.items():
            write_uvarint(block, term_ordinals[term])
            write_uvarint(block, frequency)
        if (position + 1) % BLOCK_DOCS == 0:
            records_blob += zlib.compress(bytes(block), 6)
            block_offsets += _U64.pack(len(records_blob))
            block = bytearray()
    if block:
        records_blob += zlib.compress(bytes(block), 6)
        block_offsets += _U64.pack(len(records_blob))

    sections = [
        bytes(doc_id_offsets), doc_id_blob, doc_sorted, bytes(doc_meta),
        bytes(term_offsets), term_blob, term_sorted,
        bytes(postings_offsets), bytes(postings_blob),
        bytes(block_offsets), bytes(records_blob),
    ]
    offsets = []
    running = _HEADER.size
    for section in sections:
        offsets.append(running)
        running += len(section)
    header = _HEADER.pack(
        MAGIC, SEGMENT_FORMAT, BLOCK_DOCS,
        len(documents), len(terms), snapshot.total_terms,
        *offsets, running,
    )

    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    crc = zlib.crc32(header)
    with temp.open("wb") as handle:
        handle.write(header)
        for section in sections:
            handle.write(section)
            crc = zlib.crc32(section, crc)
        handle.flush()
        # Durable before the manifest can reference it: the manifest row
        # is the commit point, so the segment must already be on disk.
        os.fsync(handle.fileno())
    temp.replace(path)
    return running, crc


class Segment:
    """A read-only ``mmap`` view over one packed segment file.

    Opening parses the fixed-size header only — attach cost is
    independent of corpus size. Every accessor decodes just the bytes it
    needs from the mapping; the OS page cache shares those bytes between
    every process attached to the same file.
    """

    def __init__(self, path: str | Path):
        import mmap

        self.path = Path(path)
        try:
            self._file = self.path.open("rb")
        except OSError as error:
            raise IndexFormatError(
                f"cannot open segment {self.path}: {error}"
            ) from None
        try:
            self._mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (OSError, ValueError) as error:
            self._file.close()
            raise IndexFormatError(
                f"cannot map segment {self.path}: {error}"
            ) from None
        self._view = memoryview(self._mmap)
        try:
            unpacked = _HEADER.unpack_from(self._view, 0)
        except struct.error:
            self.close()
            raise IndexFormatError(
                f"segment {self.path} is truncated (no header)"
            ) from None
        (magic, segment_format, self.block_docs,
         self.doc_count, self.term_count, self.total_terms,
         self._doc_id_offsets, self._doc_id_blob, self._doc_sorted,
         self._doc_meta, self._term_offsets, self._term_blob,
         self._term_sorted, self._postings_offsets, self._postings_blob,
         self._block_offsets, self._records, end) = unpacked
        if magic != MAGIC:
            self.close()
            raise IndexFormatError(
                f"{self.path} is not a v3 segment (bad magic)"
            )
        if segment_format != SEGMENT_FORMAT:
            self.close()
            raise IndexFormatError(
                f"unsupported segment format {segment_format} in {self.path}"
            )
        actual = len(self._mmap)
        if end != actual:
            self.close()
            raise IndexFormatError(
                f"segment {self.path} is truncated: header says {end} "
                f"bytes, file has {actual}"
            )
        self._blocks: dict[int, bytes] = {}

    def close(self) -> None:
        self._view.release()
        self._mmap.close()
        self._file.close()

    # -- string tables -------------------------------------------------------

    def _table_entry(self, offsets_at: int, blob_at: int, ordinal: int) -> bytes:
        start = _U64.unpack_from(self._view, offsets_at + 8 * ordinal)[0]
        end = _U64.unpack_from(self._view, offsets_at + 8 * ordinal + 8)[0]
        return bytes(self._view[blob_at + start:blob_at + end])

    def _table_find(
        self, offsets_at: int, blob_at: int, sorted_at: int,
        count: int, key: bytes,
    ) -> int | None:
        low, high = 0, count
        while low < high:
            mid = (low + high) // 2
            ordinal = _U32.unpack_from(self._view, sorted_at + 4 * mid)[0]
            entry = self._table_entry(offsets_at, blob_at, ordinal)
            if entry == key:
                return ordinal
            if entry < key:
                low = mid + 1
            else:
                high = mid
        return None

    def doc_id(self, ordinal: int) -> str:
        return self._table_entry(
            self._doc_id_offsets, self._doc_id_blob, ordinal
        ).decode("utf-8")

    def doc_ordinal(self, doc_id: str) -> int | None:
        return self._table_find(
            self._doc_id_offsets, self._doc_id_blob, self._doc_sorted,
            self.doc_count, doc_id.encode("utf-8"),
        )

    def term(self, ordinal: int) -> str:
        return self._table_entry(
            self._term_offsets, self._term_blob, ordinal
        ).decode("utf-8")

    def term_ordinal(self, term: str) -> int | None:
        return self._table_find(
            self._term_offsets, self._term_blob, self._term_sorted,
            self.term_count, term.encode("utf-8"),
        )

    # -- per-document data ---------------------------------------------------

    def doc_length(self, ordinal: int) -> int:
        return _DOC_META.unpack_from(
            self._view, self._doc_meta + _DOC_META.size * ordinal
        )[1]

    def _block(self, block_id: int) -> bytes:
        cached = self._blocks.get(block_id)
        if cached is None:
            start = _U64.unpack_from(
                self._view, self._block_offsets + 8 * block_id
            )[0]
            end = _U64.unpack_from(
                self._view, self._block_offsets + 8 * block_id + 8
            )[0]
            try:
                cached = zlib.decompress(
                    self._view[self._records + start:self._records + end]
                )
            except zlib.error as error:
                raise IndexFormatError(
                    f"corrupt record block {block_id} in {self.path}: {error}"
                ) from None
            self._blocks[block_id] = cached
        return cached

    def record(self, ordinal: int) -> tuple[str, str, dict, list[tuple[int, int]]]:
        """Decode one document record: (title, body, metadata, term vector).

        The term vector is ``[(term ordinal, frequency), ...]`` in
        first-occurrence order — exactly the iteration order of the
        in-memory ``Counter`` it round-trips.
        """
        import json

        block = self._block(ordinal // self.block_docs)
        offset = _DOC_META.unpack_from(
            self._view, self._doc_meta + _DOC_META.size * ordinal
        )[0]
        title_len, offset = read_uvarint(block, offset)
        title = block[offset:offset + title_len].decode("utf-8")
        offset += title_len
        body_len, offset = read_uvarint(block, offset)
        body = block[offset:offset + body_len].decode("utf-8")
        offset += body_len
        meta_len, offset = read_uvarint(block, offset)
        metadata = (
            json.loads(block[offset:offset + meta_len]) if meta_len else {}
        )
        offset += meta_len
        unique, offset = read_uvarint(block, offset)
        vector: list[tuple[int, int]] = []
        for _ in range(unique):
            term_ordinal, offset = read_uvarint(block, offset)
            frequency, offset = read_uvarint(block, offset)
            vector.append((term_ordinal, frequency))
        return title, body, metadata, vector

    # -- postings ------------------------------------------------------------

    def postings_count(self, term_ordinal: int) -> int:
        """A term's document frequency — one varint, no postings decode."""
        start = _U64.unpack_from(
            self._view, self._postings_offsets + 8 * term_ordinal
        )[0]
        count, _ = read_uvarint(self._view, self._postings_blob + start)
        return count

    def postings_entries(
        self, term_ordinal: int
    ) -> list[tuple[int, int, tuple[int, ...]]]:
        """Decode one term's postings: [(doc ordinal, freq, positions)]."""
        start = _U64.unpack_from(
            self._view, self._postings_offsets + 8 * term_ordinal
        )[0]
        offset = self._postings_blob + start
        view = self._view
        count, offset = read_uvarint(view, offset)
        entries: list[tuple[int, int, tuple[int, ...]]] = []
        ordinal = 0
        for position in range(count):
            gap, offset = read_uvarint(view, offset)
            ordinal = gap if position == 0 else ordinal + gap
            frequency, offset = read_uvarint(view, offset)
            pos_count, offset = read_uvarint(view, offset)
            positions, offset = read_deltas(view, offset, pos_count)
            entries.append((ordinal, frequency, tuple(positions)))
        return entries
