"""The v3 manifest: a SQLite catalogue of committed index generations.

The manifest file *is* the index path a user saves to — segments live
next to it as ``<stem>-g<generation>.s<shard>.seg``. It records, per
generation: the analyzer configuration, the shard layout (router,
cursor, per-document placements), collection totals, a content-derived
fingerprint, and the segment files with their sizes and checksums.

Commit protocol (crash-safe by construction):

1. Segment files for the new generation are written and fsynced first,
   under names no existing generation references.
2. One SQLite transaction inserts the ``generations`` row and its
   ``segments`` rows. The transaction commit is the *only* commit point:
   before it, readers see the previous generation; after it, the new
   one. A crash anywhere leaves a loadable index.
3. Only after commit are superseded generations deleted and orphaned
   segment files garbage-collected.

The database runs in WAL mode so any number of read-only replica
processes can attach and poll while a writer commits — readers never
block the writer and vice versa.
"""

from __future__ import annotations

import contextlib
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IndexFormatError
from repro.index.persist.varint import read_uvarint, write_uvarint

#: First bytes of every SQLite database file — the v3 detection probe.
SQLITE_MAGIC = b"SQLite format 3\x00"
FORMAT_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS repro_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS generations (
    generation INTEGER PRIMARY KEY,
    committed_at REAL NOT NULL,
    layout TEXT NOT NULL,
    shard_count INTEGER NOT NULL,
    router TEXT,
    router_cursor INTEGER,
    analyzer TEXT NOT NULL,
    document_count INTEGER NOT NULL,
    total_terms INTEGER NOT NULL,
    unique_terms INTEGER NOT NULL,
    fingerprint INTEGER NOT NULL,
    placements BLOB,
    merged_terms BLOB
);
CREATE TABLE IF NOT EXISTS segments (
    generation INTEGER NOT NULL,
    shard INTEGER NOT NULL,
    filename TEXT NOT NULL,
    bytes INTEGER NOT NULL,
    document_count INTEGER NOT NULL,
    crc32 INTEGER NOT NULL,
    PRIMARY KEY (generation, shard)
);
"""


@dataclass(frozen=True)
class SegmentRecord:
    """One committed segment file (one shard of one generation)."""

    shard: int
    filename: str
    bytes: int
    document_count: int
    crc32: int


@dataclass(frozen=True)
class GenerationRecord:
    """Everything needed to attach one committed generation."""

    generation: int
    layout: str  # "single" | "sharded"
    shard_count: int
    router: str | None
    router_cursor: int | None
    analyzer_config: dict
    document_count: int
    total_terms: int
    unique_terms: int
    fingerprint: int
    placements: tuple[int, ...] | None
    merged_terms: tuple[tuple[str, int, int], ...] | None
    segments: tuple[SegmentRecord, ...] = field(default_factory=tuple)


def is_v3_manifest(path: str | Path) -> bool:
    """Probe whether ``path`` is a SQLite file (the v3 manifest format)."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


def encode_placements(placements) -> bytes:
    """Pack per-document shard ids (global insertion order) as varints."""
    out = bytearray()
    placements = list(placements)
    write_uvarint(out, len(placements))
    for shard in placements:
        write_uvarint(out, shard)
    return bytes(out)


def decode_placements(blob: bytes) -> tuple[int, ...]:
    count, offset = read_uvarint(blob, 0)
    placements = []
    for _ in range(count):
        shard, offset = read_uvarint(blob, offset)
        placements.append(shard)
    return tuple(placements)


def encode_merged_terms(merged_terms) -> bytes:
    """Pack the sharded backend's merged term order as (term, df, cf)."""
    out = bytearray()
    merged_terms = list(merged_terms)
    write_uvarint(out, len(merged_terms))
    for term, df, cf in merged_terms:
        encoded = term.encode("utf-8")
        write_uvarint(out, len(encoded))
        out += encoded
        write_uvarint(out, df)
        write_uvarint(out, cf)
    return bytes(out)


def decode_merged_terms(blob: bytes) -> tuple[tuple[str, int, int], ...]:
    count, offset = read_uvarint(blob, 0)
    terms = []
    for _ in range(count):
        length, offset = read_uvarint(blob, offset)
        term = bytes(blob[offset:offset + length]).decode("utf-8")
        offset += length
        df, offset = read_uvarint(blob, offset)
        cf, offset = read_uvarint(blob, offset)
        terms.append((term, df, cf))
    return tuple(terms)


class Manifest:
    """Open handle on a v3 manifest database.

    Cheap to construct — connections are opened per operation, so one
    ``Manifest`` can be shared by a polling replica watcher without
    holding SQLite locks between polls.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path) -> "Manifest":
        """Initialise (or re-open) a manifest database at ``path``."""
        manifest = cls(path)
        manifest.path.parent.mkdir(parents=True, exist_ok=True)
        with manifest._connect() as connection:
            connection.executescript(_SCHEMA)
            connection.execute(
                "INSERT OR REPLACE INTO repro_meta (key, value) "
                "VALUES ('format_version', ?)",
                (str(FORMAT_VERSION),),
            )
        return manifest

    @classmethod
    def open(cls, path: str | Path) -> "Manifest":
        """Open an existing manifest, validating format and version."""
        path = Path(path)
        if not path.exists():
            raise IndexFormatError(f"no index manifest at {path}")
        if not is_v3_manifest(path):
            raise IndexFormatError(
                f"{path} is not a v3 index manifest (not a SQLite file)"
            )
        manifest = cls(path)
        try:
            with manifest._connect() as connection:
                row = connection.execute(
                    "SELECT value FROM repro_meta WHERE key = 'format_version'"
                ).fetchone()
        except sqlite3.Error as error:
            raise IndexFormatError(
                f"corrupt index manifest {path}: {error}"
            ) from None
        if row is None:
            raise IndexFormatError(
                f"{path} is a SQLite file but not a repro index manifest"
            )
        if int(row[0]) != FORMAT_VERSION:
            raise IndexFormatError(
                f"unsupported index format version {row[0]} in {path}"
            )
        return manifest

    @contextlib.contextmanager
    def _connect(self):
        """One transaction-scoped connection, **closed** on exit.

        ``with sqlite3.connect(...)`` alone only manages the transaction
        — the connection (and its file descriptor and POSIX locks) would
        linger until garbage collection. Closing deterministically
        matters here: replica processes are often forked, and an
        inherited manifest fd being collected in the child would drop
        the child's own advisory locks on the same file.
        """
        connection = sqlite3.connect(self.path, timeout=30.0)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            with connection:
                yield connection
        finally:
            connection.close()

    # -- commits -------------------------------------------------------------

    def next_generation(self) -> int:
        with self._connect() as connection:
            row = connection.execute(
                "SELECT COALESCE(MAX(generation), 0) FROM generations"
            ).fetchone()
        return int(row[0]) + 1

    def commit_generation(self, record: GenerationRecord) -> None:
        """Atomically publish a generation — the v3 commit point.

        The caller has already written and fsynced every segment in
        ``record.segments``; this single transaction makes them the
        current index. ``synchronous=FULL`` forces the commit itself to
        durable storage (the payload is a few hundred bytes, so the
        extra fsync is immaterial next to segment writes).
        """
        with self._connect() as connection:
            connection.execute("PRAGMA synchronous=FULL")
            connection.execute(
                "INSERT INTO generations (generation, committed_at, layout,"
                " shard_count, router, router_cursor, analyzer,"
                " document_count, total_terms, unique_terms, fingerprint,"
                " placements, merged_terms)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.generation,
                    time.time(),
                    record.layout,
                    record.shard_count,
                    record.router,
                    record.router_cursor,
                    _dump_analyzer(record.analyzer_config),
                    record.document_count,
                    record.total_terms,
                    record.unique_terms,
                    record.fingerprint,
                    encode_placements(record.placements)
                    if record.placements is not None
                    else None,
                    encode_merged_terms(record.merged_terms)
                    if record.merged_terms is not None
                    else None,
                ),
            )
            connection.executemany(
                "INSERT INTO segments (generation, shard, filename, bytes,"
                " document_count, crc32) VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        record.generation,
                        segment.shard,
                        segment.filename,
                        segment.bytes,
                        segment.document_count,
                        segment.crc32,
                    )
                    for segment in record.segments
                ],
            )

    # -- reads ---------------------------------------------------------------

    def latest_generation_number(self) -> int | None:
        """The committed generation counter — the replica watch signal."""
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT MAX(generation) FROM generations"
                ).fetchone()
        except sqlite3.Error as error:
            raise IndexFormatError(
                f"corrupt index manifest {self.path}: {error}"
            ) from None
        return None if row[0] is None else int(row[0])

    def latest_generation(self) -> GenerationRecord | None:
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT generation, layout, shard_count, router,"
                    " router_cursor, analyzer, document_count, total_terms,"
                    " unique_terms, fingerprint, placements, merged_terms"
                    " FROM generations ORDER BY generation DESC LIMIT 1"
                ).fetchone()
                if row is None:
                    return None
                segment_rows = connection.execute(
                    "SELECT shard, filename, bytes, document_count, crc32"
                    " FROM segments WHERE generation = ? ORDER BY shard",
                    (row[0],),
                ).fetchall()
        except sqlite3.Error as error:
            raise IndexFormatError(
                f"corrupt index manifest {self.path}: {error}"
            ) from None
        return GenerationRecord(
            generation=int(row[0]),
            layout=row[1],
            shard_count=int(row[2]),
            router=row[3],
            router_cursor=None if row[4] is None else int(row[4]),
            analyzer_config=_load_analyzer(row[5]),
            document_count=int(row[6]),
            total_terms=int(row[7]),
            unique_terms=int(row[8]),
            fingerprint=int(row[9]),
            placements=(
                decode_placements(row[10]) if row[10] is not None else None
            ),
            merged_terms=(
                decode_merged_terms(row[11]) if row[11] is not None else None
            ),
            segments=tuple(
                SegmentRecord(
                    shard=int(shard),
                    filename=filename,
                    bytes=int(size),
                    document_count=int(docs),
                    crc32=int(crc),
                )
                for shard, filename, size, docs, crc in segment_rows
            ),
        )

    # -- garbage collection --------------------------------------------------

    def collect_garbage(self, keep_generation: int) -> list[str]:
        """Drop every generation except ``keep_generation``; remove files.

        Also sweeps *orphan* segment files — ``<stem>-g*.s*.seg`` files
        next to the manifest that no surviving generation references
        (e.g. segments of a save that crashed before its commit point).
        Returns the deleted filenames. Runs strictly after a successful
        commit, so a crash during GC leaves only harmless extra files.
        """
        with self._connect() as connection:
            connection.execute(
                "DELETE FROM segments WHERE generation != ?",
                (keep_generation,),
            )
            connection.execute(
                "DELETE FROM generations WHERE generation != ?",
                (keep_generation,),
            )
            keep = {
                filename
                for (filename,) in connection.execute(
                    "SELECT filename FROM segments"
                )
            }
        removed = []
        stem = self.path.name
        for candidate in self.path.parent.glob(f"{stem}-g*.s*.seg"):
            if candidate.name not in keep:
                try:
                    candidate.unlink()
                except OSError:
                    continue  # another process raced us; harmless
                removed.append(candidate.name)
        return removed


def segment_filename(manifest_path: str | Path, generation: int, shard: int) -> str:
    """Canonical name for one generation's shard segment file."""
    return f"{Path(manifest_path).name}-g{generation}.s{shard}.seg"


def _dump_analyzer(config: dict) -> str:
    import json

    return json.dumps(config, sort_keys=True)


def _load_analyzer(raw: str) -> dict:
    import json

    try:
        return json.loads(raw)
    except (TypeError, ValueError) as error:
        raise IndexFormatError(
            f"corrupt analyzer configuration in manifest: {error}"
        ) from None
