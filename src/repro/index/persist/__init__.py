"""Durable v3 index persistence: packed segments + a SQLite manifest.

The third on-disk index format, built for warm restarts and read-only
replicas. Where v1/v2 store documents as JSON and **rebuild** postings
on load (re-running the analyzer over the whole corpus), v3 stores the
index itself — postings, positions, term-frequency vectors, documents —
in mmap-packed binary segments catalogued by a SQLite manifest, so a
process attaches to a committed index in O(1) and serves lookups
straight from the page cache.

Public surface:

* :func:`save_v3` — commit a live index as a new generation.
* :func:`attach_packed` / :class:`PackedIndex` /
  :class:`PackedShardedIndex` — O(1) read-only attach.
* :class:`ReplicaIndex` / :class:`GenerationWatcher` — follow a
  writer's commits from any number of serving processes.
* :class:`Manifest` / :class:`GenerationRecord` / :func:`is_v3_manifest`
  — the catalogue layer, exposed for tooling and tests.

Format dispatch (``load_index`` auto-detecting v1/v2/v3) lives in
:mod:`repro.index.storage`, which remains the one entry point for
loading any index file.
"""

from repro.index.persist.manifest import (
    GenerationRecord,
    Manifest,
    SegmentRecord,
    is_v3_manifest,
    segment_filename,
)
from repro.index.persist.packed import (
    PackedIndex,
    PackedShardedIndex,
    attach_packed,
)
from repro.index.persist.replica import (
    DEFAULT_WATCH_INTERVAL,
    GenerationWatcher,
    ReplicaIndex,
)
from repro.index.persist.segment import BLOCK_DOCS, Segment, write_segment
from repro.index.persist.writer import save_v3

__all__ = [
    "BLOCK_DOCS",
    "DEFAULT_WATCH_INTERVAL",
    "GenerationRecord",
    "GenerationWatcher",
    "Manifest",
    "PackedIndex",
    "PackedShardedIndex",
    "ReplicaIndex",
    "Segment",
    "SegmentRecord",
    "attach_packed",
    "is_v3_manifest",
    "save_v3",
    "segment_filename",
    "write_segment",
]
