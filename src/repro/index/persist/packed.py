"""Read-only index views attached over mmap-packed v3 segments.

:class:`PackedIndex` and :class:`PackedShardedIndex` duck-type the
complete *read* surface of :class:`~repro.index.inverted.InvertedIndex`
and :class:`~repro.index.sharding.ShardedIndex` — rankers, scoring
sessions, the search kernel, and all six explainers run against them
unchanged — while serving every lookup from the on-disk segments:

* Attach is O(1) in corpus size: open the manifest, read one generation
  row, ``mmap`` the segment files, parse fixed-size headers. No JSON
  parse, no re-analysis, no posting rebuild.
* Lookups decode lazily (a postings list on first use of its term, a
  document record on first access to its block) and memoize, so a warm
  reader converges on in-memory speed for its working set while cold
  data stays on disk, shared with every other attached process through
  the page cache.
* ``version`` is the generation's *content fingerprint* rather than the
  in-memory mutation counter, so version-keyed caches
  (:class:`~repro.service.store.ResultStore` keys, collection views,
  Doc2Vec models) remain valid across process restarts and agree
  between replicas attached to the same commit.

Mutations raise :class:`~repro.errors.ReadOnlyIndexError`; call
:meth:`hydrate` (or ``load_index(path, mode="memory")``) for a mutable
in-memory copy, rebuilt from the stored term sequences without
re-running the analyzer.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterator

from repro.errors import DocumentNotFoundError, ReadOnlyIndexError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.postings import Posting, PostingsList
from repro.index.sharding import (
    MergedPostings,
    RoundRobinRouter,
    ShardedIndex,
    build_router,
)
from repro.index.stats import CollectionStats
from repro.obs.trace import span as obs_span
from repro.text.analyzer import Analyzer
from repro.index.persist.manifest import GenerationRecord, Manifest
from repro.index.persist.segment import Segment


class _ReadOnlyMutations:
    """Mutation surface shared by every packed view: always refuses."""

    def add(self, document) -> None:
        raise ReadOnlyIndexError("add a document")

    def add_analyzed(self, document, terms) -> None:
        raise ReadOnlyIndexError("add a document")

    def add_documents(self, documents, workers=None) -> int:
        raise ReadOnlyIndexError("add documents")

    def remove(self, doc_id: str):
        raise ReadOnlyIndexError("remove a document")

    def replace(self, document):
        raise ReadOnlyIndexError("replace a document")


class PackedIndex(_ReadOnlyMutations):
    """Read-only single-index view over one packed segment."""

    def __init__(
        self,
        segment: Segment,
        analyzer: Analyzer,
        fingerprint: int,
        storage: dict | None = None,
    ):
        self._segment = segment
        self.analyzer = analyzer
        self._fingerprint = fingerprint
        self._storage = dict(storage or {})
        #: Manifest path this view was attached from (set by
        #: :func:`attach_packed`); the process tier reuses it so worker
        #: processes can re-attach the same index without a re-save.
        self.manifest_path: Path | None = None
        self._documents: dict[int, Document] = {}
        self._vectors: dict[int, Counter[str]] = {}
        self._postings: dict[str, PostingsList | None] = {}

    @property
    def segment(self) -> Segment:
        return self._segment

    def close(self) -> None:
        self._segment.close()

    def storage_info(self) -> dict:
        """On-disk facts for ``GET /index``'s ``storage`` block."""
        return dict(self._storage)

    # -- lookups -------------------------------------------------------------

    def _ordinal(self, doc_id: str) -> int:
        ordinal = self._segment.doc_ordinal(doc_id)
        if ordinal is None:
            raise DocumentNotFoundError(doc_id)
        return ordinal

    def _document_at(self, ordinal: int) -> Document:
        document = self._documents.get(ordinal)
        if document is None:
            title, body, metadata, _ = self._segment.record(ordinal)
            document = Document(
                self._segment.doc_id(ordinal), body, title, metadata
            )
            self._documents[ordinal] = document
        return document

    def document(self, doc_id: str) -> Document:
        return self._document_at(self._ordinal(doc_id))

    def __contains__(self, doc_id: str) -> bool:
        return self._segment.doc_ordinal(doc_id) is not None

    def __len__(self) -> int:
        return self._segment.doc_count

    def __iter__(self) -> Iterator[Document]:
        return (
            self._document_at(ordinal)
            for ordinal in range(self._segment.doc_count)
        )

    @property
    def doc_ids(self) -> list[str]:
        return [
            self._segment.doc_id(ordinal)
            for ordinal in range(self._segment.doc_count)
        ]

    def postings(self, term: str) -> PostingsList | None:
        """Postings for an analyzed term, decoded once and memoized."""
        try:
            return self._postings[term]
        except KeyError:
            pass
        ordinal = self._segment.term_ordinal(term)
        if ordinal is None:
            plist = None
        else:
            plist = PostingsList(term)
            for doc_ordinal, frequency, positions in (
                self._segment.postings_entries(ordinal)
            ):
                plist.add(
                    Posting(
                        self._segment.doc_id(doc_ordinal),
                        frequency,
                        positions,
                    )
                )
        self._postings[term] = plist
        return plist

    def terms(self) -> Iterator[str]:
        return (
            self._segment.term(ordinal)
            for ordinal in range(self._segment.term_count)
        )

    # -- statistics ----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        ordinal = self._segment.term_ordinal(term)
        if ordinal is None:
            return 0
        return self._segment.postings_count(ordinal)

    def collection_frequency(self, term: str) -> int:
        ordinal = self._segment.term_ordinal(term)
        if ordinal is None:
            return 0
        return sum(
            frequency
            for _, frequency, _ in self._segment.postings_entries(ordinal)
        )

    def term_frequency(self, term: str, doc_id: str) -> int:
        return self.term_frequencies(doc_id).get(term, 0)

    def document_length(self, doc_id: str) -> int:
        return self._segment.doc_length(self._ordinal(doc_id))

    def term_vector(self, doc_id: str) -> Counter[str]:
        return Counter(self.term_frequencies(doc_id))

    def term_frequencies(self, doc_id: str) -> Counter[str]:
        """The stored term-frequency vector (memoized; treat as read-only).

        Iteration order is first-occurrence order within the document —
        the segment stores the vector exactly as the in-memory index's
        ``Counter`` iterated it.
        """
        ordinal = self._ordinal(doc_id)
        vector = self._vectors.get(ordinal)
        if vector is None:
            _, _, _, packed = self._segment.record(ordinal)
            vector = Counter()
            for term_ordinal, frequency in packed:
                vector[self._segment.term(term_ordinal)] = frequency
            self._vectors[ordinal] = vector
        return vector

    @property
    def version(self) -> int:
        """Content fingerprint — stable across processes and replicas."""
        return self._fingerprint

    def stats(self) -> CollectionStats:
        return CollectionStats(
            document_count=self._segment.doc_count,
            total_terms=self._segment.total_terms,
            unique_terms=self._segment.term_count,
        )

    @property
    def average_document_length(self) -> float:
        return self.stats().average_document_length

    # -- hydration -----------------------------------------------------------

    def term_sequence(self, ordinal: int) -> list[str]:
        """Reconstruct one document's exact analyzed term sequence.

        Inverted from the stored postings positions: position *p* of
        term *t* in document *d* means ``sequence[p] = t``. Positions
        cover ``0..length-1`` exactly, so the result equals what the
        analyzer produced at indexing time — without re-analysis.
        """
        return _term_sequences(self._segment, only=ordinal)[ordinal]

    def hydrate(self) -> InvertedIndex:
        """Rebuild a mutable in-memory index from the segment."""
        sequences = _term_sequences(self._segment)
        index = InvertedIndex(self.analyzer)
        for ordinal in range(self._segment.doc_count):
            index.add_analyzed(self._document_at(ordinal), sequences[ordinal])
        return index


def _term_sequences(
    segment: Segment, only: int | None = None
) -> dict[int, list[str]]:
    """Invert postings positions into per-document term sequences."""
    sequences: dict[int, list[str]] = (
        {only: [""] * segment.doc_length(only)}
        if only is not None
        else {
            ordinal: [""] * segment.doc_length(ordinal)
            for ordinal in range(segment.doc_count)
        }
    )
    for term_ordinal in range(segment.term_count):
        term = None
        for doc_ordinal, _, positions in segment.postings_entries(term_ordinal):
            sequence = sequences.get(doc_ordinal)
            if sequence is None:
                continue
            if term is None:
                term = segment.term(term_ordinal)
            for position in positions:
                sequence[position] = term
    return sequences


class PackedShardedIndex(_ReadOnlyMutations):
    """Read-only sharded view over one packed segment per shard.

    Duck-types :class:`~repro.index.sharding.ShardedIndex`: ``shards``
    exposes per-shard :class:`PackedIndex` views (the searcher fans
    sparse scoring out over them), merged statistics come from the
    manifest's stored term table, and global insertion order is replayed
    from the stored placements.
    """

    def __init__(
        self,
        shards: tuple[PackedIndex, ...],
        analyzer: Analyzer,
        record: GenerationRecord,
        storage: dict | None = None,
    ):
        self.shards = shards
        self.analyzer = analyzer
        self._record = record
        self._storage = dict(storage or {})
        #: Manifest path this view was attached from (see PackedIndex).
        self.manifest_path: Path | None = None
        self.router = build_router(
            record.router or "hash", record.shard_count
        )
        if isinstance(self.router, RoundRobinRouter) and (
            record.router_cursor is not None
        ):
            self.router.cursor = record.router_cursor
        #: term -> (df, cf) in merged insertion order.
        self._merged: dict[str, tuple[int, int]] = {
            term: (df, cf) for term, df, cf in (record.merged_terms or ())
        }
        self._placements = record.placements or ()
        self._global_ids: list[str] | None = None

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def storage_info(self) -> dict:
        return dict(self._storage)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, doc_id: str) -> int:
        for position, shard in enumerate(self.shards):
            if doc_id in shard:
                return position
        raise DocumentNotFoundError(doc_id)

    # -- lookups -------------------------------------------------------------

    def _global_doc_ids(self) -> list[str]:
        """Doc ids in global insertion order, replayed from placements.

        Each shard's segment stores its documents in shard insertion
        order — a subsequence of global order — so walking the placement
        sequence with one cursor per shard reproduces the global order.
        """
        if self._global_ids is None:
            cursors = [0] * len(self.shards)
            ids: list[str] = []
            for shard in self._placements:
                segment = self.shards[shard].segment
                ids.append(segment.doc_id(cursors[shard]))
                cursors[shard] += 1
            self._global_ids = ids
        return self._global_ids

    def document(self, doc_id: str) -> Document:
        return self.shards[self.shard_of(doc_id)].document(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return any(doc_id in shard for shard in self.shards)

    def __len__(self) -> int:
        return self._record.document_count

    def __iter__(self) -> Iterator[Document]:
        return (self.document(doc_id) for doc_id in self._global_doc_ids())

    @property
    def doc_ids(self) -> list[str]:
        return list(self._global_doc_ids())

    def postings(self, term: str) -> MergedPostings | None:
        parts = [
            postings
            for postings in (shard.postings(term) for shard in self.shards)
            if postings is not None
        ]
        if not parts:
            return None
        return MergedPostings(term, parts)

    def terms(self) -> Iterator[str]:
        return iter(list(self._merged))

    # -- statistics ----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        entry = self._merged.get(term)
        return entry[0] if entry else 0

    def collection_frequency(self, term: str) -> int:
        entry = self._merged.get(term)
        return entry[1] if entry else 0

    def term_frequency(self, term: str, doc_id: str) -> int:
        return self.shards[self.shard_of(doc_id)].term_frequency(term, doc_id)

    def document_length(self, doc_id: str) -> int:
        return self.shards[self.shard_of(doc_id)].document_length(doc_id)

    def term_vector(self, doc_id: str) -> Counter[str]:
        return self.shards[self.shard_of(doc_id)].term_vector(doc_id)

    def term_frequencies(self, doc_id: str) -> Counter[str]:
        return self.shards[self.shard_of(doc_id)].term_frequencies(doc_id)

    @property
    def version(self) -> int:
        """Content fingerprint — stable across processes and replicas."""
        return self._record.fingerprint

    def stats(self) -> CollectionStats:
        return CollectionStats(
            document_count=self._record.document_count,
            total_terms=self._record.total_terms,
            unique_terms=len(self._merged),
        )

    @property
    def average_document_length(self) -> float:
        return self.stats().average_document_length

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    # -- hydration -----------------------------------------------------------

    def hydrate(self) -> ShardedIndex:
        """Rebuild a mutable in-memory sharded index, layout preserved."""
        per_shard = [_term_sequences(shard.segment) for shard in self.shards]
        cursors = [0] * len(self.shards)

        def placements():
            for shard in self._placements:
                ordinal = cursors[shard]
                cursors[shard] += 1
                yield (
                    self.shards[shard]._document_at(ordinal),
                    per_shard[shard][ordinal],
                    shard,
                )

        return ShardedIndex.from_analyzed_placements(
            placements(),
            self._record.shard_count,
            self.analyzer,
            router=build_router(
                self._record.router or "hash", self._record.shard_count
            ),
            cursor=self._record.router_cursor,
        )


def attach_packed(
    path: str | Path, record: GenerationRecord | None = None
) -> PackedIndex | PackedShardedIndex:
    """Attach read-only packed views over the index at ``path``.

    Opens the latest committed generation (or the given ``record``),
    maps its segments, and returns the matching packed view. O(1) in
    corpus size — only fixed-size headers are parsed.
    """
    with obs_span("persist/attach", path=str(path)) as span:
        return _attach_packed(path, record, span)


def _attach_packed(
    path: str | Path, record: GenerationRecord | None, span
) -> PackedIndex | PackedShardedIndex:
    path = Path(path)
    manifest = Manifest.open(path)
    if record is None:
        record = manifest.latest_generation()
        if record is None:
            from repro.errors import IndexFormatError

            raise IndexFormatError(
                f"index manifest {path} has no committed generation"
            )
    span.set(generation=record.generation, segments=len(record.segments))
    analyzer = Analyzer.from_config(record.analyzer_config)
    bytes_on_disk = path.stat().st_size + sum(
        segment.bytes for segment in record.segments
    )
    storage = {
        "format": "v3",
        "bytes_on_disk": bytes_on_disk,
        "generation": record.generation,
    }
    segments = [
        Segment(path.parent / segment.filename)
        for segment in record.segments
    ]
    if record.layout == "single":
        packed = PackedIndex(
            segments[0], analyzer, record.fingerprint, storage
        )
        packed.manifest_path = path
        return packed
    shards = tuple(
        PackedIndex(
            segment,
            analyzer,
            # Per-shard sub-fingerprint: distinct from the collection's
            # and from other shards', but content-derived all the same.
            (record.fingerprint << 4) | (position + 1),
            storage,
        )
        for position, segment in enumerate(segments)
    )
    sharded = PackedShardedIndex(shards, analyzer, record, storage)
    sharded.manifest_path = path
    return sharded
