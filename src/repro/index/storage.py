"""JSON persistence for indexes and corpora.

The on-disk format stores the documents plus the analyzer configuration;
postings are rebuilt on load (analysis is deterministic), which keeps the
format small, versioned, and forward-compatible.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.text.analyzer import Analyzer

FORMAT_VERSION = 1


def save_index(index: InvertedIndex, path: str | Path) -> None:
    """Serialise ``index`` (documents + analyzer config) to ``path``.

    The analyzer block is produced by :meth:`Analyzer.to_config`, which
    enumerates the analyzer's fields — adding an analyzer option can no
    longer desync save from load.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "analyzer": index.analyzer.to_config(),
        "documents": [document.to_dict() for document in index],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False, indent=None)


def load_index(path: str | Path) -> InvertedIndex:
    """Load an index previously written by :func:`save_index`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported index format version: {version!r}")
    # FORMAT_VERSION 1 payloads carried exactly the four original fields;
    # from_config accepts any subset of known fields, so they keep loading.
    analyzer = Analyzer.from_config(payload["analyzer"])
    documents = (Document.from_dict(raw) for raw in payload["documents"])
    return InvertedIndex.from_documents(documents, analyzer)
