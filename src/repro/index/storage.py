"""Index persistence: one entry point over three on-disk formats.

:func:`save_index` / :func:`load_index` dispatch across every format the
library has ever written, detected from the file itself — callers never
name a version to load:

* **v1** — one JSON file holding a single index's documents. Postings
  are rebuilt on load by re-running the analyzer. Still written by
  default for :class:`~repro.index.inverted.InvertedIndex` and still
  loaded byte-identically.
* **v2** — a JSON manifest plus one JSON file per shard, written by
  default for :class:`~repro.index.sharding.ShardedIndex`. The manifest
  records the shard count, the router, and every document's placement
  in global insertion order, so a reload reproduces the exact shard
  layout and every order-dependent tie-break — a stateful router is
  never re-run at load time.
* **v3** — the packed format (:mod:`repro.index.persist`): mmap-packed
  binary segments holding postings and documents, catalogued by a
  SQLite manifest. Loading *attaches* in O(1) — no JSON parse, no
  re-analysis, no posting rebuild — returning a read-only packed view;
  ``mode="memory"`` hydrates a mutable in-memory index instead.

Detection: a SQLite file (magic bytes) is v3; JSON payloads dispatch on
``format_version``. Anything unreadable raises
:class:`~repro.errors.IndexFormatError` (a ``ReproError`` and a
``ValueError``) rather than leaking ``JSONDecodeError``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import IndexFormatError
from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.sharding import (
    ROUTER_CHOICES,
    RoundRobinRouter,
    ShardedIndex,
    build_router,
)
from repro.text.analyzer import Analyzer

FORMAT_VERSION = 1

#: Manifest version for sharded indexes (per-shard payload files).
SHARDED_FORMAT_VERSION = 2

#: Format names accepted by :func:`save_index` and the CLI.
FORMAT_CHOICES = ("v1", "v2", "v3")


def _shard_name(manifest_path: Path, shard: int, generation: int) -> str:
    """Shard files live next to the manifest, named per generation.

    The generation (the index's mutation version at save time) keeps a
    re-save from overwriting the shard files a still-committed older
    manifest references — see the crash-safety notes in
    :func:`_save_sharded`.
    """
    return f"{manifest_path.stem}.shard-{shard:02d}-g{generation}.json"


def _write_json(path: Path, payload: dict) -> None:
    """Write JSON atomically: temp file in the same directory + rename.

    A reader (or a crash) can therefore only ever observe a complete
    old file or a complete new file, never a truncated one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False, indent=None)
    temp.replace(path)


def save_index(
    index: InvertedIndex | ShardedIndex,
    path: str | Path,
    format: str | None = None,
) -> None:
    """Serialise ``index`` to ``path`` in the requested format.

    ``format`` is one of :data:`FORMAT_CHOICES`; ``None`` keeps the
    legacy default — the JSON family, where a plain index writes one v1
    file and a sharded index writes a v2 manifest plus one
    generation-named ``<stem>.shard-NN-g<version>.json`` file per shard.
    (``"v1"`` and ``"v2"`` both name that family: the layout follows
    the index type, so a plain index saved as ``"v2"`` writes a v1
    file.) ``"v3"`` commits the packed format for either index type —
    see :func:`repro.index.persist.save_v3`.

    Every format is crash-safe: files land via atomic temp-file renames
    or fsynced segments, data files precede the commit point (the v2
    manifest rename, the v3 SQLite transaction), and superseded
    generations are garbage-collected only after the new commit is
    durable — an interrupted save always leaves the previous save
    loadable.

    The analyzer block is produced by :meth:`Analyzer.to_config`, which
    enumerates the analyzer's fields — adding an analyzer option can no
    longer desync save from load.
    """
    if format is not None and format not in FORMAT_CHOICES:
        raise IndexFormatError(
            f"format must be one of {FORMAT_CHOICES}, got {format!r}"
        )
    path = Path(path)
    if format == "v3":
        from repro.index.persist import save_v3

        save_v3(index, path)
        return
    if isinstance(index, ShardedIndex):
        _save_sharded(index, path)
        return
    payload = {
        "format_version": FORMAT_VERSION,
        "analyzer": index.analyzer.to_config(),
        "documents": [document.to_dict() for document in index],
    }
    _write_json(path, payload)


def _save_sharded(index: ShardedIndex, path: Path) -> None:
    # One atomic snapshot: placements, shard contents, version, and
    # router state must come from the same instant, or a save concurrent
    # with mutation could write a manifest that disagrees with its shard
    # files (silently dropping the disagreeing documents on load).
    placements, shard_documents, generation, cursor = index.export_state()
    shard_names = [
        _shard_name(path, shard, generation)
        for shard in range(index.shard_count)
    ]
    manifest = {
        "format_version": SHARDED_FORMAT_VERSION,
        "analyzer": index.analyzer.to_config(),
        "shard_count": index.shard_count,
        "router": index.router.name,
        "shard_files": shard_names,
        # Global insertion order with each document's shard: the load
        # side replays this verbatim instead of re-routing.
        "placements": [[doc_id, shard] for doc_id, shard in placements],
    }
    if cursor is not None:
        # The cycle position cannot be derived from the placements once
        # documents have been removed; persist it explicitly.
        manifest["router_cursor"] = cursor
    # Crash safety: shard files are written first under generation-unique
    # names (never overwriting what an older committed manifest points
    # at), each via an atomic temp-file rename; the manifest rename is
    # the commit point. A crash anywhere leaves the previous save fully
    # loadable; stale generations are garbage-collected only after the
    # new manifest is durable.
    for shard_position, (name, documents) in enumerate(
        zip(shard_names, shard_documents)
    ):
        _write_json(
            path.with_name(name),
            {
                "shard": shard_position,
                "documents": [document.to_dict() for document in documents],
            },
        )
    _write_json(path, manifest)
    referenced = set(shard_names)
    for leftover in path.parent.glob(f"{path.stem}.shard-*.json"):
        if leftover.name not in referenced:
            leftover.unlink()


def detect_format(path: str | Path) -> str:
    """Probe which on-disk format ``path`` holds (``"v1"/"v2"/"v3"``).

    v3 is recognised by the SQLite magic bytes; JSON payloads dispatch
    on their ``format_version`` field. Raises
    :class:`~repro.errors.IndexFormatError` for anything else.
    """
    from repro.index.persist import is_v3_manifest

    path = Path(path)
    if not path.exists():
        # A missing path is an I/O condition, not a format one; keep the
        # long-standing FileNotFoundError contract.
        raise FileNotFoundError(path)
    if is_v3_manifest(path):
        return "v3"
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise IndexFormatError(
            f"{path} is not a recognised index file (not a v3 manifest, "
            f"not a v1/v2 JSON payload): {error}"
        ) from None
    version = payload.get("format_version") if isinstance(payload, dict) else None
    if version == FORMAT_VERSION:
        return "v1"
    if version == SHARDED_FORMAT_VERSION:
        return "v2"
    raise IndexFormatError(
        f"unsupported index format version: {version!r}"
    )


def load_index(path: str | Path, mode: str = "auto"):
    """Load an index previously written by :func:`save_index`.

    The format is auto-detected from the file (see :func:`detect_format`)
    — v1/v2 payloads keep loading exactly as before, rebuilding an
    in-memory index; a v3 manifest *attaches* read-only packed views
    over its segments in O(1).

    ``mode`` controls what a v3 path yields: ``"auto"`` returns the
    packed read-only view (warm restart); ``"memory"`` hydrates a
    mutable :class:`InvertedIndex` / :class:`ShardedIndex` from the
    stored term sequences (no re-analysis). v1/v2 are always in-memory,
    so ``mode`` is a no-op for them.
    """
    if mode not in ("auto", "memory"):
        raise IndexFormatError(
            f"load mode must be 'auto' or 'memory', got {mode!r}"
        )
    path = Path(path)
    version = detect_format(path)
    if version == "v3":
        from repro.index.persist import attach_packed

        packed = attach_packed(path)
        if mode == "memory":
            try:
                return packed.hydrate()
            finally:
                packed.close()
        return packed
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if version == "v1":
        # FORMAT_VERSION 1 payloads carried exactly the four original
        # fields; from_config accepts any subset of known fields, so
        # they keep loading.
        analyzer = Analyzer.from_config(payload["analyzer"])
        documents = (Document.from_dict(raw) for raw in payload["documents"])
        return InvertedIndex.from_documents(documents, analyzer)
    return _load_sharded(payload, path)


def _load_sharded(manifest: dict, path: Path) -> ShardedIndex:
    analyzer = Analyzer.from_config(manifest["analyzer"])
    shard_count = manifest["shard_count"]
    router_name = manifest.get("router", "hash")
    if router_name not in ROUTER_CHOICES:
        raise IndexFormatError(f"unsupported shard router: {router_name!r}")
    documents: dict[str, Document] = {}
    for name in manifest["shard_files"]:
        try:
            with path.with_name(name).open("r", encoding="utf-8") as handle:
                shard_payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise IndexFormatError(
                f"cannot read shard file {name!r}: {error}"
            ) from None
        for raw in shard_payload["documents"]:
            document = Document.from_dict(raw)
            documents[document.doc_id] = document
    try:
        placements = [
            (documents[doc_id], shard)
            for doc_id, shard in manifest["placements"]
        ]
    except KeyError as missing:
        raise IndexFormatError(
            f"manifest places unknown document {missing.args[0]!r}"
        ) from None
    index = ShardedIndex.from_placements(
        placements,
        shard_count,
        analyzer,
        router=build_router(router_name, shard_count),
    )
    cursor = manifest.get("router_cursor")
    if cursor is not None and isinstance(index.router, RoundRobinRouter):
        index.router.cursor = cursor
    return index
