"""JSON persistence for indexes and corpora.

The on-disk format stores the documents plus the analyzer configuration;
postings are rebuilt on load (analysis is deterministic), which keeps the
format small, versioned, and forward-compatible.

Two format versions coexist:

* **v1** — one JSON file holding a single index's documents. Still
  written for :class:`~repro.index.inverted.InvertedIndex` and still
  loaded unchanged.
* **v2** — a manifest plus one JSON file per shard, written for
  :class:`~repro.index.sharding.ShardedIndex`. The manifest records the
  shard count, the router, and every document's placement in global
  insertion order, so a reload reproduces the exact shard layout and
  every order-dependent tie-break — a stateful router is never re-run
  at load time.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.index.document import Document
from repro.index.inverted import InvertedIndex
from repro.index.sharding import (
    ROUTER_CHOICES,
    RoundRobinRouter,
    ShardedIndex,
    build_router,
)
from repro.text.analyzer import Analyzer

FORMAT_VERSION = 1

#: Manifest version for sharded indexes (per-shard payload files).
SHARDED_FORMAT_VERSION = 2


def _shard_name(manifest_path: Path, shard: int, generation: int) -> str:
    """Shard files live next to the manifest, named per generation.

    The generation (the index's mutation version at save time) keeps a
    re-save from overwriting the shard files a still-committed older
    manifest references — see the crash-safety notes in
    :func:`_save_sharded`.
    """
    return f"{manifest_path.stem}.shard-{shard:02d}-g{generation}.json"


def _write_json(path: Path, payload: dict) -> None:
    """Write JSON atomically: temp file in the same directory + rename.

    A reader (or a crash) can therefore only ever observe a complete
    old file or a complete new file, never a truncated one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False, indent=None)
    temp.replace(path)


def save_index(index: InvertedIndex | ShardedIndex, path: str | Path) -> None:
    """Serialise ``index`` (documents + analyzer config) to ``path``.

    A plain index writes one v1 file. A sharded index writes a v2
    manifest at ``path`` plus one generation-named
    ``<stem>.shard-NN-g<version>.json`` file per shard. Writes are
    crash-safe: every file lands via an atomic temp-file rename, shard
    files precede the manifest (the commit point), and shard files from
    superseded saves are garbage-collected only after the new manifest
    is durable — an interrupted save always leaves the previous save
    loadable.

    The analyzer block is produced by :meth:`Analyzer.to_config`, which
    enumerates the analyzer's fields — adding an analyzer option can no
    longer desync save from load.
    """
    path = Path(path)
    if isinstance(index, ShardedIndex):
        _save_sharded(index, path)
        return
    payload = {
        "format_version": FORMAT_VERSION,
        "analyzer": index.analyzer.to_config(),
        "documents": [document.to_dict() for document in index],
    }
    _write_json(path, payload)


def _save_sharded(index: ShardedIndex, path: Path) -> None:
    # One atomic snapshot: placements, shard contents, version, and
    # router state must come from the same instant, or a save concurrent
    # with mutation could write a manifest that disagrees with its shard
    # files (silently dropping the disagreeing documents on load).
    placements, shard_documents, generation, cursor = index.export_state()
    shard_names = [
        _shard_name(path, shard, generation)
        for shard in range(index.shard_count)
    ]
    manifest = {
        "format_version": SHARDED_FORMAT_VERSION,
        "analyzer": index.analyzer.to_config(),
        "shard_count": index.shard_count,
        "router": index.router.name,
        "shard_files": shard_names,
        # Global insertion order with each document's shard: the load
        # side replays this verbatim instead of re-routing.
        "placements": [[doc_id, shard] for doc_id, shard in placements],
    }
    if cursor is not None:
        # The cycle position cannot be derived from the placements once
        # documents have been removed; persist it explicitly.
        manifest["router_cursor"] = cursor
    # Crash safety: shard files are written first under generation-unique
    # names (never overwriting what an older committed manifest points
    # at), each via an atomic temp-file rename; the manifest rename is
    # the commit point. A crash anywhere leaves the previous save fully
    # loadable; stale generations are garbage-collected only after the
    # new manifest is durable.
    for shard_position, (name, documents) in enumerate(
        zip(shard_names, shard_documents)
    ):
        _write_json(
            path.with_name(name),
            {
                "shard": shard_position,
                "documents": [document.to_dict() for document in documents],
            },
        )
    _write_json(path, manifest)
    referenced = set(shard_names)
    for leftover in path.parent.glob(f"{path.stem}.shard-*.json"):
        if leftover.name not in referenced:
            leftover.unlink()


def load_index(path: str | Path) -> InvertedIndex | ShardedIndex:
    """Load an index previously written by :func:`save_index`.

    Dispatches on the payload's ``format_version``: v1 single-index
    payloads keep loading exactly as before; v2 manifests rebuild a
    :class:`ShardedIndex` with its recorded layout.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version == FORMAT_VERSION:
        # FORMAT_VERSION 1 payloads carried exactly the four original
        # fields; from_config accepts any subset of known fields, so
        # they keep loading.
        analyzer = Analyzer.from_config(payload["analyzer"])
        documents = (Document.from_dict(raw) for raw in payload["documents"])
        return InvertedIndex.from_documents(documents, analyzer)
    if version == SHARDED_FORMAT_VERSION:
        return _load_sharded(payload, path)
    raise ValueError(f"unsupported index format version: {version!r}")


def _load_sharded(manifest: dict, path: Path) -> ShardedIndex:
    analyzer = Analyzer.from_config(manifest["analyzer"])
    shard_count = manifest["shard_count"]
    router_name = manifest.get("router", "hash")
    if router_name not in ROUTER_CHOICES:
        raise ValueError(f"unsupported shard router: {router_name!r}")
    documents: dict[str, Document] = {}
    for name in manifest["shard_files"]:
        with path.with_name(name).open("r", encoding="utf-8") as handle:
            shard_payload = json.load(handle)
        for raw in shard_payload["documents"]:
            document = Document.from_dict(raw)
            documents[document.doc_id] = document
    try:
        placements = [
            (documents[doc_id], shard)
            for doc_id, shard in manifest["placements"]
        ]
    except KeyError as missing:
        raise ValueError(
            f"manifest places unknown document {missing.args[0]!r}"
        ) from None
    index = ShardedIndex.from_placements(
        placements,
        shard_count,
        analyzer,
        router=build_router(router_name, shard_count),
    )
    cursor = manifest.get("router_cursor")
    if cursor is not None and isinstance(index.router, RoundRobinRouter):
        index.router.cursor = cursor
    return index
