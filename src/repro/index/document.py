"""The :class:`Document` record stored in the index/corpus.

The paper's ranking function "assesses rank using only the body of each
document" (§II-A); the title and metadata exist for display and dataset
bookkeeping only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class Document:
    """An immutable corpus document.

    Attributes:
        doc_id: Unique, stable identifier within a corpus.
        body: Full text used for ranking.
        title: Optional display title (never used by rankers).
        metadata: Free-form dataset annotations (e.g. ``{"fake_news": True}``).
    """

    doc_id: str
    body: str
    title: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")

    def with_body(self, body: str) -> "Document":
        """Return a copy of this document with a replaced body.

        Used by the counterfactual algorithms: a perturbed document keeps
        the original identity so it can be *substituted* during re-ranking.
        """
        return Document(self.doc_id, body, self.title, dict(self.metadata))

    def to_dict(self) -> dict[str, Any]:
        return {
            "doc_id": self.doc_id,
            "body": self.body,
            "title": self.title,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Document":
        return cls(
            doc_id=payload["doc_id"],
            body=payload["body"],
            title=payload.get("title", ""),
            metadata=dict(payload.get("metadata", {})),
        )
