"""Sharded corpus backend: N inverted-index shards behind one surface.

A :class:`ShardedIndex` routes every document to one of N
:class:`~repro.index.inverted.InvertedIndex` shards through a
:class:`ShardRouter` and exposes the *exact* read/write surface of a
single index, so rankers, scoring sessions, the search kernel, and the
explainers work against it unchanged. Correctness hinges on two merged
views:

* :class:`MergedStats` maintains corpus-level statistics (document
  frequency, collection frequency, total terms, document count)
  incrementally on every add/remove. They are integer sums, so BM25 /
  TF-IDF / LM scores computed against a sharded corpus are
  **byte-identical** to the single-shard index.
* Global insertion order is tracked across shards (``doc_ids``,
  ``__iter__``, and ``terms()`` replay it), so every
  order-dependent tie-break — ranked retrieval, ``Ranking.from_scores``,
  Doc2Vec training order — is preserved exactly.

Bulk ingestion (:meth:`ShardedIndex.add_documents`) partitions the batch
by shard and ingests the partitions on a transient per-call thread
pool, sharing one per-ingest :class:`AnalysisMemo` so each distinct
surface form is analyzed once.
On CPython with the GIL the win is architectural (the memo plus batched
shard construction); on free-threaded builds the per-shard workers also
scale with cores. Ingestion is all-or-nothing: a failing batch is rolled
back before the error propagates.
"""

from __future__ import annotations

import threading
import zlib
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError, DocumentNotFoundError
from repro.index.document import Document
from repro.index.inverted import IndexSnapshot, InvertedIndex
from repro.index.postings import Posting, PostingsList
from repro.index.stats import CollectionStats
from repro.text.analyzer import Analyzer, default_analyzer
from repro.text.tokenizer import iter_tokens
from repro.utils.validation import require_positive

#: Router names accepted by :func:`build_router` and the v2 index format.
ROUTER_CHOICES = ("hash", "round-robin")


class ShardRouter(ABC):
    """Assigns each document id to a shard at ingestion time.

    Routing happens exactly once per document (the assignment is recorded
    by the :class:`ShardedIndex`), so a stateful router like round-robin
    stays consistent under later lookups, removals, and replacement.
    """

    def __init__(self, shard_count: int):
        require_positive(shard_count, "shard_count")
        self.shard_count = shard_count

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable router name used by persistence (see ROUTER_CHOICES)."""

    @abstractmethod
    def route(self, doc_id: str) -> int:
        """The shard (``0 .. shard_count-1``) that should hold ``doc_id``."""


class HashRouter(ShardRouter):
    """Deterministic content-addressed routing: ``crc32(doc_id) % N``.

    CRC32 rather than Python's ``hash()`` because the latter is salted
    per process — placements must be reproducible across runs and match
    what a persisted index recorded.
    """

    @property
    def name(self) -> str:
        return "hash"

    def route(self, doc_id: str) -> int:
        return zlib.crc32(doc_id.encode("utf-8")) % self.shard_count


class RoundRobinRouter(ShardRouter):
    """Cycles through the shards, balancing counts exactly.

    Stateful: the n-th routed document lands on shard ``n % N``. The
    :class:`ShardedIndex` records each assignment, so reloading a
    persisted index replays recorded placements instead of re-routing.
    """

    def __init__(self, shard_count: int):
        super().__init__(shard_count)
        self._next = 0

    @property
    def name(self) -> str:
        return "round-robin"

    @property
    def cursor(self) -> int:
        """The shard the next routed document will land on.

        Persisted by the v2 index format and restored on load, so a
        reloaded index continues the cycle exactly where the saved one
        left off — a derived value (e.g. surviving-document count) would
        drift after removals.
        """
        return self._next

    @cursor.setter
    def cursor(self, value: int) -> None:
        if not 0 <= value < self.shard_count:
            raise ConfigurationError(
                f"cursor must be in [0, {self.shard_count}), got {value}"
            )
        self._next = value

    def route(self, doc_id: str) -> int:
        shard = self._next
        self._next = (self._next + 1) % self.shard_count
        return shard


def build_router(name: str, shard_count: int) -> ShardRouter:
    """Construct a router by persistable name (see :data:`ROUTER_CHOICES`)."""
    if name == "hash":
        return HashRouter(shard_count)
    if name == "round-robin":
        return RoundRobinRouter(shard_count)
    raise ConfigurationError(
        f"router must be one of {ROUTER_CHOICES}, got {name!r}"
    )


class MergedStats:
    """Corpus-level statistics maintained across shards, incrementally.

    Document frequency and collection frequency are integer sums over
    shards, updated on every add/remove, so reads are O(1) — no fan-out.
    The term dict mirrors a single index's postings-dict ordering
    exactly: a term is inserted when its global df first becomes
    positive, deleted when it returns to zero, and re-appended on
    re-introduction, which keeps ``terms()`` byte-compatible with
    :meth:`InvertedIndex.terms`.
    """

    def __init__(self):
        #: term -> [document_frequency, collection_frequency]
        self._terms: dict[str, list[int]] = {}
        self.document_count = 0
        self.total_terms = 0

    def add_document(self, terms: Sequence[str]) -> None:
        """Account for one added document given its analyzed terms."""
        counts: dict[str, int] = {}
        for term in terms:  # first-occurrence order, like postings creation
            counts[term] = counts.get(term, 0) + 1
        merged = self._terms
        for term, frequency in counts.items():
            entry = merged.get(term)
            if entry is None:
                merged[term] = [1, frequency]
            else:
                entry[0] += 1
                entry[1] += frequency
        self.document_count += 1
        self.total_terms += len(terms)

    def remove_document(self, counts: Mapping[str, int], length: int) -> None:
        """Account for one removed document given its term-frequency vector."""
        merged = self._terms
        for term, frequency in counts.items():
            entry = merged[term]
            entry[0] -= 1
            entry[1] -= frequency
            if entry[0] == 0:
                del merged[term]
        self.document_count -= 1
        self.total_terms -= length

    def document_frequency(self, term: str) -> int:
        entry = self._terms.get(term)
        return entry[0] if entry else 0

    def collection_frequency(self, term: str) -> int:
        entry = self._terms.get(term)
        return entry[1] if entry else 0

    @property
    def unique_terms(self) -> int:
        return len(self._terms)

    def terms(self) -> list[str]:
        return list(self._terms)

    def stats(self) -> CollectionStats:
        return CollectionStats(
            document_count=self.document_count,
            total_terms=self.total_terms,
            unique_terms=len(self._terms),
        )


@dataclass(frozen=True)
class ShardedSnapshot:
    """One atomic read snapshot of a :class:`ShardedIndex`.

    Captured under the sharded index's lock by
    :meth:`ShardedIndex.export_snapshot`: per-shard
    :class:`~repro.index.inverted.IndexSnapshot`\\ s, the global
    placement order, and the merged term statistics in their merged
    insertion order (what :meth:`ShardedIndex.terms` replays), all from
    the same instant.
    """

    shard_snapshots: tuple[IndexSnapshot, ...]
    placements: tuple[tuple[str, int], ...]
    merged_terms: tuple[tuple[str, int, int], ...]
    router: str
    cursor: int | None
    version: int
    document_count: int
    total_terms: int


_ABSENT = object()


class AnalysisMemo:
    """Per-ingest memo of raw token text → analyzed term (or None).

    :meth:`Analyzer.analyze_token` is deterministic and per-token
    independent, so caching it by surface form produces byte-identical
    term sequences while skipping the normalize/stopword/stem pipeline
    for every repeated token — the dominant cost of bulk ingestion.
    Shared across ingest workers; concurrent recomputation of the same
    token is benign (both writers store the same value).
    """

    def __init__(self, analyzer: Analyzer):
        self.analyzer = analyzer
        self._memo: dict[str, str | None] = {}

    def analyze(self, text: str) -> list[str]:
        """``analyzer.analyze(text)``, memoized per distinct token."""
        memo = self._memo
        analyze_token = self.analyzer.analyze_token
        terms: list[str] = []
        append = terms.append
        for token in iter_tokens(text):
            raw = token.text
            term = memo.get(raw, _ABSENT)
            if term is _ABSENT:
                term = analyze_token(raw)
                memo[raw] = term
            if term is not None:
                append(term)
        return terms

    def __len__(self) -> int:
        return len(self._memo)


class MergedPostings:
    """Read-only merged view of one term's postings across shards.

    Duck-types the read surface of
    :class:`~repro.index.postings.PostingsList` (iteration, ``get``,
    df/cf, membership). Iteration yields shard 0's postings first, then
    shard 1's, and so on — callers that need global corpus order
    (phrase/boolean search) already re-sort by ``doc_ids``, and scoring
    accumulates per document, so the inter-shard order is never
    observable in results.
    """

    def __init__(self, term: str, parts: Sequence[PostingsList]):
        self.term = term
        self._parts = tuple(parts)

    def get(self, doc_id: str) -> Posting | None:
        for part in self._parts:
            posting = part.get(doc_id)
            if posting is not None:
                return posting
        return None

    @property
    def document_frequency(self) -> int:
        return sum(len(part) for part in self._parts)

    @property
    def collection_frequency(self) -> int:
        return sum(part.collection_frequency for part in self._parts)

    def __iter__(self) -> Iterator[Posting]:
        for part in self._parts:
            yield from part

    def __len__(self) -> int:
        return self.document_frequency

    def __contains__(self, doc_id: str) -> bool:
        return any(doc_id in part for part in self._parts)


def analyze_in_processes(analyzer, documents, workers: int | None) -> list:
    """Analyze document bodies in worker processes; returns per-document
    term lists in input order.

    The GIL-escape path for bulk ingest: bodies are split into
    contiguous chunks (one per worker) and each worker runs the same
    memoized :class:`AnalysisMemo` pipeline over an analyzer rebuilt
    from the identical configuration — so the output is byte-identical
    to local analysis, only computed on other cores.
    """
    # Lazy, call-scoped import: the process pool lives in the service
    # layer; importing it at module load would cycle the layering.
    from repro.service.process import analysis_pool

    worker_count = max(1, min(workers or 1, len(documents)))
    chunk = -(-len(documents) // worker_count)  # ceil division
    partitions = [
        [document.body for document in documents[start:start + chunk]]
        for start in range(0, len(documents), chunk)
    ]
    with analysis_pool(analyzer, len(partitions)) as pool:
        buckets = pool.analyze_partitions(partitions)
    return [terms for bucket in buckets for terms in bucket]


class ShardedIndex:
    """N inverted-index shards behind the single-index surface.

    Drop-in for :class:`~repro.index.inverted.InvertedIndex` everywhere
    a corpus is read or mutated: rankers, sessions, searchers, storage,
    and the engine accept either. Scores, ranks, and explanation output
    are byte-identical to a single-shard index over the same documents
    (pinned by ``tests/index/test_sharded_equivalence.py``).

    Thread safety matches the single index: a reentrant lock guards the
    assignment table, the merged statistics, and multi-step reads; each
    shard additionally carries its own lock, which is what lets bulk
    ingestion write shards concurrently.
    """

    def __init__(
        self,
        shard_count: int = 2,
        analyzer: Analyzer | None = None,
        router: ShardRouter | None = None,
    ):
        require_positive(shard_count, "shard_count")
        self.analyzer = analyzer or default_analyzer()
        self.shards: tuple[InvertedIndex, ...] = tuple(
            InvertedIndex(self.analyzer) for _ in range(shard_count)
        )
        if router is None:
            router = HashRouter(shard_count)
        elif router.shard_count != shard_count:
            raise ConfigurationError(
                f"router expects {router.shard_count} shards, index has "
                f"{shard_count}"
            )
        self.router = router
        #: doc_id -> shard position, in global insertion order.
        self._assignments: dict[str, int] = {}
        self._merged = MergedStats()
        self._version = 0
        self._lock = threading.RLock()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Document],
        shard_count: int = 2,
        analyzer: Analyzer | None = None,
        router: ShardRouter | None = None,
        workers: int | None = None,
        executor: str | None = None,
    ) -> "ShardedIndex":
        index = cls(shard_count, analyzer, router)
        index.add_documents(documents, workers=workers, executor=executor)
        return index

    @classmethod
    def from_placements(
        cls,
        placements: Iterable[tuple[Document, int]],
        shard_count: int,
        analyzer: Analyzer | None = None,
        router: ShardRouter | None = None,
    ) -> "ShardedIndex":
        """Rebuild an index from recorded (document, shard) placements.

        The persistence layer uses this so a reloaded index keeps the
        exact shard layout and global insertion order it was saved with,
        regardless of router statefulness. A restored round-robin router
        defaults to resuming after the replayed documents; callers with
        the saved cursor (the v2 manifest records it) should set
        ``router.cursor`` afterwards, since the replayed count drifts
        from the true cycle position once documents have been removed.
        """
        index = cls(shard_count, analyzer, router)
        memo = AnalysisMemo(index.analyzer)
        count = 0
        with index._lock:
            for document, shard in placements:
                if not 0 <= shard < shard_count:
                    raise ConfigurationError(
                        f"placement shard {shard} out of range for "
                        f"{shard_count} shards"
                    )
                if document.doc_id in index._assignments:
                    raise ValueError(
                        f"duplicate document id: {document.doc_id!r}"
                    )
                index._add_routed(document, memo.analyze(document.body), shard)
                count += 1
            index._version += count
            if isinstance(index.router, RoundRobinRouter):
                index.router.cursor = count % shard_count
        return index

    @classmethod
    def from_analyzed_placements(
        cls,
        placements: Iterable[tuple[Document, list[str], int]],
        shard_count: int,
        analyzer: Analyzer | None = None,
        router: ShardRouter | None = None,
        cursor: int | None = None,
    ) -> "ShardedIndex":
        """Rebuild an index from (document, analyzed terms, shard) triples.

        The attach hook for the packed v3 persistence layer: segments
        already store every document's exact term sequence, so hydration
        rebuilds postings without re-running the analyzer —
        ``terms`` must be exactly ``analyzer.analyze(document.body)``
        for each document, in global insertion order. ``cursor``
        restores a round-robin router's cycle position.
        """
        index = cls(shard_count, analyzer, router)
        count = 0
        with index._lock:
            for document, terms, shard in placements:
                if not 0 <= shard < shard_count:
                    raise ConfigurationError(
                        f"placement shard {shard} out of range for "
                        f"{shard_count} shards"
                    )
                if document.doc_id in index._assignments:
                    raise ValueError(
                        f"duplicate document id: {document.doc_id!r}"
                    )
                index._add_routed(document, terms, shard)
                count += 1
            index._version += count
            if isinstance(index.router, RoundRobinRouter):
                index.router.cursor = (
                    cursor if cursor is not None else count % shard_count
                )
        return index

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, doc_id: str) -> int:
        """The shard currently holding ``doc_id``; raises if absent."""
        with self._lock:
            shard = self._assignments.get(doc_id)
            if shard is None:
                raise DocumentNotFoundError(doc_id)
            return shard

    # -- mutation -------------------------------------------------------------

    def add(self, document: Document) -> None:
        """Route and index ``document``; raises ``ValueError`` on duplicates."""
        terms = self.analyzer.analyze(document.body)
        with self._lock:
            if document.doc_id in self._assignments:
                raise ValueError(
                    f"duplicate document id: {document.doc_id!r}"
                )
            self._add_routed(document, terms, self.router.route(document.doc_id))
            self._version += 1

    def _add_routed(self, document: Document, terms: list[str], shard: int) -> None:
        """Place an analyzed document on an explicit shard (lock held)."""
        self.shards[shard].add_analyzed(document, terms)
        self._assignments[document.doc_id] = shard
        self._merged.add_document(terms)

    def remove(self, doc_id: str) -> Document:
        """Remove and return a document; raises if absent."""
        with self._lock:
            shard_position = self._assignments.get(doc_id)
            if shard_position is None:
                raise DocumentNotFoundError(doc_id)
            shard = self.shards[shard_position]
            counts = dict(shard.term_frequencies(doc_id))
            length = shard.document_length(doc_id)
            document = shard.remove(doc_id)
            del self._assignments[doc_id]
            self._merged.remove_document(counts, length)
            self._version += 1
            return document

    def replace(self, document: Document) -> Document:
        """Swap a document body in place; returns the previous version.

        The document keeps its current shard (routing happens once, at
        first ingestion), so a stateful router's placements stay stable.
        """
        with self._lock:
            shard = self.shard_of(document.doc_id)
            previous = self.remove(document.doc_id)
            terms = self.analyzer.analyze(document.body)
            self._add_routed(document, terms, shard)
            self._version += 1
            return previous

    def add_documents(
        self,
        documents: Iterable[Document],
        workers: int | None = None,
        executor: str | None = None,
    ) -> int:
        """Bulk-ingest ``documents`` in parallel; returns the number added.

        The batch is partitioned by the router, each shard's partition is
        ingested by one task on a transient thread pool (``workers``
        caps it; None/1 ingests serially), and all tasks share one
        :class:`AnalysisMemo`. Merged statistics and the global insertion
        order are replayed in input order afterwards, so the result is
        byte-identical to adding the documents one at a time.

        ``executor="process"`` routes the analysis step — tokenize,
        stopword, stem; the CPU-bound bulk of ingest — through
        :func:`analyze_in_processes` (``workers`` sizes that pool too),
        escaping the GIL on standard builds; the per-shard posting
        builds then run on the thread tier with the precomputed terms.

        All-or-nothing: duplicate ids fail before anything mutates, and
        an ingest error rolls the already-indexed batch documents back
        out of their shards before propagating.
        """
        if executor not in (None, "thread", "process"):
            raise ValueError(
                f'executor must be "thread" or "process", got {executor!r}'
            )
        documents = list(documents)
        if not documents:
            return 0
        with self._lock:
            seen: set[str] = set()
            for document in documents:
                if document.doc_id in self._assignments or document.doc_id in seen:
                    raise ValueError(
                        f"duplicate document id: {document.doc_id!r}"
                    )
                seen.add(document.doc_id)
            precomputed = (
                analyze_in_processes(self.analyzer, documents, workers)
                if executor == "process"
                else None
            )
            placements = [
                (document, self.router.route(document.doc_id))
                for document in documents
            ]
            partitions: list[list[tuple[int, Document]]] = [
                [] for _ in self.shards
            ]
            for position, (document, shard) in enumerate(placements):
                partitions[shard].append((position, document))
            analyzed: list[list[str] | None] = [None] * len(documents)
            memo = AnalysisMemo(self.analyzer)

            def ingest(shard_position: int) -> None:
                shard = self.shards[shard_position]
                for position, document in partitions[shard_position]:
                    terms = (
                        precomputed[position]
                        if precomputed is not None
                        else memo.analyze(document.body)
                    )
                    shard.add_analyzed(document, terms)
                    analyzed[position] = terms

            errors = self._run_partitions(ingest, workers)
            if errors:
                # Roll the partial batch back out before propagating.
                for position, (document, shard) in enumerate(placements):
                    if analyzed[position] is not None:
                        self.shards[shard].remove(document.doc_id)
                raise errors[0]
            for position, (document, shard) in enumerate(placements):
                self._assignments[document.doc_id] = shard
                self._merged.add_document(analyzed[position])
            self._version += len(documents)
        return len(documents)

    def _run_partitions(
        self, ingest, workers: int | None
    ) -> list[Exception]:
        """Run ``ingest(shard)`` for every shard, optionally in parallel.

        Parallel runs use a transient per-call executor, *deliberately*
        not the engine's live explanation pool: ``add_documents`` holds
        the corpus lock while waiting, and explanation tasks block on
        that same lock — sharing one pool would let queued ingest tasks
        starve behind blocked explanation tasks (a deadlock). A
        transient executor of ≤ shard_count threads costs microseconds
        against a bulk ingest.
        """
        worker_count = min(workers or 1, self.shard_count)
        if worker_count <= 1:
            errors: list[Exception] = []
            for shard_position in range(self.shard_count):
                try:
                    ingest(shard_position)
                except Exception as error:  # noqa: BLE001 - rolled back by caller
                    errors.append(error)
            return errors
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=worker_count, thread_name_prefix="ingest"
        ) as pool:
            futures = [
                pool.submit(ingest, shard_position)
                for shard_position in range(self.shard_count)
            ]
        return [
            error
            for error in (future.exception() for future in futures)
            if error is not None
        ]

    # -- lookups --------------------------------------------------------------

    def document(self, doc_id: str) -> Document:
        return self.shards[self.shard_of(doc_id)].document(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[Document]:
        with self._lock:  # snapshot in global insertion order
            return iter(
                [
                    self.shards[shard].document(doc_id)
                    for doc_id, shard in self._assignments.items()
                ]
            )

    @property
    def doc_ids(self) -> list[str]:
        with self._lock:
            return list(self._assignments)

    def postings(self, term: str) -> MergedPostings | None:
        """Merged postings view for an analyzed term, or None if unindexed."""
        parts = [
            postings
            for postings in (shard.postings(term) for shard in self.shards)
            if postings is not None
        ]
        if not parts:
            return None
        return MergedPostings(term, parts)

    def terms(self) -> Iterator[str]:
        with self._lock:  # snapshot, ordered like a single index's postings
            return iter(self._merged.terms())

    # -- statistics -----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        with self._lock:
            return self._merged.document_frequency(term)

    def collection_frequency(self, term: str) -> int:
        with self._lock:
            return self._merged.collection_frequency(term)

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of analyzed ``term`` in document ``doc_id``."""
        return self.shards[self.shard_of(doc_id)].term_frequency(term, doc_id)

    def document_length(self, doc_id: str) -> int:
        return self.shards[self.shard_of(doc_id)].document_length(doc_id)

    def term_vector(self, doc_id: str) -> Counter[str]:
        """The document's analyzed term-frequency vector (a copy)."""
        return self.shards[self.shard_of(doc_id)].term_vector(doc_id)

    def term_frequencies(self, doc_id: str) -> Counter[str]:
        """The document's live term-frequency vector (treat as read-only)."""
        return self.shards[self.shard_of(doc_id)].term_frequencies(doc_id)

    @property
    def version(self) -> int:
        """Mutation counter; caches keyed on it invalidate on any change."""
        return self._version

    def stats(self) -> CollectionStats:
        with self._lock:
            return self._merged.stats()

    @property
    def average_document_length(self) -> float:
        return self.stats().average_document_length

    def shard_sizes(self) -> list[int]:
        """Documents per shard, by shard position."""
        return [len(shard) for shard in self.shards]

    def export_state(
        self,
    ) -> tuple[list[tuple[str, int]], list[list[Document]], int, int | None]:
        """One atomic snapshot for persistence.

        Returns (global-order placements, per-shard documents, mutation
        version, round-robin cursor or None). The persistence layer
        serialises from this snapshot instead of reading placements,
        shard contents, and router state under separate lock
        acquisitions — a save concurrent with mutation must never
        capture a shard file that disagrees with the manifest.
        """
        with self._lock:
            placements = list(self._assignments.items())
            shard_documents = [list(shard) for shard in self.shards]
            cursor = (
                self.router.cursor
                if isinstance(self.router, RoundRobinRouter)
                else None
            )
            return placements, shard_documents, self._version, cursor

    def export_snapshot(self) -> ShardedSnapshot:
        """One atomic copy of the full sharded state for persistence.

        The v3 writer's counterpart to
        :meth:`InvertedIndex.export_snapshot`: per-shard snapshots, the
        global placement order, merged term statistics (in merged
        insertion order), and the router state, captured under one lock
        acquisition so no field can disagree with another.
        """
        with self._lock:
            return ShardedSnapshot(
                shard_snapshots=tuple(
                    shard.export_snapshot() for shard in self.shards
                ),
                placements=tuple(self._assignments.items()),
                merged_terms=tuple(
                    (term, entry[0], entry[1])
                    for term, entry in self._merged._terms.items()
                ),
                router=self.router.name,
                cursor=(
                    self.router.cursor
                    if isinstance(self.router, RoundRobinRouter)
                    else None
                ),
                version=self._version,
                document_count=self._merged.document_count,
                total_terms=self._merged.total_terms,
            )
