"""The in-memory positional inverted index.

Supports incremental addition and removal of documents, per-document term
vectors, and the collection statistics needed by lexical similarities and
by CREDENCE's TF-IDF term-importance scoring.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DocumentNotFoundError
from repro.index.document import Document
from repro.index.postings import Posting, PostingsList
from repro.index.stats import CollectionStats
from repro.text.analyzer import Analyzer, default_analyzer


@dataclass(frozen=True)
class IndexSnapshot:
    """One atomic read snapshot of an :class:`InvertedIndex`.

    Produced by :meth:`InvertedIndex.export_snapshot` under the index
    lock, so every field describes the same instant: the persistence
    layer serialises from this instead of making separate locked reads
    that a concurrent mutation could tear apart. All containers are
    copies — the snapshot stays valid while the index keeps mutating.

    Orderings carry the index's observable iteration semantics and must
    be preserved by any format that round-trips through a snapshot:
    ``documents`` is global insertion order, ``postings`` iterates terms
    in first-appearance order with each term's postings in document
    insertion order, and each term-frequency ``Counter`` iterates in
    first-occurrence order within the document.
    """

    documents: tuple[Document, ...]
    doc_lengths: dict[str, int]
    term_freqs: dict[str, Counter]
    postings: dict[str, tuple[Posting, ...]]
    total_terms: int
    version: int


class InvertedIndex:
    """A positional inverted index over :class:`Document` bodies.

    The index owns an :class:`Analyzer`; every component that needs to
    agree with the index on tokenisation (rankers, explainers) should use
    :attr:`analyzer` rather than constructing its own.
    """

    def __init__(self, analyzer: Analyzer | None = None):
        self.analyzer = analyzer or default_analyzer()
        self._documents: dict[str, Document] = {}
        self._postings: dict[str, PostingsList] = {}
        self._doc_lengths: dict[str, int] = {}
        self._doc_term_freqs: dict[str, Counter[str]] = {}
        self._total_terms = 0
        self._version = 0
        self._stats_cache: CollectionStats | None = None
        # Guards mutations, the memoized stats, and the multi-step read
        # accessors: the service layer reads from worker threads while
        # an admin path may add/remove documents. Locked reads can never
        # observe a torn mid-mutation state; a document removed while an
        # explanation is in flight surfaces as DocumentNotFoundError
        # (captured as that item's error), never as an inconsistent
        # lookup. Reentrant because stats() is called from locked
        # sections of consumers holding their own locks.
        self._lock = threading.RLock()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_documents(
        cls, documents: Iterable[Document], analyzer: Analyzer | None = None
    ) -> "InvertedIndex":
        index = cls(analyzer)
        for document in documents:
            index.add(document)
        return index

    def add(self, document: Document) -> None:
        """Index ``document``; raises ``ValueError`` on duplicate ids."""
        self.add_analyzed(document, self.analyzer.analyze(document.body))

    def add_analyzed(self, document: Document, terms: list[str]) -> None:
        """Index ``document`` from an already-analyzed term sequence.

        ``terms`` must be exactly ``self.analyzer.analyze(document.body)``;
        callers that analyze up front (bulk ingestion, the sharded
        backend's shared analysis memo) use this to avoid re-analyzing
        inside the index.
        """
        positions: dict[str, list[int]] = {}
        for position, term in enumerate(terms):
            positions.setdefault(term, []).append(position)

        with self._lock:
            if document.doc_id in self._documents:
                raise ValueError(
                    f"duplicate document id: {document.doc_id!r}"
                )
            self._documents[document.doc_id] = document
            self._doc_lengths[document.doc_id] = len(terms)
            self._doc_term_freqs[document.doc_id] = Counter(terms)
            self._total_terms += len(terms)
            self._version += 1
            self._stats_cache = None
            for term, term_positions in positions.items():
                postings = self._postings.get(term)
                if postings is None:
                    postings = self._postings[term] = PostingsList(term)
                postings.add(
                    Posting(
                        document.doc_id,
                        len(term_positions),
                        tuple(term_positions),
                    )
                )

    def remove(self, doc_id: str) -> Document:
        """Remove and return a document; raises if absent."""
        with self._lock:
            document = self._documents.pop(doc_id, None)
            if document is None:
                raise DocumentNotFoundError(doc_id)
            self._total_terms -= self._doc_lengths.pop(doc_id)
            self._version += 1
            self._stats_cache = None
            term_freqs = self._doc_term_freqs.pop(doc_id)
            for term in term_freqs:
                postings = self._postings[term]
                postings.remove(doc_id)
                if len(postings) == 0:
                    del self._postings[term]
            return document

    def replace(self, document: Document) -> Document:
        """Atomically swap a document body; returns the previous version."""
        with self._lock:
            previous = self.remove(document.doc_id)
            self.add(document)
            return previous

    def add_documents(
        self,
        documents: Iterable[Document],
        workers: int | None = None,
        executor: str | None = None,
    ) -> int:
        """Bulk-add ``documents``; returns the number added.

        Interface parity with
        :meth:`~repro.index.sharding.ShardedIndex.add_documents`: a
        single-shard index builds its postings serially (``workers``
        alone cannot help — there is only one shard), reusing a
        per-ingest :class:`~repro.index.sharding.AnalysisMemo` so
        repeated surface forms are analyzed once. ``executor="process"``
        offloads the analysis step to ``workers`` worker processes
        (byte-identical output, computed off the GIL). Duplicate ids
        (against the index or within the batch) raise ``ValueError``
        before anything mutates.
        """
        from repro.index.sharding import AnalysisMemo, analyze_in_processes

        if executor not in (None, "thread", "process"):
            raise ValueError(
                f'executor must be "thread" or "process", got {executor!r}'
            )
        documents = list(documents)
        with self._lock:
            seen: set[str] = set()
            for document in documents:
                if document.doc_id in self._documents or document.doc_id in seen:
                    raise ValueError(
                        f"duplicate document id: {document.doc_id!r}"
                    )
                seen.add(document.doc_id)
            if executor == "process" and documents:
                precomputed = analyze_in_processes(
                    self.analyzer, documents, workers
                )
                for document, terms in zip(documents, precomputed):
                    self.add_analyzed(document, terms)
            else:
                memo = AnalysisMemo(self.analyzer)
                for document in documents:
                    self.add_analyzed(document, memo.analyze(document.body))
        return len(documents)

    # -- lookups -------------------------------------------------------------

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        with self._lock:  # snapshot: safe to iterate during mutation
            return iter(list(self._documents.values()))

    @property
    def doc_ids(self) -> list[str]:
        with self._lock:
            return list(self._documents)

    def postings(self, term: str) -> PostingsList | None:
        """Postings for an *analyzed* term, or None if unindexed."""
        return self._postings.get(term)

    def terms(self) -> Iterator[str]:
        with self._lock:  # snapshot: safe to iterate during mutation
            return iter(list(self._postings))

    # -- statistics ----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        postings = self._postings.get(term)
        return postings.document_frequency if postings else 0

    def collection_frequency(self, term: str) -> int:
        postings = self._postings.get(term)
        return postings.collection_frequency if postings else 0

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of analyzed ``term`` in document ``doc_id``."""
        with self._lock:
            if doc_id not in self._documents:
                raise DocumentNotFoundError(doc_id)
            return self._doc_term_freqs[doc_id].get(term, 0)

    def document_length(self, doc_id: str) -> int:
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def term_vector(self, doc_id: str) -> Counter[str]:
        """The document's analyzed term-frequency vector (a copy)."""
        with self._lock:
            if doc_id not in self._documents:
                raise DocumentNotFoundError(doc_id)
            return Counter(self._doc_term_freqs[doc_id])

    def term_frequencies(self, doc_id: str) -> Counter[str]:
        """The document's term-frequency vector *without copying*.

        The returned mapping is the index's live internal state: callers
        must treat it as read-only. Scoring sessions use it to score
        indexed documents without re-analyzing their bodies.
        """
        with self._lock:
            if doc_id not in self._documents:
                raise DocumentNotFoundError(doc_id)
            return self._doc_term_freqs[doc_id]

    def export_snapshot(self) -> IndexSnapshot:
        """One atomic copy of the full index state for persistence.

        The v3 packed-segment writer serialises from this snapshot; see
        :class:`IndexSnapshot` for the ordering guarantees it carries.
        """
        with self._lock:
            return IndexSnapshot(
                documents=tuple(self._documents.values()),
                doc_lengths=dict(self._doc_lengths),
                term_freqs={
                    doc_id: Counter(counts)
                    for doc_id, counts in self._doc_term_freqs.items()
                },
                postings={
                    term: tuple(plist)
                    for term, plist in self._postings.items()
                },
                total_terms=self._total_terms,
                version=self._version,
            )

    @property
    def version(self) -> int:
        """Mutation counter: bumped on every add/remove.

        Components that memoize per-collection state (field statistics,
        term statistics, prepared queries) key their caches on this value
        so a corpus mutation invalidates them automatically.
        """
        return self._version

    def stats(self) -> CollectionStats:
        with self._lock:
            if self._stats_cache is None:
                self._stats_cache = CollectionStats(
                    document_count=len(self._documents),
                    total_terms=self._total_terms,
                    unique_terms=len(self._postings),
                )
            return self._stats_cache

    @property
    def average_document_length(self) -> float:
        return self.stats().average_document_length
