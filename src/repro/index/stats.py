"""Collection statistics exposed by the index.

These are the quantities every lexical similarity (BM25, TF-IDF, Dirichlet
LM) and the paper's TF-IDF term-importance scoring consume. They are kept
incrementally up to date as documents are added/removed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CollectionStats:
    """A snapshot of global index statistics."""

    document_count: int
    total_terms: int
    unique_terms: int

    @property
    def average_document_length(self) -> float:
        """Mean analyzed document length (avgdl); 0.0 for an empty index."""
        if self.document_count == 0:
            return 0.0
        return self.total_terms / self.document_count
