"""Lightweight timing helpers used by the eval harness and the API layer."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across repeated start/stop intervals."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @contextmanager
    def measure(self):
        """Context manager adding the enclosed duration to :attr:`elapsed`."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


@contextmanager
def timed():
    """Yield a zero-arg callable returning seconds elapsed since entry.

    >>> with timed() as elapsed:
    ...     _ = sum(range(10))
    >>> elapsed() >= 0.0
    True
    """
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
