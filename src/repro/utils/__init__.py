"""Shared utilities: seeded RNG, timing, top-k heaps, ordered iteration."""

from repro.utils.heap import TopK
from repro.utils.iteration import (
    batched,
    ordered_subsets,
    ranked_pairs,
    take,
)
from repro.utils.rng import default_rng, spawn_rng
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    require,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "TopK",
    "batched",
    "ordered_subsets",
    "ranked_pairs",
    "take",
    "default_rng",
    "spawn_rng",
    "Stopwatch",
    "timed",
    "require",
    "require_positive",
    "require_probability",
    "require_type",
]
