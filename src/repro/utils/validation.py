"""Small argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` so misuse surfaces as
a library error rather than an arbitrary ``ValueError`` deep in a stack.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
